//! ext-G: upload-resource utilization per scheme — §1's efficiency
//! argument ("leaf nodes contribute no resources; interior nodes need d×
//! upload") measured.

use clustream_bench::{ext_utilization, render_table};

fn main() {
    for n in [63usize, 255] {
        let rows = ext_utilization(n, 2, 48);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    r.idle_receivers.to_string(),
                    format!("{:.2}", r.mean_upload_rate),
                    format!("{:.2}", r.max_upload_rate),
                ]
            })
            .collect();
        println!("ext-G — upload utilization, N = {n}, d = 2\n");
        println!(
            "{}",
            render_table(
                &["scheme", "idle receivers", "mean rate", "max rate"],
                &table
            )
        );
    }
    println!("single tree: ~half the receivers idle while interiors upload at 2×;");
    println!("multi-tree: only the d all-leaf nodes idle, everyone else at ≤ 1×;");
    println!("hypercube: contribution spread across all nodes.");
}
