//! Derive macros for the in-tree `serde` shim.
//!
//! Supports exactly the shapes this workspace derives on: non-generic
//! structs (named, tuple, unit) and enums (unit, newtype, tuple and
//! struct variants) without `#[serde(...)]` attributes. The generated
//! impls target the shim's `Value`-based `Serialize`/`Deserialize`
//! traits and follow serde-JSON conventions: newtype structs are
//! transparent, unit variants serialize as their name, other variants as
//! a single-key object.
//!
//! Parsing is hand-rolled over `proc_macro::TokenTree` (no `syn`/`quote`
//! available offline); generated code is assembled as source text and
//! re-parsed, which keeps the generator easy to audit.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct or of one enum variant's payload.
enum Fields {
    /// `struct S;` or a bare enum variant.
    Unit,
    /// `(T1, T2, …)` — the count of unnamed fields.
    Tuple(usize),
    /// `{ a: T, b: U, … }` — field names in declaration order.
    Named(Vec<String>),
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Derive the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated code parses")
}

/// Derive the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated code parses")
}

// --------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (type `{name}`)");
    }

    let kind = match kw.as_str() {
        "struct" => Kind::Struct(parse_struct_body(tokens.get(i))),
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Kind::Enum(parse_variants(body))
        }
        other => panic!("serde shim derive supports struct/enum only, got `{other}`"),
    };
    Input { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` then `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_body(tok: Option<&TokenTree>) -> Fields {
    match tok {
        None => Fields::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(named_field_names(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("unexpected struct body: {other:?}"),
    }
}

/// Field names of `{ a: T, b: U }`: within each top-level-comma chunk the
/// field name is the identifier immediately before the first `:` (after
/// attributes and visibility are skipped). Angle-bracket depth is tracked
/// because commas inside `Foo<A, B>` are plain tokens, not groups.
fn named_field_names(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        names.push(name);
        // Skip to the comma that ends this field, at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Number of fields in `(T1, T2, …)`: top-level commas + 1 (trailing
/// comma tolerated).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 < tokens.len() {
                    fields += 1;
                }
            }
            _ => {}
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(named_field_names(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip discriminant (`= expr`) if present, then the comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ------------------------------------------------------------ generation

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => obj_literal(fields, "self."),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let payload = obj_literal(fields, "");
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),"
                        )
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// `Object(vec![("a", to_value(&PREFIXa)), …])` where `PREFIX` is
/// `self.` for struct fields or empty for match bindings.
fn obj_literal(fields: &[String], prefix: &str) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&e[{i}])?"))
                .collect();
            format!(
                "let e = v.elements()?;\n\
                 if e.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements for {name}, got {{}}\", e.len()))); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
                .collect();
            format!("Ok({name} {{\n{}\n}})", items.join("\n"))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("\"{vname}\" => return Ok({name}::{vname}),"))
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{vname}\" => return Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&e[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{vname}\" => {{\n\
                             let e = payload.elements()?;\n\
                             if e.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements for {name}::{vname}, got {{}}\", e.len()))); }}\n\
                             return Ok({name}::{vname}({items}));\n}}",
                            items = items.join(", ")
                        ))
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\")?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{vname}\" => return Ok({name}::{vname} {{\n{}\n}}),",
                            items.join("\n")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => {{\n\
                 match s.as_str() {{\n{unit_arms}\n_ => {{}}\n}}\n\
                 Err(::serde::DeError(format!(\"unknown variant `{{s}}` of {name}\")))\n\
                 }}\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (key, payload) = &pairs[0];\n\
                 match key.as_str() {{\n{keyed_arms}\n_ => {{}}\n}}\n\
                 Err(::serde::DeError(format!(\"unknown variant `{{key}}` of {name}\")))\n\
                 }}\n\
                 other => Err(::serde::DeError::expected(\"enum variant\", other)),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                keyed_arms = keyed_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
