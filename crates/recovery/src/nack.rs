//! NACK retransmission state: per-gap retry tracking and seeded
//! exponential backoff.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Lifecycle of one NACKed gap packet at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapStatus {
    /// Retries in flight.
    Open,
    /// Filled by a retransmission (or a late regular delivery).
    Repaired,
    /// Retry budget exhausted: skipped, hiccup recorded.
    Abandoned,
}

/// Tracks which `(node, packet)` gaps are being chased and computes the
/// capped, jittered exponential backoff between retries.
#[derive(Debug)]
pub struct NackManager {
    gaps: BTreeMap<(u32, u64), GapStatus>,
    base: u64,
    multiplier: f64,
    cap: u64,
    jitter: u64,
    rng: ChaCha8Rng,
}

impl NackManager {
    /// A manager with backoff `min(cap, base·multiplier^attempt)` plus
    /// uniform jitter in `[0, jitter)` ticks drawn from `seed`.
    pub fn new(base: u64, multiplier: f64, cap: u64, jitter: u64, seed: u64) -> Self {
        NackManager {
            gaps: BTreeMap::new(),
            base: base.max(1),
            multiplier: multiplier.max(1.0),
            cap: cap.max(1),
            jitter,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Open a gap; `false` if it is already tracked (in any state).
    pub fn open(&mut self, node: u32, seq: u64) -> bool {
        match self.gaps.entry((node, seq)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(GapStatus::Open);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Whether retries for this gap should continue.
    pub fn is_open(&self, node: u32, seq: u64) -> bool {
        self.gaps.get(&(node, seq)) == Some(&GapStatus::Open)
    }

    /// Mark the gap filled; `true` if it was open (a genuine repair).
    pub fn resolve(&mut self, node: u32, seq: u64) -> bool {
        match self.gaps.get_mut(&(node, seq)) {
            Some(s @ GapStatus::Open) => {
                *s = GapStatus::Repaired;
                true
            }
            _ => false,
        }
    }

    /// Give up on the gap; `true` if it was open (a fresh abandonment).
    pub fn abandon(&mut self, node: u32, seq: u64) -> bool {
        match self.gaps.get_mut(&(node, seq)) {
            Some(s @ GapStatus::Open) => {
                *s = GapStatus::Abandoned;
                true
            }
            _ => false,
        }
    }

    /// Ticks to wait after retry number `attempt` (0-based):
    /// `min(cap, base·multiplier^attempt)` plus seeded jitter.
    pub fn backoff_delay(&mut self, attempt: u32) -> u64 {
        let exp = self.multiplier.powi(attempt.min(63) as i32);
        let raw = (self.base as f64 * exp).round() as u64;
        let capped = raw.min(self.cap);
        let jitter = if self.jitter > 0 {
            self.rng.gen_range(0..self.jitter)
        } else {
            0
        };
        capped + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_lifecycle() {
        let mut m = NackManager::new(100, 2.0, 1000, 0, 1);
        assert!(m.open(3, 7));
        assert!(!m.open(3, 7), "already tracked");
        assert!(m.is_open(3, 7));
        assert!(m.resolve(3, 7));
        assert!(!m.resolve(3, 7), "only repaired once");
        assert!(!m.is_open(3, 7));
        assert!(!m.open(3, 7), "resolved gaps are not reopened");

        assert!(m.open(4, 7));
        assert!(m.abandon(4, 7));
        assert!(!m.abandon(4, 7));
        assert!(!m.resolve(4, 7), "abandoned gaps stay abandoned");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut m = NackManager::new(100, 2.0, 1000, 0, 1);
        assert_eq!(m.backoff_delay(0), 100);
        assert_eq!(m.backoff_delay(1), 200);
        assert_eq!(m.backoff_delay(2), 400);
        assert_eq!(m.backoff_delay(5), 1000, "capped");
        assert_eq!(m.backoff_delay(60), 1000, "huge attempts stay capped");
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let draws = |seed: u64| {
            let mut m = NackManager::new(100, 2.0, 1000, 50, seed);
            (0..64).map(|_| m.backoff_delay(0)).collect::<Vec<_>>()
        };
        let a = draws(9);
        for &d in &a {
            assert!((100..150).contains(&d), "jitter out of range: {d}");
        }
        assert_eq!(a, draws(9), "same seed ⇒ same jitter");
        assert_ne!(a, draws(10), "different seed ⇒ different jitter");
    }
}
