//! ext-B: churn — eager vs lazy dynamics under Poisson arrivals and
//! exponential lifetimes: swaps, rebuilds, displacement, post-churn QoS.

use clustream_bench::{ext_churn, render_table};
use clustream_workloads::ChurnTraceConfig;

fn main() {
    for (seed, leave_rate) in [(1u64, 0.002f64), (2, 0.01), (3, 0.03)] {
        let cfg = ChurnTraceConfig {
            initial_members: 60,
            slots: 2000,
            join_rate: 0.05,
            leave_rate,
            rejoin_rate: 0.0,
            seed,
        };
        let rows = ext_churn(cfg, 3);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.variant.clone(),
                    r.events.to_string(),
                    r.total_swaps.to_string(),
                    r.rebuilds.to_string(),
                    r.max_displaced.to_string(),
                    r.hiccup_slots.to_string(),
                    r.final_members.to_string(),
                    r.post_churn_max_delay.to_string(),
                ]
            })
            .collect();
        println!("ext-B — churn (seed {seed}, leave rate {leave_rate}), d = 3, N₀ = 60\n");
        println!(
            "{}",
            render_table(
                &[
                    "variant",
                    "events",
                    "swaps",
                    "rebuilds",
                    "max displaced",
                    "hiccup slots",
                    "final N",
                    "post delay"
                ],
                &table
            )
        );
    }
}
