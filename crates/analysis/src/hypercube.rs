//! Hypercube bounds: Propositions 1, 2 and Theorem 4 (§3).

/// Predictions of Proposition 1 for `N = 2^k − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prop1 {
    /// Playback begins after slot `k + 1`.
    pub playback_delay: u64,
    /// Two packets resident between slots.
    pub resident_buffer: usize,
    /// Each node communicates with its `k` cube neighbors only.
    pub neighbors: usize,
}

/// Proposition 1 for a `k`-cube.
pub fn prop1(k: usize) -> Prop1 {
    Prop1 {
        playback_delay: k as u64 + 1,
        resident_buffer: 2,
        neighbors: k,
    }
}

/// The §3.2 greedy cube decomposition `k_m = ⌊log₂(rem + 1)⌋`.
pub fn decompose(n: usize) -> Vec<usize> {
    assert!(n >= 1);
    let mut ks = Vec::new();
    let mut rem = n;
    while rem > 0 {
        let k = usize::BITS as usize - 1 - (rem + 1).leading_zeros() as usize;
        ks.push(k);
        rem -= (1 << k) - 1;
    }
    ks
}

/// Proposition 2: worst-case playback delay of the chained-hypercube
/// scheme — the last cube's `Σ_{i≤m}(k_i + 1)`, which is `O(log² N)`.
pub fn chained_worst_delay(n: usize) -> u64 {
    decompose(n).iter().map(|&k| k as u64 + 1).sum()
}

/// Exact predicted average delay of the chained scheme:
/// `Σ_m size_m · delay_m / N`.
pub fn chained_avg_delay(n: usize) -> f64 {
    let mut start = 0u64;
    let mut total = 0f64;
    for k in decompose(n) {
        let delay = start + k as u64 + 1;
        total += delay as f64 * ((1u64 << k) - 1) as f64;
        start += k as u64 + 1;
    }
    total / n as f64
}

/// Theorem 4: the average delay is at most `2 log₂ N` (stated for large
/// `N`; tiny populations carry a `+1` constant).
pub fn thm4_avg_bound(n: usize) -> f64 {
    2.0 * (n.max(2) as f64).log2()
}

/// §3.2 end: with a `d`-capable source and `d` balanced groups, the worst
/// delay is that of a chain over `⌈N/d⌉` nodes.
pub fn grouped_worst_delay(n: usize, d: usize) -> u64 {
    assert!(d >= 1 && d <= n);
    chained_worst_delay(n.div_ceil(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop1_predictions() {
        let p = prop1(3);
        assert_eq!(p.playback_delay, 4);
        assert_eq!(p.resident_buffer, 2);
        assert_eq!(p.neighbors, 3);
    }

    #[test]
    fn decompose_covers_population() {
        for n in 1..2000 {
            let ks = decompose(n);
            let total: usize = ks.iter().map(|&k| (1usize << k) - 1).sum();
            assert_eq!(total, n);
            // Strictly non-increasing cube sizes.
            for w in ks.windows(2) {
                assert!(w[0] >= w[1], "N={n}: {ks:?}");
            }
        }
    }

    #[test]
    fn special_n_is_one_cube() {
        for k in 1..16 {
            assert_eq!(decompose((1 << k) - 1), vec![k]);
            assert_eq!(chained_worst_delay((1 << k) - 1), k as u64 + 1);
        }
    }

    #[test]
    fn worst_delay_is_order_log_squared() {
        // Σ(k_i + 1) ≤ (log₂(N+1) + 1)² since k's strictly decrease… the
        // paper's O(log²N); check the concrete quadratic envelope.
        for n in [10usize, 100, 1000, 10_000, 100_000] {
            let lg = ((n + 1) as f64).log2();
            let bound = (lg + 1.0) * (lg + 1.0);
            assert!(
                (chained_worst_delay(n) as f64) <= bound,
                "N={n}: {} > {bound}",
                chained_worst_delay(n)
            );
        }
    }

    #[test]
    fn theorem4_holds_across_populations() {
        for n in 2..=4096usize {
            let avg = chained_avg_delay(n);
            assert!(
                avg <= thm4_avg_bound(n) + 1.0,
                "N={n}: avg {avg:.3} > 2log₂N = {:.3}",
                thm4_avg_bound(n)
            );
        }
    }

    #[test]
    fn grouping_reduces_worst_delay() {
        assert!(grouped_worst_delay(1000, 4) <= chained_worst_delay(1000));
        assert_eq!(grouped_worst_delay(28, 4), chained_worst_delay(7));
    }

    #[test]
    fn matches_hypercube_crate_predictions() {
        for n in [1usize, 5, 7, 10, 33, 100, 500] {
            let s = clustream_hypercube::HypercubeStream::new(n).unwrap();
            let worst = s.cubes().map(|c| c.predicted_delay()).max().unwrap();
            assert_eq!(worst, chained_worst_delay(n), "N={n}");
            assert!((s.predicted_avg_delay() - chained_avg_delay(n)).abs() < 1e-9);
        }
    }
}
