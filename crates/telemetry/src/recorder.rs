//! The recorder trait, the in-memory recorder, and the `Telemetry`
//! handle engines carry.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A metrics sink. Implementations must be cheap and thread-safe: the
/// parallel sweep hands one recorder to every worker.
///
/// All methods take `&self`; stateful recorders use interior mutability.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the named monotone counter.
    fn counter(&self, name: &str, delta: u64);
    /// Set the named gauge to `value`.
    fn gauge(&self, name: &str, value: u64);
    /// Raise the named gauge to `value` if it is higher (high-water mark).
    fn gauge_max(&self, name: &str, value: u64);
    /// Record one observation into the named log-linear histogram.
    fn observe(&self, name: &str, value: u64);
    /// Record one timed span of `elapsed_ns` under the named phase.
    fn span_ns(&self, name: &str, elapsed_ns: u64);
}

/// The handle engines carry: either disabled (a `None` — every probe is
/// one branch and nothing else) or an [`Arc`] to a live [`Recorder`].
///
/// Disabled is the default, and the zero-cost argument is structural:
/// every probe method starts with `let Some(r) = &self.0 else { return }`,
/// no probe allocates or computes before that check, and the engines
/// never branch on telemetry for anything that affects the simulation
/// state — so a disabled run executes the exact instruction stream of a
/// pre-telemetry build plus dead branches. `RunResult` bit-identity
/// between off and on is enforced by `tests/telemetry.rs`.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<dyn Recorder>>);

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

impl Telemetry {
    /// The disabled handle (all probes are no-ops).
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// A handle recording into `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Telemetry {
        Telemetry(Some(recorder))
    }

    /// Whether a recorder is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(r) = &self.0 {
            r.counter(name, delta);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(r) = &self.0 {
            r.gauge(name, value);
        }
    }

    /// Raise a gauge to a new high-water mark.
    #[inline]
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(r) = &self.0 {
            r.gauge_max(name, value);
        }
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.0 {
            r.observe(name, value);
        }
    }

    /// Record an already-measured span.
    #[inline]
    pub fn span_ns(&self, name: &str, elapsed_ns: u64) {
        if let Some(r) = &self.0 {
            r.span_ns(name, elapsed_ns);
        }
    }

    /// Start a timed span; the guard records its elapsed wall time under
    /// `name` when dropped. Disabled handles return an inert guard that
    /// never reads the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            active: self
                .0
                .as_ref()
                .map(|r| (Arc::clone(r), name, Instant::now())),
        }
    }
}

/// RAII timer from [`Telemetry::span`].
pub struct SpanGuard {
    active: Option<(Arc<dyn Recorder>, &'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((recorder, name, start)) = self.active.take() {
            recorder.span_ns(name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Aggregate statistics for one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Spans recorded.
    pub count: u64,
    /// Total elapsed nanoseconds (saturating).
    pub total_ns: u64,
    /// Fastest span.
    pub min_ns: u64,
    /// Slowest span.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, elapsed_ns: u64) {
        if self.count == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(elapsed_ns);
    }
}

/// Everything a recorder accumulated, keyed by metric name. `BTreeMap`s
/// keep export order deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time / high-water-mark gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Log-linear histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Timed phases.
    pub spans: BTreeMap<String, SpanStats>,
}

impl MetricsSnapshot {
    /// Counter value (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, rebuilt from its snapshot.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.get(name).map(Histogram::from_snapshot)
    }

    /// Events per second for a `(counter, span)` pair, if both exist and
    /// the span has nonzero total time — e.g. DES ticks/sec from
    /// [`crate::names::DES_EVENTS`] over [`crate::names::DES_RUN`].
    pub fn rate_per_sec(&self, counter: &str, span: &str) -> Option<f64> {
        let n = self.counters.get(counter).copied()?;
        let s = self.spans.get(span)?;
        if s.total_ns == 0 {
            return None;
        }
        Some(n as f64 / (s.total_ns as f64 / 1e9))
    }
}

#[derive(Default)]
struct MemoryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// A [`Recorder`] accumulating everything in memory behind a mutex, for
/// later export via [`MemoryRecorder::snapshot`].
#[derive(Default)]
pub struct MemoryRecorder {
    inner: Mutex<MemoryInner>,
}

impl MemoryRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Shared handle plus the [`Telemetry`] facade over it, the usual
    /// way to instrument a run.
    pub fn handle() -> (Arc<MemoryRecorder>, Telemetry) {
        let rec = Arc::new(MemoryRecorder::new());
        let tel = Telemetry::new(rec.clone() as Arc<dyn Recorder>);
        (rec, tel)
    }

    /// Export everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("telemetry mutex poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            spans: inner.spans.clone(),
        }
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("telemetry mutex poisoned");
        if let Some(c) = inner.counters.get_mut(name) {
            *c += delta;
        } else {
            inner.counters.insert(name.to_string(), delta);
        }
    }

    fn gauge(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("telemetry mutex poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("telemetry mutex poisoned");
        if let Some(g) = inner.gauges.get_mut(name) {
            *g = (*g).max(value);
        } else {
            inner.gauges.insert(name.to_string(), value);
        }
    }

    fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("telemetry mutex poisoned");
        if let Some(h) = inner.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            inner.histograms.insert(name.to_string(), h);
        }
    }

    fn span_ns(&self, name: &str, elapsed_ns: u64) {
        let mut inner = self.inner.lock().expect("telemetry mutex poisoned");
        if let Some(s) = inner.spans.get_mut(name) {
            s.record(elapsed_ns);
        } else {
            let mut s = SpanStats::default();
            s.record(elapsed_ns);
            inner.spans.insert(name.to_string(), s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.counter("x", 1);
        tel.gauge("x", 1);
        tel.gauge_max("x", 1);
        tel.observe("x", 1);
        tel.span_ns("x", 1);
        drop(tel.span("x"));
        // Nothing to snapshot — there is no recorder at all.
    }

    #[test]
    fn memory_recorder_accumulates() {
        let (rec, tel) = MemoryRecorder::handle();
        tel.counter("a", 2);
        tel.counter("a", 3);
        tel.gauge("g", 7);
        tel.gauge_max("g", 4); // lower: keeps 7
        tel.gauge_max("g", 9);
        tel.observe("h", 10);
        tel.observe("h", 20);
        tel.span_ns("s", 100);
        tel.span_ns("s", 50);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.gauges["g"], 9);
        let h = snap.histogram("h").unwrap();
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (2, 30, 10, 20));
        let s = snap.spans["s"];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 150, 50, 100));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let (rec, tel) = MemoryRecorder::handle();
        {
            let _g = tel.span("phase");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans["phase"].count, 1);
    }

    #[test]
    fn rate_per_sec_needs_both_metrics() {
        let (rec, tel) = MemoryRecorder::handle();
        tel.counter(names::DES_EVENTS, 1000);
        tel.span_ns(names::DES_RUN, 500_000_000);
        let snap = rec.snapshot();
        let rate = snap
            .rate_per_sec(names::DES_EVENTS, names::DES_RUN)
            .unwrap();
        assert!((rate - 2000.0).abs() < 1e-9);
        assert!(snap.rate_per_sec("missing", names::DES_RUN).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let (rec, tel) = MemoryRecorder::handle();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tel = tel.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        tel.counter("n", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("n"), 400);
    }
}
