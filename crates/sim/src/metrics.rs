//! Traffic and communication-requirement accounting.
//!
//! The paper's third QoS axis is the number of distinct neighbors a node
//! must communicate with (footnote 1): each live peering costs protocol
//! maintenance (keep-alives, churn handling), which is why the multi-tree
//! scheme's `O(d)` neighbors versus the hypercube scheme's `O(log N)` is a
//! headline difference in Table 1.

use clustream_core::{NodeId, Transmission};

/// Accumulates per-node neighbor sets and global traffic counters.
///
/// Neighbor sets are sorted `Vec<u32>`s, not hash sets: degrees are
/// `O(d)` / `O(log N)` by the paper's construction, so a binary-search
/// insert into a handful of contiguous words beats a hashed probe —
/// `record` sits on the per-transmission hot path of every engine.
#[derive(Debug, Clone)]
pub struct TrafficStats {
    out_neighbors: Vec<Vec<u32>>,
    in_neighbors: Vec<Vec<u32>>,
    uploads: Vec<u64>,
    total_transmissions: u64,
    duplicate_deliveries: u64,
}

/// Set-insert into a sorted vector.
fn insert_sorted(set: &mut Vec<u32>, id: u32) {
    if let Err(at) = set.binary_search(&id) {
        set.insert(at, id);
    }
}

impl TrafficStats {
    /// Stats for an id space of `n_ids` nodes.
    pub fn new(n_ids: usize) -> Self {
        TrafficStats {
            out_neighbors: vec![Vec::new(); n_ids],
            in_neighbors: vec![Vec::new(); n_ids],
            uploads: vec![0; n_ids],
            total_transmissions: 0,
            duplicate_deliveries: 0,
        }
    }

    /// Record one transmission (called once per validated send).
    pub fn record(&mut self, tx: &Transmission) {
        insert_sorted(&mut self.out_neighbors[tx.from.index()], tx.to.0);
        insert_sorted(&mut self.in_neighbors[tx.to.index()], tx.from.0);
        self.uploads[tx.from.index()] += 1;
        self.total_transmissions += 1;
    }

    /// Packets uploaded by `node` over the whole run — the paper's
    /// resource-contribution measure ("leaf nodes contribute no
    /// resources").
    pub fn uploads(&self, node: NodeId) -> u64 {
        self.uploads[node.index()]
    }

    /// Per-node upload counts, indexed by node id.
    pub fn upload_counts(&self) -> &[u64] {
        &self.uploads
    }

    /// Record that a delivery duplicated a packet the node already held.
    pub fn record_duplicate(&mut self) {
        self.duplicate_deliveries += 1;
    }

    /// Number of distinct nodes `node` sent to.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors[node.index()].len()
    }

    /// Number of distinct nodes `node` received from.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_neighbors[node.index()].len()
    }

    /// Distinct nodes communicated with in either direction: two-pointer
    /// merge count over the sorted adjacency vectors.
    pub fn degree(&self, node: NodeId) -> usize {
        let (a, b) = (
            &self.out_neighbors[node.index()],
            &self.in_neighbors[node.index()],
        );
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            count += 1;
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        count + (a.len() - i) + (b.len() - j)
    }

    /// Total validated transmissions over the run.
    pub fn total_transmissions(&self) -> u64 {
        self.total_transmissions
    }

    /// Deliveries that duplicated an already-held packet. The paper's
    /// schemes never produce these ("nodes do not receive redundant
    /// packets"); a nonzero count flags a wasteful scheme.
    pub fn duplicate_deliveries(&self) -> u64 {
        self.duplicate_deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_core::{PacketId, Transmission};

    #[test]
    fn neighbor_sets_deduplicate() {
        let mut s = TrafficStats::new(4);
        let tx = Transmission::local(NodeId(1), NodeId(2), PacketId(0));
        s.record(&tx);
        s.record(&Transmission::local(NodeId(1), NodeId(2), PacketId(1)));
        s.record(&Transmission::local(NodeId(1), NodeId(3), PacketId(2)));
        assert_eq!(s.out_degree(NodeId(1)), 2);
        assert_eq!(s.in_degree(NodeId(2)), 1);
        assert_eq!(s.total_transmissions(), 3);
    }

    #[test]
    fn degree_unions_directions() {
        let mut s = TrafficStats::new(4);
        s.record(&Transmission::local(NodeId(1), NodeId(2), PacketId(0)));
        s.record(&Transmission::local(NodeId(3), NodeId(1), PacketId(0)));
        // node 1 talks to 2 (out) and 3 (in) → degree 2
        assert_eq!(s.degree(NodeId(1)), 2);
        // exchange with the same node counts once
        s.record(&Transmission::local(NodeId(2), NodeId(1), PacketId(1)));
        assert_eq!(s.degree(NodeId(1)), 2);
    }

    #[test]
    fn upload_counts_accumulate() {
        let mut s = TrafficStats::new(3);
        s.record(&Transmission::local(NodeId(1), NodeId(2), PacketId(0)));
        s.record(&Transmission::local(NodeId(1), NodeId(2), PacketId(1)));
        assert_eq!(s.uploads(NodeId(1)), 2);
        assert_eq!(s.uploads(NodeId(2)), 0);
        assert_eq!(s.upload_counts(), &[0, 2, 0]);
    }

    #[test]
    fn duplicates_counted() {
        let mut s = TrafficStats::new(2);
        assert_eq!(s.duplicate_deliveries(), 0);
        s.record_duplicate();
        s.record_duplicate();
        assert_eq!(s.duplicate_deliveries(), 2);
    }
}
