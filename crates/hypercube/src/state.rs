//! Protocol state inspection: the Figure 5/6 doubling invariant as data.
//!
//! Figure 5 of the paper depicts the steady state of the exchange
//! protocol: at the end of each slot, the number of nodes holding packet
//! `i` has doubled relative to the previous slot (until everyone has it,
//! at which point the packet is consumed and leaves the window). This
//! module recomputes those holder counts from a validated simulation run
//! and checks the invariant mechanically.

use crate::chain::HypercubeStream;
use clustream_core::{CoreError, NodeId, PacketId};
use clustream_sim::{RunResult, SimConfig, Simulator};

/// Holder counts of one packet over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSpread {
    /// The packet.
    pub packet: u64,
    /// `counts[i]` = number of receivers holding the packet at the end of
    /// slot `first_slot + i`, from first appearance until saturation.
    pub first_slot: u64,
    /// Per-slot holder counts.
    pub counts: Vec<usize>,
}

impl PacketSpread {
    /// Whether the holder count at least doubles every slot until
    /// saturation at `n` (the Figure 5 invariant; the final step may be a
    /// partial doubling when `n` is not a power of two).
    pub fn doubles_until_saturation(&self, n: usize) -> bool {
        self.counts.windows(2).all(|w| w[1] >= (2 * w[0]).min(n)) && self.counts.last() == Some(&n)
    }
}

/// Snapshot of how each tracked packet spread through a single-cube run.
pub fn packet_spreads(n: usize, track: u64) -> Result<Vec<PacketSpread>, CoreError> {
    let mut s = HypercubeStream::new(n)?;
    let horizon = 4 * (track + 16);
    let r = Simulator::run(&mut s, &SimConfig::until_complete(track, horizon))?;
    Ok(spreads_from_run(&r, n, track))
}

/// Extract spreads from an existing run.
pub fn spreads_from_run(r: &RunResult, n: usize, track: u64) -> Vec<PacketSpread> {
    (0..track)
        .map(|p| {
            let usable: Vec<u64> = (1..=n as u32)
                .filter_map(|id| r.arrivals.usable_slot(NodeId(id), PacketId(p)))
                .map(|s| s.t())
                .collect();
            // "Holding at end of slot t" = usable ≤ t + 1.
            let first = usable.iter().min().copied().unwrap_or(0).saturating_sub(1);
            let last = usable.iter().max().copied().unwrap_or(0).saturating_sub(1);
            let counts = (first..=last)
                .map(|t| usable.iter().filter(|&&u| u <= t + 1).count())
                .collect();
            PacketSpread {
                packet: p,
                first_slot: first,
                counts,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5's headline: every packet's holder count doubles per slot
    /// until all N = 2^k − 1 receivers have it.
    #[test]
    fn doubling_invariant_special_n() {
        for k in [2usize, 3, 4, 5] {
            let n = (1 << k) - 1;
            let spreads = packet_spreads(n, 12).unwrap();
            for s in &spreads {
                assert!(
                    s.doubles_until_saturation(n),
                    "k={k} packet {}: counts {:?}",
                    s.packet,
                    s.counts
                );
            }
        }
    }

    /// Saturation takes exactly k slots in steady state (1 → 2 → … → N).
    #[test]
    fn saturation_takes_k_slots() {
        let k = 4usize;
        let n = 15;
        let spreads = packet_spreads(n, 16).unwrap();
        // Skip the warm-up packets; steady-state packets spread in k steps.
        for s in spreads.iter().skip(k + 1) {
            assert!(
                s.counts.len() <= k + 1,
                "packet {} took {} slots: {:?}",
                s.packet,
                s.counts.len(),
                s.counts
            );
        }
    }

    #[test]
    fn counts_are_monotone_for_arbitrary_n() {
        let spreads = packet_spreads(11, 12).unwrap();
        for s in &spreads {
            assert!(s.counts.windows(2).all(|w| w[1] >= w[0]), "{:?}", s.counts);
            assert_eq!(*s.counts.last().unwrap(), 11);
        }
    }
}
