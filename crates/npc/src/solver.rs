//! Exact solver for the Two Interior-Disjoint Tree problem.
//!
//! **Characterization.** A spanning tree of `G` rooted at `r` whose
//! interior (non-leaf) vertices are contained in `W ∪ {r}` exists iff
//! `G[W ∪ {r}]` is connected and every vertex outside `W ∪ {r}` has a
//! neighbor inside (take any spanning tree of the induced subgraph and
//! hang the rest as leaves). Conversely, the interior of a spanning tree
//! is connected and dominates everything. Two interior-disjoint rooted
//! spanning trees therefore exist iff there are **disjoint**
//! `W₁, W₂ ⊆ V ∖ {r}` both satisfying the condition — the root is allowed
//! to be interior in both, exactly as in the paper.
//!
//! The solver enumerates `(W₁, W₂)` pairs (≈ `3^(n−1)` work), so it is
//! exact for the test-scale instances an NP-complete problem permits.

use crate::graph::Graph;

/// A rooted spanning tree as a parent table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    /// The root.
    pub root: usize,
    /// `parent[v]` for `v ≠ root`; `parent[root] = root`.
    pub parent: Vec<usize>,
}

impl SpanningTree {
    /// Interior vertices: every vertex that is some vertex's parent,
    /// excluding the root.
    pub fn interior(&self) -> u64 {
        let mut m = 0u64;
        for (v, &p) in self.parent.iter().enumerate() {
            if v != self.root {
                m |= 1 << p;
            }
        }
        m & !(1 << self.root)
    }

    /// Check this is a spanning tree of `g` rooted at `root`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        if self.parent.len() != g.n() || self.parent[self.root] != self.root {
            return false;
        }
        for (v, &p) in self.parent.iter().enumerate() {
            if v == self.root {
                continue;
            }
            if !g.has_edge(v, p) {
                return false;
            }
            // Walk to the root, bounded by n steps (cycle guard).
            let mut cur = v;
            for _ in 0..g.n() {
                cur = self.parent[cur];
                if cur == self.root {
                    break;
                }
            }
            if cur != self.root {
                return false;
            }
        }
        true
    }
}

/// `W ∪ {r}` works as an interior cover: induced subgraph connected and
/// dominating everything else.
fn valid_cover(g: &Graph, r: usize, w: u64) -> bool {
    let core = w | (1 << r);
    let rest = g.full_mask() & !core;
    g.connected_within(core) && (g.dominated_by(core) & rest) == rest
}

/// Build a concrete spanning tree whose interior ⊆ `w ∪ {r}`.
fn build_tree(g: &Graph, r: usize, w: u64) -> SpanningTree {
    debug_assert!(valid_cover(g, r, w));
    let core = w | (1 << r);
    let n = g.n();
    let mut parent = vec![usize::MAX; n];
    parent[r] = r;
    // BFS over the core.
    let mut queue = std::collections::VecDeque::from([r]);
    while let Some(v) = queue.pop_front() {
        let mut nb = g.neighbors(v) & core;
        while nb != 0 {
            let u = nb.trailing_zeros() as usize;
            nb &= nb - 1;
            if parent[u] == usize::MAX {
                parent[u] = v;
                queue.push_back(u);
            }
        }
    }
    // Hang every remaining vertex as a leaf off some core neighbor.
    for (v, p) in parent.iter_mut().enumerate() {
        if *p == usize::MAX {
            *p = (g.neighbors(v) & core).trailing_zeros() as usize;
        }
    }
    SpanningTree { root: r, parent }
}

/// Verify two trees are spanning, rooted at the same root, and
/// interior-disjoint (the root may be interior in both).
pub fn verify_interior_disjoint(g: &Graph, t1: &SpanningTree, t2: &SpanningTree) -> bool {
    t1.root == t2.root && t1.is_valid(g) && t2.is_valid(g) && (t1.interior() & t2.interior()) == 0
}

/// Exact decision + witness: two interior-disjoint spanning trees of `g`
/// rooted at `r`, if they exist.
///
/// ```
/// use clustream_npc::{find_two_interior_disjoint_trees, verify_interior_disjoint, Graph};
///
/// // A 5-cycle: route clockwise and counter-clockwise.
/// let mut g = Graph::new(5)?;
/// for v in 0..5 {
///     g.add_edge(v, (v + 1) % 5);
/// }
/// let (t1, t2) = find_two_interior_disjoint_trees(&g, 0).expect("C₅ splits");
/// assert!(verify_interior_disjoint(&g, &t1, &t2));
/// # Ok::<(), clustream_core::CoreError>(())
/// ```
pub fn find_two_interior_disjoint_trees(
    g: &Graph,
    r: usize,
) -> Option<(SpanningTree, SpanningTree)> {
    assert!(r < g.n());
    if g.n() == 1 {
        let t = SpanningTree {
            root: r,
            parent: vec![r],
        };
        return Some((t.clone(), t));
    }
    let pool = g.full_mask() & !(1 << r);
    // Enumerate W₁ ⊆ pool; for each valid W₁, enumerate W₂ over subsets of
    // the remainder. Iterating supersets-last keeps witnesses small.
    let mut w1 = 0u64;
    loop {
        if valid_cover(g, r, w1) {
            let rem = pool & !w1;
            // Enumerate subsets of rem (including 0).
            let mut w2 = 0u64;
            loop {
                if valid_cover(g, r, w2) {
                    return Some((build_tree(g, r, w1), build_tree(g, r, w2)));
                }
                if w2 == rem {
                    break;
                }
                w2 = (w2.wrapping_sub(rem)) & rem; // next subset
            }
        }
        if w1 == pool {
            return None;
        }
        w1 = (w1.wrapping_sub(pool)) & pool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n).unwrap();
        for a in 0..n {
            for b in a + 1..n {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn complete_graphs_always_have_two_trees() {
        for n in 2..=8 {
            let g = complete(n);
            let (t1, t2) = find_two_interior_disjoint_trees(&g, 0)
                .unwrap_or_else(|| panic!("K_{n} must admit two trees"));
            assert!(verify_interior_disjoint(&g, &t1, &t2));
        }
    }

    #[test]
    fn star_rooted_at_center_works() {
        let mut g = Graph::new(6).unwrap();
        for v in 1..6 {
            g.add_edge(0, v);
        }
        let (t1, t2) = find_two_interior_disjoint_trees(&g, 0).unwrap();
        assert!(verify_interior_disjoint(&g, &t1, &t2));
        // Both trees are the star itself: interiors are empty (root only).
        assert_eq!(t1.interior(), 0);
        assert_eq!(t2.interior(), 0);
    }

    #[test]
    fn star_rooted_at_leaf_fails() {
        // r — c — {others}: every tree must route through c, so c is
        // interior in both. No two interior-disjoint trees.
        let mut g = Graph::new(5).unwrap();
        for v in [0usize, 2, 3, 4] {
            g.add_edge(1, v);
        }
        assert!(find_two_interior_disjoint_trees(&g, 0).is_none());
    }

    #[test]
    fn path_rooted_at_end_fails() {
        let mut g = Graph::new(3).unwrap();
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(find_two_interior_disjoint_trees(&g, 0).is_none());
    }

    #[test]
    fn cycle_rooted_anywhere_works() {
        // C_5: W₁ = one arc's interior, W₂ = the other arc's.
        let mut g = Graph::new(5).unwrap();
        for v in 0..5 {
            g.add_edge(v, (v + 1) % 5);
        }
        let (t1, t2) = find_two_interior_disjoint_trees(&g, 0).unwrap();
        assert!(verify_interior_disjoint(&g, &t1, &t2));
    }

    #[test]
    fn two_vertex_graph() {
        let mut g = Graph::new(2).unwrap();
        g.add_edge(0, 1);
        let (t1, t2) = find_two_interior_disjoint_trees(&g, 0).unwrap();
        assert!(verify_interior_disjoint(&g, &t1, &t2));
    }

    #[test]
    fn tree_verifier_rejects_broken_trees() {
        let g = complete(4);
        let good = SpanningTree {
            root: 0,
            parent: vec![0, 0, 0, 0],
        };
        assert!(good.is_valid(&g));
        // 2 and 3 parent each other: a cycle.
        let cyclic = SpanningTree {
            root: 0,
            parent: vec![0, 0, 3, 2],
        };
        assert!(!cyclic.is_valid(&g));
        // Parent edge not in graph.
        let mut sparse = Graph::new(3).unwrap();
        sparse.add_edge(0, 1);
        sparse.add_edge(1, 2);
        let bad = SpanningTree {
            root: 0,
            parent: vec![0, 0, 0],
        };
        assert!(!bad.is_valid(&sparse));
    }

    #[test]
    fn interiors_are_computed_correctly() {
        // Path tree 0 ← 1 ← 2 ← 3 rooted at 0: interior = {1, 2}.
        let t = SpanningTree {
            root: 0,
            parent: vec![0, 0, 1, 2],
        };
        assert_eq!(t.interior(), 0b0110);
    }
}
