//! Micro-benchmarks for the overlay constructions themselves: structured
//! vs greedy forests, hypercube decomposition, backbone, and churn
//! operations. Plain timing harness (criterion is unavailable offline).

use clustream_bench::timing::bench;
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{greedy_forest, structured_forest, Construction, DynamicForest};
use clustream_overlay::Backbone;

fn main() {
    println!("== forest_construction ==");
    for n in [100usize, 1000, 10_000] {
        bench(&format!("structured_d3_n{n}"), 20, || {
            structured_forest(n, 3).unwrap()
        });
        bench(&format!("greedy_d3_n{n}"), 20, || {
            greedy_forest(n, 3).unwrap()
        });
    }

    println!("== hypercube_build ==");
    for n in [1000usize, 100_000] {
        bench(&format!("hypercube_n{n}"), 20, || {
            HypercubeStream::new(n).unwrap()
        });
    }

    bench("backbone_k1000_d3", 20, || Backbone::new(1000, 3).unwrap());

    let mut f = DynamicForest::new(300, 3, Construction::Greedy, true).unwrap();
    bench("churn_add_remove_cycle_n300_d3", 1000, || {
        let (id, _) = f.add();
        f.remove(id).unwrap();
    });
}
