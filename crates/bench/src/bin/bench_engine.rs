//! Reference-vs-fast engine comparison on the Figure 4 / Table 1 /
//! scale-sweep simulation workloads.
//!
//! Each workload is simulated by both engines (results are first checked
//! field-by-field for equality), timed, and reported as slots/sec plus
//! the fast-engine speedup. A machine-readable summary is written to
//! `BENCH_engine.json` in the current directory.

use clustream_bench::render_table;
use clustream_bench::suites::{
    engine_workloads, scale_workloads, EngineReport, EngineRow, ScaleRow,
};
use clustream_bench::timing::{bench, bench_prepared, peak_rss_bytes};
use clustream_sim::{diff_fields, FastEngine, MegaEngine, SimConfig, Simulator};

fn main() {
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    if build == "debug" {
        eprintln!("warning: debug build — speedups are not representative");
    }

    let mut engine = FastEngine::new();
    let mut rows = Vec::new();
    for w in engine_workloads() {
        let cfg = SimConfig::until_complete(w.track, 1_000_000);

        // Correctness first: both engines must agree bit for bit.
        let reference = Simulator::run((w.make)().as_mut(), &cfg).unwrap();
        let fast = engine.run((w.make)().as_mut(), &cfg).unwrap();
        let diffs = diff_fields(&reference, &fast);
        assert!(diffs.is_empty(), "{}: engines diverge on {diffs:?}", w.name);

        let m_ref = bench(&format!("{}_reference", w.name), w.samples, || {
            Simulator::run((w.make)().as_mut(), &cfg).unwrap().slots_run
        });
        let m_fast = bench(&format!("{}_fast", w.name), w.samples, || {
            engine.run((w.make)().as_mut(), &cfg).unwrap().slots_run
        });

        let ref_s = m_ref.min().as_secs_f64();
        let fast_s = m_fast.min().as_secs_f64();
        rows.push(EngineRow {
            workload: w.name.to_string(),
            slots_run: reference.slots_run,
            transmissions: reference.total_transmissions,
            samples: w.samples,
            reference_min_ns: m_ref.min().as_nanos() as u64,
            fast_min_ns: m_fast.min().as_nanos() as u64,
            reference_slots_per_sec: reference.slots_run as f64 / ref_s,
            fast_slots_per_sec: reference.slots_run as f64 / fast_s,
            speedup: ref_s / fast_s,
        });
    }

    let min_speedup = rows.iter().map(|r| r.speedup).fold(f64::INFINITY, f64::min);
    println!(
        "\n{}",
        render_table(
            &[
                "workload",
                "slots",
                "ref slots/s",
                "fast slots/s",
                "speedup"
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.slots_run.to_string(),
                        format!("{:.0}", r.reference_slots_per_sec),
                        format!("{:.0}", r.fast_slots_per_sec),
                        format!("{:.2}x", r.speedup),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );
    println!("minimum speedup across workloads: {min_speedup:.2}x");

    // Scaling section: fast vs mega at growing populations. Scheme
    // construction dominates wall time at these sizes, so each sample
    // builds its scheme untimed and only the engine run is measured.
    let mut scaling = Vec::new();
    for w in scale_workloads() {
        let cfg = SimConfig::until_complete(w.track, 1_000_000);

        // Correctness first — every row, including the generate-only
        // ones: fast and mega must agree bit for bit.
        let fast = FastEngine::new().run((w.make)().as_mut(), &cfg).unwrap();
        let mega = MegaEngine::new().run((w.make)().as_mut(), &cfg).unwrap();
        let diffs = diff_fields(&fast, &mega);
        assert!(diffs.is_empty(), "{}: engines diverge on {diffs:?}", w.name);

        let m_fast = bench_prepared(
            &format!("{}_fast", w.name),
            w.samples,
            || (w.make)(),
            |mut s| FastEngine::new().run(s.as_mut(), &cfg).unwrap().slots_run,
        );
        let m_mega = bench_prepared(
            &format!("{}_mega", w.name),
            w.samples,
            || (w.make)(),
            |mut s| MegaEngine::new().run(s.as_mut(), &cfg).unwrap().slots_run,
        );

        let fast_s = m_fast.min().as_secs_f64();
        let mega_s = m_mega.min().as_secs_f64();
        scaling.push(ScaleRow {
            workload: w.name.to_string(),
            n: w.n,
            slots_run: fast.slots_run,
            transmissions: fast.total_transmissions,
            samples: w.samples,
            fast_min_ns: m_fast.min().as_nanos() as u64,
            mega_min_ns: m_mega.min().as_nanos() as u64,
            fast_slots_per_sec: fast.slots_run as f64 / fast_s,
            mega_slots_per_sec: fast.slots_run as f64 / mega_s,
            mega_speedup: fast_s / mega_s,
            peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
            gate: w.gate,
        });
    }

    let min_mega_speedup = scaling
        .iter()
        .filter(|r| r.gate)
        .map(|r| r.mega_speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\n{}",
        render_table(
            &[
                "scale workload",
                "n",
                "slots",
                "fast slots/s",
                "mega slots/s",
                "speedup",
                "peak RSS"
            ],
            &scaling
                .iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.n.to_string(),
                        r.slots_run.to_string(),
                        format!("{:.0}", r.fast_slots_per_sec),
                        format!("{:.0}", r.mega_slots_per_sec),
                        format!("{:.2}x", r.mega_speedup),
                        format!("{:.0} MiB", r.peak_rss_bytes as f64 / (1 << 20) as f64),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );
    println!("minimum gated mega speedup: {min_mega_speedup:.2}x");

    let report = EngineReport {
        build: build.to_string(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows,
        min_speedup,
        scaling,
        min_mega_speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_engine.json", json + "\n").expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
