//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;
use std::fmt;

/// CLI failure: bad usage or a propagated model error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Malformed invocation; the string is the message to print.
    Usage(String),
    /// The underlying library rejected the configuration.
    Model(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<clustream_core::CoreError> for CliError {
    fn from(e: clustream_core::CoreError) -> Self {
        CliError::Model(e.to_string())
    }
}

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgMap {
    map: BTreeMap<String, String>,
}

impl ArgMap {
    /// Parse `["--key", "value", …]`.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut map = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(k) = it.next() {
            let key = k
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got `{k}`")))?;
            let v = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("--{key} requires a value")))?;
            if map.insert(key.to_string(), v.clone()).is_some() {
                return Err(CliError::Usage(format!("--{key} given twice")));
            }
        }
        Ok(ArgMap { map })
    }

    /// Required string value.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.map
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| CliError::Usage(format!("missing required --{key}")))
    }

    /// Optional string value.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(|s| s.as_str())
    }

    /// Optional boolean with default (`--key true|false` — every flag
    /// takes a value in this grammar, booleans included).
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(other) => Err(CliError::Usage(format!(
                "--{key} must be `true` or `false`, got `{other}`"
            ))),
        }
    }

    /// Required integer.
    pub fn required_usize(&self, key: &str) -> Result<usize, CliError> {
        self.required(key)?
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key} must be an integer")))
    }

    /// Optional integer with default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} must be an integer"))),
        }
    }

    /// Optional `u64` with default (seeds, slot counts).
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} must be a non-negative integer"))),
        }
    }

    /// Optional float with default (jitter spans, tail parameters).
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} must be a number"))),
        }
    }

    /// Optional duration with default, returned in DES ticks. Values are
    /// a number followed by a unit: `2.5slots`, `300ticks` (singular
    /// forms accepted). The unit is mandatory — a bare number is
    /// ambiguous between the two clocks.
    pub fn duration_ticks_or(
        &self,
        key: &str,
        ticks_per_slot: u64,
        default_ticks: u64,
    ) -> Result<u64, CliError> {
        let Some(v) = self.optional(key) else {
            return Ok(default_ticks);
        };
        let split = v.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(v.len());
        let (num, unit) = v.split_at(split);
        let x: f64 = num.trim().parse().map_err(|_| {
            CliError::Usage(format!(
                "--{key} must be a duration like `2.5slots` or `300ticks`, got `{v}`"
            ))
        })?;
        if !x.is_finite() || x < 0.0 {
            return Err(CliError::Usage(format!(
                "--{key} must be a non-negative duration, got `{v}`"
            )));
        }
        match unit {
            "slots" | "slot" => Ok((x * ticks_per_slot as f64).round() as u64),
            "ticks" | "tick" => Ok(x.round() as u64),
            other => Err(CliError::Usage(format!(
                "--{key} has unknown unit `{other}`; valid units are: slots, ticks"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = ArgMap::parse(&argv(&["--n", "100", "--d", "3"])).unwrap();
        assert_eq!(a.required("n").unwrap(), "100");
        assert_eq!(a.required_usize("d").unwrap(), 3);
        assert_eq!(a.usize_or("track", 48).unwrap(), 48);
        assert!(a.optional("missing").is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(ArgMap::parse(&argv(&["n", "100"])).is_err());
        assert!(ArgMap::parse(&argv(&["--n"])).is_err());
        assert!(ArgMap::parse(&argv(&["--n", "1", "--n", "2"])).is_err());
        let a = ArgMap::parse(&argv(&["--n", "abc"])).unwrap();
        assert!(a.required_usize("n").is_err());
        assert!(a.required("d").is_err());
    }

    #[test]
    fn numeric_helpers_parse_and_default() {
        let a = ArgMap::parse(&argv(&["--seed", "42", "--jitter", "0.75"])).unwrap();
        assert_eq!(a.u64_or("seed", 0).unwrap(), 42);
        assert_eq!(a.u64_or("other-seed", 7).unwrap(), 7);
        assert!((a.f64_or("jitter", 0.0).unwrap() - 0.75).abs() < 1e-12);
        assert!((a.f64_or("alpha", 1.5).unwrap() - 1.5).abs() < 1e-12);

        let bad = ArgMap::parse(&argv(&["--seed", "-3", "--jitter", "fast"])).unwrap();
        assert!(bad.u64_or("seed", 0).is_err());
        assert!(bad.f64_or("jitter", 0.0).is_err());
    }

    #[test]
    fn durations_parse_slots_and_ticks() {
        let a = ArgMap::parse(&argv(&[
            "--suspect-timeout",
            "2.5slots",
            "--nack-timeout",
            "300ticks",
            "--nack-cap",
            "1slot",
        ]))
        .unwrap();
        assert_eq!(
            a.duration_ticks_or("suspect-timeout", 1024, 0).unwrap(),
            2560
        );
        assert_eq!(a.duration_ticks_or("nack-timeout", 1024, 0).unwrap(), 300);
        assert_eq!(a.duration_ticks_or("nack-cap", 1024, 0).unwrap(), 1024);
        // Absent key falls back to the default, in ticks.
        assert_eq!(a.duration_ticks_or("nack-jitter", 1024, 77).unwrap(), 77);
    }

    #[test]
    fn duration_unknown_unit_lists_valid_units() {
        let a = ArgMap::parse(&argv(&["--suspect-timeout", "3yr"])).unwrap();
        let err = a
            .duration_ticks_or("suspect-timeout", 1024, 0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown unit `yr`"), "{err}");
        for unit in ["slots", "ticks"] {
            assert!(err.contains(unit), "missing `{unit}` in: {err}");
        }
        // A bare number has no unit — rejected the same way.
        let bare = ArgMap::parse(&argv(&["--suspect-timeout", "6"])).unwrap();
        let err = bare
            .duration_ticks_or("suspect-timeout", 1024, 0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("valid units are: slots, ticks"), "{err}");
        // Negative and garbage numbers are usage errors too.
        let neg = ArgMap::parse(&argv(&["--x", "-2slots", "--y", "fastslots"])).unwrap();
        assert!(neg.duration_ticks_or("x", 1024, 0).is_err());
        assert!(neg.duration_ticks_or("y", 1024, 0).is_err());
    }
}
