//! Parameter grids for the experiment sweeps.

/// Linearly spaced population sizes `min..=max` (inclusive, `steps ≥ 2`
/// points, deduplicated, ascending). Figure 4 sweeps N linearly to 2000.
pub fn linear_grid(min: usize, max: usize, steps: usize) -> Vec<usize> {
    assert!(min >= 1 && max >= min && steps >= 2);
    let mut out: Vec<usize> = (0..steps)
        .map(|i| min + (max - min) * i / (steps - 1))
        .collect();
    out.dedup();
    out
}

/// Geometrically spaced sizes from `min` to `max` (inclusive endpoints,
/// deduplicated). Useful for log-x sweeps like Table 1's N axis.
pub fn geometric_grid(min: usize, max: usize, steps: usize) -> Vec<usize> {
    assert!(min >= 1 && max >= min && steps >= 2);
    let ratio = (max as f64 / min as f64).powf(1.0 / (steps - 1) as f64);
    let mut out: Vec<usize> = (0..steps)
        .map(|i| ((min as f64) * ratio.powi(i as i32)).round() as usize)
        .collect();
    out[0] = min;
    *out.last_mut().expect("steps ≥ 2") = max;
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints_and_spacing() {
        let g = linear_grid(100, 2000, 20);
        assert_eq!(*g.first().unwrap(), 100);
        assert_eq!(*g.last().unwrap(), 2000);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn geometric_endpoints_and_growth() {
        let g = geometric_grid(10, 10_000, 13);
        assert_eq!(*g.first().unwrap(), 10);
        assert_eq!(*g.last().unwrap(), 10_000);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        // Ratio roughly constant.
        let r1 = g[1] as f64 / g[0] as f64;
        let r2 = g[g.len() - 1] as f64 / g[g.len() - 2] as f64;
        assert!((r1 / r2 - 1.0).abs() < 0.5);
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(linear_grid(5, 5, 4), vec![5]);
        assert_eq!(geometric_grid(7, 7, 3), vec![7]);
    }
}
