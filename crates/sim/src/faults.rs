//! Fault injection: link loss and node crashes.
//!
//! The paper's schemes have *no retransmission*: each packet travels one
//! path to each receiver. Fault injection quantifies the consequences the
//! paper's introduction argues about qualitatively — e.g. that a single
//! tree is fragile (an interior crash starves its whole subtree of the
//! *entire* stream) while the multi-tree overlay degrades gracefully (the
//! crashed node is interior in only one of `d` trees, so its subtree loses
//! only every `d`-th packet).
//!
//! Two crash flavors are modelled:
//!
//! * **fail-silent uplink** ([`FaultPlan::crash`]): the node stops
//!   *sending* from its crash slot onward but keeps receiving and playing
//!   — the worst case for contribution-based overlays;
//! * **fail-stop** ([`FaultPlan::fail_stop`]): the node stops sending
//!   *and* receiving/playing — a true process crash. In-flight packets
//!   addressed to it are dropped on arrival (counted in
//!   [`LossReport::stopped_receives`]).
//!
//! With a [`FaultPlan`] installed, the engine:
//!
//! * drops each otherwise-valid transmission with probability
//!   `loss_rate` (seeded, deterministic) — the send still spends uplink
//!   capacity, the packet just never arrives;
//! * suppresses all sends from a node from its crash slot onward;
//! * converts `PacketNotHeld` from a *non-source* sender into a counted
//!   suppression instead of a hard error (a node cannot forward what it
//!   never received — exactly how loss propagates downstream), and
//!   attributes each such suppression to the fault that originated it
//!   ([`FaultCause`]: link loss vs. crash);
//! * reports per-node missing packets instead of failing playback
//!   analysis.

use clustream_core::NodeId;
use serde::{Deserialize, Serialize};

/// Deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Probability each validated transmission is lost in flight.
    pub loss_rate: f64,
    /// Seed for the loss process.
    pub seed: u64,
    /// `(node, slot)`: the node sends nothing from `slot` onward. (It
    /// still receives and plays; "fail-silent uplink", the worst case for
    /// contribution-based overlays.)
    pub crashes: Vec<(NodeId, u64)>,
    /// `(node, slot)`: fail-stop crashes — the node stops sending **and**
    /// receiving/playing from `slot` onward.
    pub stop_crashes: Vec<(NodeId, u64)>,
}

impl FaultPlan {
    /// Pure link loss.
    pub fn loss(loss_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate));
        FaultPlan {
            loss_rate,
            seed,
            crashes: Vec::new(),
            stop_crashes: Vec::new(),
        }
    }

    /// A single fail-silent uplink crash, no link loss.
    pub fn crash(node: NodeId, slot: u64) -> Self {
        FaultPlan {
            loss_rate: 0.0,
            seed: 0,
            crashes: vec![(node, slot)],
            stop_crashes: Vec::new(),
        }
    }

    /// A single fail-stop crash (stops receiving and playing too), no
    /// link loss.
    pub fn fail_stop(node: NodeId, slot: u64) -> Self {
        FaultPlan {
            loss_rate: 0.0,
            seed: 0,
            crashes: Vec::new(),
            stop_crashes: vec![(node, slot)],
        }
    }

    /// Whether `node`'s uplink is dead at `slot` (either crash flavor —
    /// fail-stop implies fail-silent).
    pub fn crashed(&self, node: NodeId, slot: u64) -> bool {
        self.crashes.iter().any(|&(n, s)| n == node && slot >= s) || self.stopped(node, slot)
    }

    /// Whether `node` has fail-stopped at `slot` (no longer receives or
    /// plays).
    pub fn stopped(&self, node: NodeId, slot: u64) -> bool {
        self.stop_crashes
            .iter()
            .any(|&(n, s)| n == node && slot >= s)
    }
}

/// The originating fault behind a missing packet copy: did the packet
/// first disappear to the seeded loss process, or to a crashed node?
/// Downstream suppressions inherit the cause of the copy the sender
/// never received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultCause {
    /// Lost in flight by the link-loss process.
    Loss,
    /// Suppressed or dropped because of a crashed (fail-silent or
    /// fail-stop) node.
    Crash,
}

/// Fallback attribution for a suppression whose originating fault was
/// never observed (e.g. a scheme asked a node to forward a packet no one
/// ever sent it). Crashes are blamed when the plan contains any; pure
/// loss plans blame loss.
pub fn default_cause(plan: &FaultPlan) -> FaultCause {
    if plan.crashes.is_empty() && plan.stop_crashes.is_empty() {
        FaultCause::Loss
    } else {
        FaultCause::Crash
    }
}

/// Outcome of playback analysis when packets may be missing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossyPlayback {
    /// The node analysed.
    pub node: NodeId,
    /// Packets of the tracked window that never arrived.
    pub missing: usize,
    /// Minimal safe playback start over the packets that *did* arrive
    /// (missing packets would be skipped or concealed by the player).
    pub playback_delay: u64,
    /// Buffer high-water mark over the packets that did arrive, under the
    /// same playback schedule as the clean analysis (start at
    /// `playback_delay`, one packet-slot consumed per slot, missing
    /// packets concealed). Equals the clean `max_buffer` when nothing is
    /// missing.
    pub max_buffer: usize,
}

/// Aggregate loss metrics of a faulty run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LossReport {
    /// Transmissions dropped in flight by the loss process.
    pub lost_in_flight: u64,
    /// Sends suppressed because the sender had crashed.
    pub crash_suppressed: u64,
    /// Sends suppressed because the sender never received the packet
    /// (faults propagating downstream). Always equals
    /// `propagation_from_loss + propagation_from_crash`.
    pub propagation_suppressed: u64,
    /// Downstream suppressions whose originating fault was link loss.
    pub propagation_from_loss: u64,
    /// Downstream suppressions whose originating fault was a crash.
    pub propagation_from_crash: u64,
    /// Arrivals dropped because the receiver had fail-stopped.
    pub stopped_receives: u64,
    /// Per-node missing tracked packets (nodes with zero omitted).
    pub missing: Vec<(NodeId, usize)>,
}

impl LossReport {
    /// Total missing packet instances across nodes.
    pub fn total_missing(&self) -> usize {
        self.missing.iter().map(|(_, m)| m).sum()
    }

    /// Number of receivers that missed at least one tracked packet.
    pub fn affected_nodes(&self) -> usize {
        self.missing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_predicate() {
        let p = FaultPlan::crash(NodeId(3), 10);
        assert!(!p.crashed(NodeId(3), 9));
        assert!(p.crashed(NodeId(3), 10));
        assert!(p.crashed(NodeId(3), 99));
        assert!(!p.crashed(NodeId(4), 99));
        // Fail-silent crashes do not stop the downlink.
        assert!(!p.stopped(NodeId(3), 99));
    }

    #[test]
    fn fail_stop_implies_fail_silent() {
        let p = FaultPlan::fail_stop(NodeId(5), 4);
        assert!(!p.stopped(NodeId(5), 3));
        assert!(p.stopped(NodeId(5), 4));
        assert!(p.crashed(NodeId(5), 4), "fail-stop also kills the uplink");
        assert!(!p.crashed(NodeId(5), 3));
        assert!(!p.stopped(NodeId(6), 100));
    }

    #[test]
    fn loss_plan_validates_rate() {
        let p = FaultPlan::loss(0.05, 7);
        assert_eq!(p.crashes.len(), 0);
        assert!((p.loss_rate - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_rate() {
        let _ = FaultPlan::loss(1.5, 0);
    }

    #[test]
    fn report_aggregates() {
        let r = LossReport {
            lost_in_flight: 4,
            crash_suppressed: 2,
            propagation_suppressed: 7,
            propagation_from_loss: 5,
            propagation_from_crash: 2,
            stopped_receives: 0,
            missing: vec![(NodeId(1), 3), (NodeId(5), 2)],
        };
        assert_eq!(r.total_missing(), 5);
        assert_eq!(r.affected_nodes(), 2);
    }
}
