//! Fault injection: link loss and node crashes.
//!
//! The paper's schemes have *no retransmission*: each packet travels one
//! path to each receiver. Fault injection quantifies the consequences the
//! paper's introduction argues about qualitatively — e.g. that a single
//! tree is fragile (an interior crash starves its whole subtree of the
//! *entire* stream) while the multi-tree overlay degrades gracefully (the
//! crashed node is interior in only one of `d` trees, so its subtree loses
//! only every `d`-th packet).
//!
//! With a [`FaultPlan`] installed, the engine:
//!
//! * drops each otherwise-valid transmission with probability
//!   `loss_rate` (seeded, deterministic) — the send still spends uplink
//!   capacity, the packet just never arrives;
//! * suppresses all sends from a node from its crash slot onward;
//! * converts `PacketNotHeld` from a *non-source* sender into a counted
//!   suppression instead of a hard error (a node cannot forward what it
//!   never received — exactly how loss propagates downstream);
//! * reports per-node missing packets instead of failing playback
//!   analysis.

use clustream_core::NodeId;
use serde::{Deserialize, Serialize};

/// Deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Probability each validated transmission is lost in flight.
    pub loss_rate: f64,
    /// Seed for the loss process.
    pub seed: u64,
    /// `(node, slot)`: the node sends nothing from `slot` onward. (It
    /// still receives and plays; "fail-silent uplink", the worst case for
    /// contribution-based overlays.)
    pub crashes: Vec<(NodeId, u64)>,
}

impl FaultPlan {
    /// Pure link loss.
    pub fn loss(loss_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate));
        FaultPlan {
            loss_rate,
            seed,
            crashes: Vec::new(),
        }
    }

    /// A single crash, no link loss.
    pub fn crash(node: NodeId, slot: u64) -> Self {
        FaultPlan {
            loss_rate: 0.0,
            seed: 0,
            crashes: vec![(node, slot)],
        }
    }

    /// Whether `node` is crashed at `slot`.
    pub fn crashed(&self, node: NodeId, slot: u64) -> bool {
        self.crashes.iter().any(|&(n, s)| n == node && slot >= s)
    }
}

/// Outcome of playback analysis when packets may be missing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossyPlayback {
    /// The node analysed.
    pub node: NodeId,
    /// Packets of the tracked window that never arrived.
    pub missing: usize,
    /// Minimal safe playback start over the packets that *did* arrive
    /// (missing packets would be skipped or concealed by the player).
    pub playback_delay: u64,
    /// Buffer high-water mark over the packets that did arrive, under the
    /// same playback schedule as the clean analysis (start at
    /// `playback_delay`, one packet-slot consumed per slot, missing
    /// packets concealed). Equals the clean `max_buffer` when nothing is
    /// missing.
    pub max_buffer: usize,
}

/// Aggregate loss metrics of a faulty run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LossReport {
    /// Transmissions dropped in flight by the loss process.
    pub lost_in_flight: u64,
    /// Sends suppressed because the sender had crashed.
    pub crash_suppressed: u64,
    /// Sends suppressed because the sender never received the packet
    /// (loss propagating downstream).
    pub propagation_suppressed: u64,
    /// Per-node missing tracked packets (nodes with zero omitted).
    pub missing: Vec<(NodeId, usize)>,
}

impl LossReport {
    /// Total missing packet instances across nodes.
    pub fn total_missing(&self) -> usize {
        self.missing.iter().map(|(_, m)| m).sum()
    }

    /// Number of receivers that missed at least one tracked packet.
    pub fn affected_nodes(&self) -> usize {
        self.missing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_predicate() {
        let p = FaultPlan::crash(NodeId(3), 10);
        assert!(!p.crashed(NodeId(3), 9));
        assert!(p.crashed(NodeId(3), 10));
        assert!(p.crashed(NodeId(3), 99));
        assert!(!p.crashed(NodeId(4), 99));
    }

    #[test]
    fn loss_plan_validates_rate() {
        let p = FaultPlan::loss(0.05, 7);
        assert_eq!(p.crashes.len(), 0);
        assert!((p.loss_rate - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_rate() {
        let _ = FaultPlan::loss(1.5, 0);
    }

    #[test]
    fn report_aggregates() {
        let r = LossReport {
            lost_in_flight: 4,
            crash_suppressed: 2,
            propagation_suppressed: 7,
            missing: vec![(NodeId(1), 3), (NodeId(5), 2)],
        };
        assert_eq!(r.total_missing(), 5);
        assert_eq!(r.affected_nodes(), 2);
    }
}
