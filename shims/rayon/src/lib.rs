//! Hermetic in-tree stand-in for the `rayon` crate.
//!
//! Implements the slice `par_iter().map(..).flat_map(..).collect()`
//! pipeline this workspace uses. Work is split into contiguous index
//! chunks across `std::thread::scope` threads (one per available core)
//! and results are concatenated in input order, so output is
//! deterministic regardless of thread count — the same guarantee real
//! rayon's `collect` provides for indexed iterators.

#![allow(clippy::all)]

/// The `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads: one per available core.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item, fanning contiguous chunks across scoped
/// threads; the output preserves input order.
fn chunked_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n_threads = threads().min(items.len().max(1));
    if n_threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(n_threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker thread panicked"));
        }
    });
    out
}

/// Types with a by-reference parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> SlicePar<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct SlicePar<'a, T> {
    items: &'a [T],
}

/// The adapter surface: `map`, `flat_map`, `collect`.
pub trait ParallelIterator: Sized {
    /// Element type flowing through the pipeline.
    type Item: Send;

    /// Evaluate the pipeline into an ordered `Vec`.
    fn run(self) -> Vec<Self::Item>;

    /// Transform each element with `f`.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Transform each element into an iterable and flatten, preserving
    /// element order.
    fn flat_map<I, F>(self, f: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync,
    {
        FlatMap { base: self, f }
    }

    /// Collect into any container buildable from an ordered `Vec`.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.run())
    }
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// `map` adapter; created by [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        chunked_map(self.base.run(), &self.f)
    }
}

/// `flat_map` adapter; created by [`ParallelIterator::flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, I, F> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(B::Item) -> I + Sync,
{
    type Item = I::Item;
    fn run(self) -> Vec<I::Item> {
        let per_item: Vec<Vec<I::Item>> =
            chunked_map(self.base.run(), &|x| (self.f)(x).into_iter().collect());
        per_item.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_preserves_order() {
        let xs = vec![1usize, 2, 3];
        let out: Vec<usize> = xs.par_iter().flat_map(|&x| vec![x; x]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn chained_map_flat_map() {
        let xs: Vec<usize> = (0..50).collect();
        let out: Vec<usize> = xs
            .par_iter()
            .map(|&x| x + 1)
            .flat_map(|x| (0..x).map(move |y| x * 100 + y).collect::<Vec<_>>())
            .collect();
        let expect: Vec<usize> = (0..50)
            .map(|x| x + 1)
            .flat_map(|x| (0..x).map(move |y| x * 100 + y))
            .collect();
        assert_eq!(out, expect);
    }
}
