//! Property tests on the Two Interior-Disjoint Tree solver and the E-4
//! Set Splitting reduction.

use clustream_npc::{
    find_two_interior_disjoint_trees, reduce, verify_interior_disjoint, E4SetSplitting, Graph,
};
use proptest::prelude::*;

/// Random connected graph on n vertices: a random spanning tree plus
/// random extra edges.
fn random_connected(n: usize, extra: &[(usize, usize)], perm_seed: usize) -> Graph {
    let mut g = Graph::new(n).unwrap();
    for v in 1..n {
        // Parent chosen pseudo-deterministically from the seed.
        let p = (v * 31 + perm_seed) % v;
        g.add_edge(v, p);
    }
    for &(a, b) in extra {
        let (a, b) = (a % n, b % n);
        if a != b {
            g.add_edge(a, b);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever the solver answers yes, the witness trees verify.
    #[test]
    fn witnesses_always_verify(
        n in 2usize..10,
        extra in proptest::collection::vec((0usize..10, 0usize..10), 0..12),
        seed in 0usize..1000,
        root in 0usize..10,
    ) {
        let g = random_connected(n, &extra, seed);
        let root = root % n;
        if let Some((t1, t2)) = find_two_interior_disjoint_trees(&g, root) {
            prop_assert!(verify_interior_disjoint(&g, &t1, &t2));
            prop_assert_eq!(t1.root, root);
        }
    }

    /// Adding edges never turns a yes-instance into a no-instance
    /// (validity of an interior cover is preserved under edge addition).
    #[test]
    fn solver_is_edge_monotone(
        n in 3usize..9,
        extra in proptest::collection::vec((0usize..9, 0usize..9), 0..8),
        seed in 0usize..1000,
        new_edge in (0usize..9, 0usize..9),
    ) {
        let g = random_connected(n, &extra, seed);
        let had = find_two_interior_disjoint_trees(&g, 0).is_some();
        let (a, b) = (new_edge.0 % n, new_edge.1 % n);
        if a != b {
            let mut g2 = g.clone();
            g2.add_edge(a, b);
            let has = find_two_interior_disjoint_trees(&g2, 0).is_some();
            prop_assert!(!had || has, "adding an edge destroyed a solution");
        }
    }

    /// The reduction preserves the answer on random E-4 instances
    /// (both directions, via the two exact solvers).
    #[test]
    fn reduction_answer_preserving(
        n_elems in 4usize..7,
        raw_sets in proptest::collection::vec(proptest::collection::vec(0usize..7, 4), 1..5),
    ) {
        // Deduplicate elements inside each set; skip degenerate draws.
        let mut sets = Vec::new();
        for s in &raw_sets {
            let mut v: Vec<usize> = s.iter().map(|&e| e % n_elems).collect();
            v.sort_unstable();
            v.dedup();
            if v.len() == 4 {
                sets.push([v[0], v[1], v[2], v[3]]);
            }
        }
        prop_assume!(!sets.is_empty());
        let inst = E4SetSplitting::new(n_elems, sets).unwrap();
        let splittable = inst.solve_brute().is_some();
        let (g, layout) = reduce(&inst);
        let trees = find_two_interior_disjoint_trees(&g, layout.root);
        prop_assert_eq!(splittable, trees.is_some());
    }

    /// Valid splits found by brute force always split every set.
    #[test]
    fn brute_force_solutions_are_valid(
        n_elems in 4usize..8,
        raw_sets in proptest::collection::vec(proptest::collection::vec(0usize..8, 4), 1..6),
    ) {
        let mut sets = Vec::new();
        for s in &raw_sets {
            let mut v: Vec<usize> = s.iter().map(|&e| e % n_elems).collect();
            v.sort_unstable();
            v.dedup();
            if v.len() == 4 {
                sets.push([v[0], v[1], v[2], v[3]]);
            }
        }
        prop_assume!(!sets.is_empty());
        let inst = E4SetSplitting::new(n_elems, sets).unwrap();
        if let Some(v1) = inst.solve_brute() {
            prop_assert!(inst.is_valid_split(v1));
            prop_assert!(v1.count_ones() >= 1);
            prop_assert!((v1.count_ones() as usize) < n_elems);
        }
    }
}
