//! The multi-tree transmission schedule (§2.2.3).
//!
//! Tree `T_k` carries packets `k, k+d, k+2d, …`. Writing `t = m·d + r`,
//! the source sends packet `k + m·d` to its `r`-th child in `T_k` during
//! slot `t` (one send per tree per slot — `d` sends total, the source's
//! capacity). Every interior node forwards to its `r`-th child in slots
//! `t ≡ r (mod d)`, relaying each packet exactly once per child. Arrival
//! times therefore satisfy a simple recursion: the child with child-index
//! `c` receives a packet in the first slot `> t_parent` congruent to `c`
//! mod `d`, and packet `j + d` of the same tree arrives exactly `d` slots
//! after packet `j`.
//!
//! Three stream modes are supported:
//!
//! * [`StreamMode::PreRecorded`] — all packets available at slot 0;
//! * [`StreamMode::LivePrebuffered`] — the source delays the start by `d`
//!   slots to accumulate `d` packets, then runs the pre-recorded schedule
//!   shifted by `d` ("all nodes experience `d` units of additional delay");
//! * [`StreamMode::LivePipelined`] — tree `T_k`'s injection is gated so
//!   packet `k + m·d` is never sent before slot `2k + m·d` (the paper's
//!   `r = (t+k) mod d` pipelining); receive residues are unchanged, so the
//!   schedule stays collision-free, but the per-tree start is skewed.

use crate::tree::DisjointTrees;
use clustream_core::{
    Availability, NodeId, PacketId, SchedulePeriod, Scheme, Slot, StateView, Transmission, SOURCE,
};

/// When packets become available and how the source paces injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamMode {
    /// §2.2.3 pre-recorded: everything available at slot 0.
    #[default]
    PreRecorded,
    /// Live; source pre-buffers `d` packets, schedule shifts by `d`.
    LivePrebuffered,
    /// Live; per-tree pipelined start (`T_k` begins ~`2k` slots in).
    LivePipelined,
}

impl StreamMode {
    /// The packet-availability model this mode implies.
    pub fn availability(self) -> Availability {
        match self {
            StreamMode::PreRecorded => Availability::PreRecorded,
            StreamMode::LivePrebuffered | StreamMode::LivePipelined => Availability::Live,
        }
    }
}

/// Smallest slot `≥ from` congruent to `c (mod d)`.
fn next_congruent(from: u64, c: u64, d: u64) -> u64 {
    from + (c + d - (from % d)) % d
}

/// The multi-tree streaming scheme: a [`DisjointTrees`] forest plus the
/// round-robin schedule, exposed both as closed-form arrival times and as a
/// [`Scheme`] for the slot simulator.
///
/// ```
/// use clustream_multitree::{greedy_forest, MultiTreeScheme, StreamMode};
/// use clustream_sim::{SimConfig, Simulator};
///
/// let forest = greedy_forest(39, 3)?; // complete: 3 + 9 + 27
/// let mut scheme = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
/// let run = Simulator::run(&mut scheme, &SimConfig::until_complete(36, 10_000))?;
/// // Theorem 2: worst-case delay ≤ h·d = 3·3 for N = 39, d = 3.
/// assert!(run.qos.max_delay() <= 9);
/// assert_eq!(run.duplicate_deliveries, 0);
/// # Ok::<(), clustream_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiTreeScheme {
    forest: DisjointTrees,
    mode: StreamMode,
    /// `recv0[k][pos−1]`: slot in which the node at position `pos` of tree
    /// `T_k` receives the tree's first packet (packet `k`). Packet
    /// `k + m·d` arrives exactly `m·d` slots later.
    recv0: Vec<Vec<u64>>,
}

impl MultiTreeScheme {
    /// Attach the schedule to a forest.
    pub fn new(forest: DisjointTrees, mode: StreamMode) -> Self {
        let d = forest.d() as u64;
        let n_pad = forest.n_pad();
        let mut recv0 = vec![vec![0u64; n_pad]; forest.d()];
        for (k, table) in recv0.iter_mut().enumerate() {
            for pos in 1..=n_pad {
                let c = forest.child_index(pos) as u64;
                table[pos - 1] = if forest.parent_pos(pos) == 0 {
                    // Depth 1: the source's r-th child receives packet k in
                    // slot r (+ mode shift).
                    match mode {
                        StreamMode::PreRecorded => c,
                        StreamMode::LivePrebuffered => c + d,
                        // First slot ≥ 2k congruent to c mod d.
                        StreamMode::LivePipelined => next_congruent(2 * k as u64, c, d),
                    }
                } else {
                    // First slot strictly after the parent's receipt that is
                    // congruent to this child's index.
                    let t_parent = table[forest.parent_pos(pos) - 1];
                    next_congruent(t_parent + 1, c, d)
                };
            }
        }
        MultiTreeScheme {
            forest,
            mode,
            recv0,
        }
    }

    /// The underlying forest.
    pub fn forest(&self) -> &DisjointTrees {
        &self.forest
    }

    /// The stream mode.
    pub fn mode(&self) -> StreamMode {
        self.mode
    }

    /// Slot in which the node at position `pos` of tree `k` receives packet
    /// `k + m·d` (closed form).
    pub fn recv_slot_at(&self, k: usize, pos: usize, m: u64) -> u64 {
        self.recv0[k][pos - 1] + m * self.forest.d() as u64
    }

    /// Slot in which `node` receives tree `k`'s first packet (packet `k`).
    /// This is the paper's `A(node, k)` measured in 0-based slots.
    pub fn first_recv(&self, k: usize, node: u32) -> u64 {
        self.recv0[k][self.forest.position(k, node) - 1]
    }
}

impl Scheme for MultiTreeScheme {
    fn name(&self) -> String {
        let mode = match self.mode {
            StreamMode::PreRecorded => "prerecorded",
            StreamMode::LivePrebuffered => "live-prebuffered",
            StreamMode::LivePipelined => "live-pipelined",
        };
        format!("multi-tree(d={}, {mode})", self.forest.d())
    }

    fn num_receivers(&self) -> usize {
        self.forest.n()
    }

    fn send_capacity(&self, node: NodeId) -> usize {
        if node.is_source() {
            self.forest.d()
        } else {
            1
        }
    }

    fn availability(&self) -> Availability {
        self.mode.availability()
    }

    fn schedule_period(&self) -> Option<SchedulePeriod> {
        // Position `pos` of tree `k` becomes active at slot `recv0[k][pos−1]`
        // and then re-fires every `d` slots with the packet id advanced by
        // `d`; once every position is active (`t ≥ max recv0`) the whole
        // emission list repeats with period `d` and uniform packet delta `d`.
        let warmup = self
            .recv0
            .iter()
            .flat_map(|table| table.iter().copied())
            .max()
            .unwrap_or(0)
            + 1;
        Some(SchedulePeriod {
            warmup,
            period: self.forest.d() as u64,
        })
    }

    fn transmissions(&mut self, slot: Slot, _view: &dyn StateView, out: &mut Vec<Transmission>) {
        let d = self.forest.d() as u64;
        let t = slot.t();
        let n_real = self.forest.n() as u32;
        for k in 0..self.forest.d() {
            for pos in 1..=self.forest.n_pad() {
                let node = self.forest.node_at(k, pos);
                if node > n_real {
                    continue; // dummy leaf: removed in the real system
                }
                let base = self.recv0[k][pos - 1];
                if t >= base && (t - base).is_multiple_of(d) {
                    let m = (t - base) / d;
                    let packet = PacketId(k as u64 + m * d);
                    let parent_pos = self.forest.parent_pos(pos);
                    let from = if parent_pos == 0 {
                        SOURCE
                    } else {
                        NodeId(self.forest.node_at(k, parent_pos))
                    };
                    out.push(Transmission::local(from, NodeId(node), packet));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_forest;
    use crate::structured::structured_forest;
    use clustream_sim::{SimConfig, Simulator};

    #[test]
    fn source_round_robin_matches_paper_walkthrough() {
        // §2.2.3: with the Figure 3 multi-tree, in slot 0 S sends packet 0
        // to node 1 (T_0), packet 1 to node 5 (T_1), packet 2 to node 9
        // (T_2); in slot 1, packet 0 → node 2, packet 1 → node 6,
        // packet 2 → node 10.
        let f = structured_forest(15, 3).unwrap();
        let mut s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let mut out = Vec::new();
        let view = Probe;
        s.transmissions(Slot(0), &view, &mut out);
        let from_source: Vec<_> = out.iter().filter(|t| t.from == SOURCE).collect();
        assert_eq!(from_source.len(), 3);
        assert!(from_source
            .iter()
            .any(|t| t.to == NodeId(1) && t.packet == PacketId(0)));
        assert!(from_source
            .iter()
            .any(|t| t.to == NodeId(5) && t.packet == PacketId(1)));
        assert!(from_source
            .iter()
            .any(|t| t.to == NodeId(9) && t.packet == PacketId(2)));

        out.clear();
        s.transmissions(Slot(1), &view, &mut out);
        let from_source: Vec<_> = out.iter().filter(|t| t.from == SOURCE).collect();
        assert!(from_source
            .iter()
            .any(|t| t.to == NodeId(2) && t.packet == PacketId(0)));
        assert!(from_source
            .iter()
            .any(|t| t.to == NodeId(6) && t.packet == PacketId(1)));
        assert!(from_source
            .iter()
            .any(|t| t.to == NodeId(10) && t.packet == PacketId(2)));
    }

    #[test]
    fn node1_relays_packet0_in_slots_1_2_3() {
        // §2.2.3: "After receiving packet 0 from S in slot 0 in T_0, node 1
        // will send packet 0 to node 5 in slot 1, node 6 in slot 2 and
        // node 4 in slot 3" (structured construction: children of position
        // 1 in T_0 are positions 4, 5, 6 = nodes 4, 5, 6, with child
        // indices 0, 1, 2 → slots 3, 1, 2).
        let f = structured_forest(15, 3).unwrap();
        let mut s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let mut out = Vec::new();
        let mut sends_of_node1 = Vec::new();
        for t in 0..4 {
            out.clear();
            s.transmissions(Slot(t), &Probe, &mut out);
            for tx in &out {
                if tx.from == NodeId(1) && tx.packet == PacketId(0) {
                    sends_of_node1.push((t, tx.to));
                }
            }
        }
        assert_eq!(
            sends_of_node1,
            vec![(1, NodeId(5)), (2, NodeId(6)), (3, NodeId(4))]
        );
    }

    /// Stand-in view; the multi-tree schedule never consults it.
    struct Probe;
    impl StateView for Probe {
        fn holds(&self, _: NodeId, _: PacketId) -> bool {
            unreachable!("schedule is closed-form")
        }
        fn newest(&self, _: NodeId) -> Option<PacketId> {
            unreachable!()
        }
        fn slot(&self) -> Slot {
            unreachable!()
        }
    }

    fn run(n: usize, d: usize, mode: StreamMode, structured: bool) -> clustream_sim::RunResult {
        let f = if structured {
            structured_forest(n, d).unwrap()
        } else {
            greedy_forest(n, d).unwrap()
        };
        let mut s = MultiTreeScheme::new(f, mode);
        let track = (4 * d * 8) as u64;
        Simulator::run(&mut s, &SimConfig::until_complete(track, 100_000)).unwrap()
    }

    #[test]
    fn simulator_accepts_prerecorded_schedules() {
        for &(n, d) in &[(15usize, 3usize), (14, 3), (8, 2), (40, 5), (1, 2), (5, 4)] {
            for &structured in &[true, false] {
                let r = run(n, d, StreamMode::PreRecorded, structured);
                assert_eq!(r.duplicate_deliveries, 0, "N={n} d={d}");
            }
        }
    }

    #[test]
    fn simulator_accepts_live_modes() {
        for &mode in &[StreamMode::LivePrebuffered, StreamMode::LivePipelined] {
            for &(n, d) in &[(15usize, 3usize), (26, 4), (7, 2)] {
                let r = run(n, d, mode, true);
                assert_eq!(r.duplicate_deliveries, 0, "N={n} d={d} {mode:?}");
            }
        }
    }

    #[test]
    fn closed_form_matches_simulation() {
        for &(n, d) in &[(15usize, 3usize), (22, 4), (9, 2)] {
            let f = greedy_forest(n, d).unwrap();
            let mut s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
            let closed = s.clone();
            let track = (3 * d * d) as u64;
            let r = Simulator::run(&mut s, &SimConfig::until_complete(track, 10_000)).unwrap();
            for node in 1..=n as u32 {
                for k in 0..d {
                    for m in 0..2u64 {
                        let pos = closed.forest.position(k, node);
                        let packet = PacketId(k as u64 + m * d as u64);
                        if packet.seq() >= track {
                            continue;
                        }
                        let predicted = closed.recv_slot_at(k, pos, m);
                        let simulated = r
                            .arrivals
                            .usable_slot(NodeId(node), packet)
                            .unwrap_or_else(|| panic!("missing {packet} at node {node}"));
                        // usable = receive slot + 1
                        assert_eq!(
                            simulated.t(),
                            predicted + 1,
                            "N={n} d={d} node {node} tree {k} m={m}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn live_prebuffered_shifts_by_d() {
        let f = structured_forest(15, 3).unwrap();
        let pre = MultiTreeScheme::new(f.clone(), StreamMode::PreRecorded);
        let buf = MultiTreeScheme::new(f, StreamMode::LivePrebuffered);
        for k in 0..3 {
            for pos in 1..=15 {
                assert_eq!(buf.recv_slot_at(k, pos, 0), pre.recv_slot_at(k, pos, 0) + 3);
            }
        }
    }

    #[test]
    fn pipelined_preserves_residues() {
        let f = greedy_forest(26, 4).unwrap();
        let pre = MultiTreeScheme::new(f.clone(), StreamMode::PreRecorded);
        let pip = MultiTreeScheme::new(f, StreamMode::LivePipelined);
        for k in 0..4 {
            for pos in 1..=pre.forest().n_pad() {
                assert_eq!(
                    pre.recv_slot_at(k, pos, 0) % 4,
                    pip.recv_slot_at(k, pos, 0) % 4,
                    "tree {k} pos {pos}"
                );
                assert!(pip.recv_slot_at(k, pos, 0) >= pre.recv_slot_at(k, pos, 0));
            }
        }
    }

    #[test]
    fn every_node_receives_exactly_one_packet_per_steady_slot() {
        // The collision-freedom property in its strongest form: in steady
        // state each node receives exactly one packet per slot.
        let f = structured_forest(16, 4).unwrap();
        let mut s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let mut out = Vec::new();
        // Steady state by slot 4·h·d; count receives per node at one slot.
        let t = 64;
        out.clear();
        s.transmissions(Slot(t), &Probe, &mut out);
        let mut count = [0usize; 17];
        for tx in &out {
            count[tx.to.index()] += 1;
        }
        for (node, &c) in count.iter().enumerate().skip(1) {
            assert_eq!(c, 1, "node {node} at slot {t}");
        }
    }
}
