#!/usr/bin/env bash
# Offline CI gate for the clustream workspace. Everything here must pass
# before merging; no network access is required (all external-looking
# dependencies resolve to the in-tree `shims/` crates via path deps, and
# Cargo.lock is committed).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== test =="
cargo test --workspace -q --offline

echo "== differential oracle =="
cargo test -q --test differential --offline

echo "== slot/DES differential oracle =="
cargo test -q --test des_differential --offline

echo "== DES smoke (slot-faithful equivalence, checked mode) =="
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme multitree --n 30 --d 3 --runtime des-checked
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme hypercube --n 25 --runtime des-checked
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme chain --n 12 --runtime des \
    --latency jitter --jitter 1.5 --uplink serialized --des-seed 1

echo "== recovery fault-matrix smoke =="
# Every recovery tier across a small churn/loss matrix, plus the
# duration-unit flags, through the real CLI.
for rec in off repair repair+nack; do
    cargo run -q --release --offline -p clustream-cli --bin clustream -- \
        simulate --scheme multitree --n 30 --d 3 --track 32 --runtime des \
        --recovery "$rec" --churn-leave 0.002 --churn-rejoin 0.001 \
        --churn-slots 160 --churn-seed 7 \
        --suspect-timeout 6slots --nack-timeout 4slots
done

echo "== recovery-off DES equivalence regression =="
# With recovery off (even with knobs set) the DES must stay bit-identical
# to the slot engines; the checked runtime enforces it field-by-field.
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme multitree --n 40 --d 3 --runtime des-checked
cargo test -q --test recovery --offline
cargo test -q --test faults --offline

echo "CI gate passed."
