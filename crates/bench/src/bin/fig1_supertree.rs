//! Figure 1: the super-tree τ over K = 9 clusters with D = 3.

use clustream_bench::fig1_supertree;

fn main() {
    println!("{}", fig1_supertree(9, 3));
}
