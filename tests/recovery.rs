//! End-to-end recovery acceptance: online failure detection, self-healing
//! tree repair and NACK retransmission in the discrete-event runtime.
//!
//! The headline property (the PR's acceptance criterion): under a
//! crash-only churn trace with zero link loss, a `repair+nack` run leaves
//! **every non-crashed node's missing-packet set empty** — detection
//! confirms the silent node, the appendix dynamics route around it, and
//! NACK retransmission backfills the packets lost during the detection
//! window.

use clustream::prelude::*;
use clustream::workloads::{ChurnAction, ChurnEvent, ChurnTrace, ChurnTraceConfig};

/// A hand-written crash-only trace (no joins, no rejoins, no loss).
fn crash_only_trace(n: usize, slots: u64, crashes: &[(u64, usize)]) -> ChurnTrace {
    ChurnTrace {
        config: ChurnTraceConfig {
            initial_members: n,
            slots,
            join_rate: 0.0,
            leave_rate: 0.0,
            rejoin_rate: 0.0,
            seed: 0,
        },
        events: crashes
            .iter()
            .map(|&(slot, victim_rank)| ChurnEvent {
                slot,
                action: ChurnAction::Leave { victim_rank },
            })
            .collect(),
    }
}

/// Victim ranks (among current members, ascending-id order) that make the
/// trace remove exactly `victims`, in order.
fn ranks_for(n: usize, victims: &[u64]) -> Vec<usize> {
    let mut members: Vec<u64> = (1..=n as u64).collect();
    victims
        .iter()
        .map(|v| {
            let r = members.iter().position(|m| m == v).unwrap();
            members.remove(r);
            r
        })
        .collect()
}

/// The busiest relays of a clean run — crashing one of these is the
/// worst case for downstream starvation.
fn busiest_relays(n: usize, d: usize, track: u64, how_many: usize) -> Vec<u64> {
    let mut probe =
        SelfHealingMultiTree::new(n, d, StreamMode::PreRecorded, Construction::Greedy).unwrap();
    let clean = Simulator::run(&mut probe, &SimConfig::until_complete(track, 100_000)).unwrap();
    let mut by_uploads: Vec<(u64, u64)> = clean
        .upload_counts
        .iter()
        .enumerate()
        .skip(1)
        .map(|(id, &u)| (u, id as u64))
        .collect();
    by_uploads.sort();
    by_uploads.reverse();
    by_uploads.truncate(how_many);
    assert!(by_uploads[0].0 > 0, "no interior relay found");
    by_uploads.into_iter().map(|(_, id)| id).collect()
}

fn run_with_mode(
    n: usize,
    d: usize,
    track: u64,
    horizon: u64,
    trace: &ChurnTrace,
    recovery: RecoveryConfig,
) -> RunResult {
    let mut scheme =
        SelfHealingMultiTree::new(n, d, StreamMode::PreRecorded, Construction::Greedy).unwrap();
    let cfg = DesConfig::slot_faithful(SimConfig::until_complete(track, horizon))
        .with_churn(trace.clone())
        .with_recovery(recovery);
    DesEngine::new().run(&mut scheme, &cfg).unwrap()
}

/// Missing packets summed over nodes that never crashed.
fn survivor_missing(r: &RunResult, victims: &[u64]) -> u64 {
    r.loss
        .as_ref()
        .unwrap()
        .missing
        .iter()
        .filter(|(node, _)| !victims.contains(&(node.0 as u64)))
        .map(|&(_, m)| m as u64)
        .sum()
}

#[test]
fn repair_nack_clears_every_survivors_missing_set() {
    // The acceptance criterion: crash-only churn, zero loss, repair+nack —
    // once the recovery pipeline has run its course every non-crashed
    // node holds the entire tracked window.
    let (n, d, track, horizon) = (40, 3, 48u64, 260u64);
    let victims = busiest_relays(n, d, track, 2);
    let ranks = ranks_for(n, &victims);
    let trace = crash_only_trace(n, horizon, &[(10, ranks[0]), (22, ranks[1])]);

    let r = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::repair_nack());

    let loss = r.loss.as_ref().unwrap();
    for &(node, missing) in &loss.missing {
        assert!(
            victims.contains(&(node.0 as u64)),
            "survivor {node} still missing {missing} packets after recovery"
        );
    }
    let resil = r.resilience.expect("recovery runs report resilience");
    assert!(resil.failures_detected >= 1, "silence was never confirmed");
    assert!(resil.repairs_committed >= 1, "no repair was committed");
    assert!(
        resil.recovery_latency_max_ticks > 0,
        "repair cannot be instantaneous"
    );
    assert!(
        resil
            .avg_recovery_latency_slots(clustream::des::TICKS_PER_SLOT)
            .is_some(),
        "committed repairs must report a latency"
    );
    assert!(resil.nacks_sent > 0, "gaps must have been chased");
    assert!(resil.repaired_packets > 0, "no gap was ever backfilled");
    assert!(
        resil.control_messages >= resil.nacks_sent + resil.retransmissions,
        "control accounting must cover NACKs and retransmissions"
    );
}

#[test]
fn each_recovery_tier_strictly_helps_under_interior_crashes() {
    // off (fail-silent) ≥ repair ≥ repair+nack (= 0 for survivors): the
    // repair tier stops the post-detection bleeding, the NACK tier
    // backfills the detection window.
    let (n, d, track, horizon) = (40, 3, 48u64, 260u64);
    let victims = busiest_relays(n, d, track, 1);
    let ranks = ranks_for(n, &victims);
    let trace = crash_only_trace(n, horizon, &[(10, ranks[0])]);

    let off = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::default());
    let repair = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::repair());
    let nack = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::repair_nack());

    let (m_off, m_repair, m_nack) = (
        survivor_missing(&off, &victims),
        survivor_missing(&repair, &victims),
        survivor_missing(&nack, &victims),
    );
    assert!(
        m_off > 0,
        "an interior crash must starve someone fail-silent"
    );
    assert!(
        m_repair < m_off,
        "repair must beat fail-silent ({m_repair} ≥ {m_off})"
    );
    assert!(
        m_nack <= m_repair,
        "adding NACKs cannot hurt ({m_nack} > {m_repair})"
    );
    assert_eq!(m_nack, 0, "repair+nack must fully backfill survivors");

    // Fail-silent runs still report resilience (stall accounting only).
    let off_resil = off.resilience.unwrap();
    assert_eq!(
        off_resil.stall_events,
        off.loss.as_ref().unwrap().total_missing() as u64
    );
    assert_eq!(off_resil.repairs_committed, 0);
    assert_eq!(off_resil.nacks_sent, 0);
}

#[test]
fn recovery_runs_are_deterministic() {
    // Same trace, same knobs, same seed — bit-identical RunResult,
    // including the jittered NACK backoff draws.
    let (n, d, track, horizon) = (30, 3, 32u64, 200u64);
    let victims = busiest_relays(n, d, track, 1);
    let ranks = ranks_for(n, &victims);
    let trace = crash_only_trace(n, horizon, &[(8, ranks[0])]);
    let a = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::repair_nack());
    let b = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::repair_nack());
    assert_eq!(diff_fields(&a, &b), Vec::<&str>::new());
}

#[test]
fn rejoin_restores_a_crashed_member_end_to_end() {
    // Crash an interior node, let the overlay repair, then bring the same
    // identity back: the rejoined node is readmitted into the schedule
    // and resumes receiving (its own earlier gap is its problem — the
    // survivors must stay whole throughout).
    let (n, d, track, horizon) = (30, 3, 40u64, 300u64);
    let victims = busiest_relays(n, d, track, 1);
    let ranks = ranks_for(n, &victims);
    let mut trace = crash_only_trace(n, horizon, &[(8, ranks[0])]);
    trace.events.push(ChurnEvent {
        slot: 60,
        action: ChurnAction::Rejoin { departed_rank: 0 },
    });

    let r = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::repair_nack());
    // Survivors end whole; the returnee may only miss pre-rejoin packets.
    for &(node, missing) in &r.loss.as_ref().unwrap().missing {
        assert!(
            victims.contains(&(node.0 as u64)),
            "survivor {node} missing {missing} packets"
        );
    }
    // The returnee received post-rejoin packets (the tail of the window).
    let returnee = NodeId(victims[0] as u32);
    assert!(
        r.arrivals
            .usable_slot(returnee, PacketId(track - 1))
            .is_some(),
        "rejoined node never resumed receiving"
    );
}

#[test]
fn recovery_off_knobs_are_inert() {
    // A RecoveryConfig with mode Off but every knob perturbed must be
    // bit-identical to the default config, in both DES regimes.
    let mut inert = RecoveryConfig::repair_nack();
    inert.mode = RecoveryMode::Off;
    inert.suspect_timeout_ticks = 1;
    inert.suspicion_threshold = 1;
    inert.max_retries = 1;
    inert.seed = 99;

    // Slot-faithful regime: still matches the slot engine exactly.
    let sim_cfg = SimConfig::until_complete(24, 10_000);
    let mut a =
        SelfHealingMultiTree::new(20, 3, StreamMode::PreRecorded, Construction::Greedy).unwrap();
    let want = Simulator::run(&mut a, &sim_cfg).unwrap();
    let mut b =
        SelfHealingMultiTree::new(20, 3, StreamMode::PreRecorded, Construction::Greedy).unwrap();
    let cfg = DesConfig::slot_faithful(sim_cfg).with_recovery(inert);
    assert!(cfg.is_slot_faithful(), "mode Off must stay slot-faithful");
    let got = DesEngine::new().run(&mut b, &cfg).unwrap();
    assert_eq!(diff_fields(&want, &got), Vec::<&str>::new());

    // Relaxed regime (churn): identical to a default-config churned run.
    let (n, d, track, horizon) = (24, 3, 24u64, 160u64);
    let trace = crash_only_trace(n, horizon, &[(6, 2), (14, 9)]);
    let base = run_with_mode(n, d, track, horizon, &trace, RecoveryConfig::default());
    let knobs = run_with_mode(n, d, track, horizon, &trace, inert);
    assert_eq!(diff_fields(&base, &knobs), Vec::<&str>::new());
}
