//! The discrete-event engine.
//!
//! Instead of iterating lockstep slots, [`DesEngine`] drains an
//! [`EventQueue`]. The scheme's calendar is still consulted once per slot
//! (at each [`EventKind::PlaybackTick`]), but every transmission then
//! lives as explicit `Send` → `Deliver` events whose times need not be
//! slot-aligned: the latency model can land a packet mid-slot and the
//! uplink gate can push a send past its calendar slot.
//!
//! # Two regimes
//!
//! **Strict (slot-faithful)** — fixed latencies, unconstrained uplinks,
//! no churn ([`DesConfig::is_slot_faithful`]). The engine replicates the
//! slot engines' validation sequence verbatim, in the same order (unknown
//! node, zero latency, crash suppression, holdings, send capacity, loss
//! draw, receive collision), consumes loss-RNG draws in the same order,
//! and produces the same errors for the same scheme bugs. Every event
//! lands on a slot boundary, so the run is field-for-field identical to
//! [`clustream_sim::FastEngine`] — enforced by `tests/des_differential.rs`.
//!
//! **Relaxed** — any jitter, uplink serialization, churn, or recovery.
//! Capacity and receive-collision *errors* stop making sense (the network
//! queues instead), so nodes become reactive: a calendar entry whose
//! packet has not arrived yet is deferred and dispatched the moment the
//! packet is delivered; the uplink gate serializes concurrent sends;
//! departed (churned-out) nodes fall silent. Runs report losses like
//! fault runs do rather than erroring.
//!
//! # Recovery
//!
//! With [`clustream_recovery::RecoveryMode::Repair`] or
//! [`clustream_recovery::RecoveryMode::RepairNack`] enabled the engine
//! drives the full failure-handling loop:
//!
//! 1. **Detection** — every delivery refreshes a per-link freshness timer
//!    in a [`clustream_recovery::FailureDetector`]; a link silent past the
//!    suspect timeout makes the receiver suspect the sender, and enough
//!    distinct suspecting watchers confirm the failure.
//! 2. **Repair** — a confirmed failure fires
//!    [`crate::event::EventKind::RepairCommit`], which invokes the
//!    scheme's [`clustream_core::Scheme::membership_event`] (the appendix
//!    delete dynamics for
//!    [`clustream_recovery::SelfHealingMultiTree`]): an all-leaf node is
//!    promoted into the crashed node's interior positions, the round-robin
//!    schedule is re-derived mid-run, and at most `d²` members are
//!    displaced.
//! 3. **Retransmission** (`RepairNack`) — receivers scan for gap packets
//!    (sequence holes older than `gap_slack` behind their newest arrival)
//!    and chase each with NACKs under capped, jittered, seeded exponential
//!    backoff, served from bounded per-node repair buffers with source
//!    escalation; exhausted retries abandon the packet and record a
//!    hiccup.
//!
//! All recovery state iterates over `BTreeMap`/`BTreeSet` only and draws
//! randomness from a dedicated seeded stream, so recovery runs are fully
//! deterministic and recovery-off runs are bit-identical to the
//! fail-silent engine (enforced by `tests/des_differential.rs`).

use crate::config::{DesConfig, QueueKind};
use crate::event::{EventKind, EventQueue, HeapQueue, TICKS_PER_SLOT};
use crate::hot::{ArrivalRing, FxHashMap, SeqSet};
use crate::uplink::{UplinkGate, UplinkModel};
use crate::wheel::{CheckedQueue, WheelQueue};
use clustream_core::{
    Availability, CoreError, MembershipEvent, NodeId, NodeQos, PacketId, QosReport, Scheme, Slot,
    StateView, Transmission, SOURCE,
};
use clustream_recovery::{FailureDetector, NackManager, RepairBuffer, TimeoutVerdict};
use clustream_sim::faults::{default_cause, FaultCause, FaultPlan, LossReport};
use clustream_sim::metrics::TrafficStats;
use clustream_sim::trace::EventTrace;
use clustream_sim::{ArrivalTable, ResilienceMetrics, RunResult};
use clustream_telemetry::names as tm;
use clustream_workloads::ResolvedChurnAction;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Counters describing one DES run (the bench denominators).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesStats {
    /// Events popped and processed (including the final flush).
    pub events_processed: u64,
    /// Events ever scheduled.
    pub events_scheduled: u64,
    /// Send events dispatched.
    pub sends: u64,
    /// Deliver events fired.
    pub deliveries: u64,
    /// Calendar entries deferred because the packet had not arrived yet
    /// (relaxed mode only).
    pub deferred_sends: u64,
    /// Deferred entries later released by a delivery.
    pub released_sends: u64,
    /// Churn departures applied.
    pub churn_leaves: u64,
    /// Churn joins observed (static schemes cannot grow, so joins are
    /// counted and ignored).
    pub churn_joins_ignored: u64,
    /// Churn rejoins applied (a previously departed member came back).
    pub churn_rejoins: u64,
    /// Deliveries dropped because the receiver had departed.
    pub deliveries_to_departed: u64,
}

/// Simulator ground truth exposed to schemes, same shape as the slot
/// engines'.
struct DesState {
    held: Vec<SeqSet>,
    newest: Vec<Option<u64>>,
    slot: Slot,
    availability: Availability,
}

impl StateView for DesState {
    fn holds(&self, node: NodeId, packet: PacketId) -> bool {
        if node.is_source() {
            self.availability.produced(packet, self.slot)
        } else {
            self.held[node.index()].contains(packet.seq())
        }
    }

    fn newest(&self, node: NodeId) -> Option<PacketId> {
        self.newest[node.index()].map(PacketId)
    }

    fn slot(&self) -> Slot {
        self.slot
    }
}

/// Telemetry names for one event class: the per-class counter
/// (under [`tm::DES_EVENT_PREFIX`]) and service-time span (under
/// [`tm::DES_SERVICE_PREFIX`]). Static strings so the disabled path
/// never allocates.
fn event_probe_names(kind: &EventKind) -> (&'static str, &'static str) {
    match kind {
        EventKind::Deliver { .. } => ("des.events.deliver", "des.service.deliver"),
        EventKind::Churn(_) => ("des.events.churn", "des.service.churn"),
        EventKind::SuspectTimeout { .. } => {
            ("des.events.suspect_timeout", "des.service.suspect_timeout")
        }
        EventKind::RepairCommit { .. } => ("des.events.repair_commit", "des.service.repair_commit"),
        EventKind::Nack { .. } => ("des.events.nack", "des.service.nack"),
        EventKind::Retransmit { .. } => ("des.events.retransmit", "des.service.retransmit"),
        EventKind::PlaybackTick => ("des.events.playback_tick", "des.service.playback_tick"),
        EventKind::Send(_) => ("des.events.send", "des.service.send"),
    }
}

/// Relaxed-mode admission: crash/departure suppression, uplink gating,
/// loss draw, then schedule the `Send` event. Free function so both the
/// calendar path and the deferred-release path share it without fighting
/// the borrow checker.
#[allow(clippy::too_many_arguments)]
fn admit_relaxed<Q: EventQueue>(
    tx: &Transmission,
    now: u64,
    capacity: usize,
    departed: &[bool],
    faults: Option<&FaultPlan>,
    loss_rng: &mut Option<ChaCha8Rng>,
    loss_report: &mut LossReport,
    taint: &mut FxHashMap<(u32, u64), FaultCause>,
    uplink: UplinkModel,
    gate: &mut UplinkGate,
    stats: &mut TrafficStats,
    trace: &mut Option<EventTrace>,
    des_stats: &mut DesStats,
    q: &mut Q,
) {
    let slot = now / TICKS_PER_SLOT;
    if let Some(f) = faults {
        if f.crashed(tx.from, slot) {
            loss_report.crash_suppressed += 1;
            taint
                .entry((tx.to.0, tx.packet.seq()))
                .or_insert(FaultCause::Crash);
            return;
        }
    }
    // A departed member is fail-silent, like a crash.
    if departed[tx.from.index()] {
        loss_report.crash_suppressed += 1;
        taint
            .entry((tx.to.0, tx.packet.seq()))
            .or_insert(FaultCause::Crash);
        return;
    }
    let dispatch = match uplink {
        UplinkModel::Unconstrained => now,
        UplinkModel::Serialized => gate.admit(tx.from, capacity, now),
    };
    // The uplink time is spent whether or not the packet survives.
    if let (Some(f), Some(r)) = (faults, loss_rng.as_mut()) {
        if f.loss_rate > 0.0 && r.gen_bool(f.loss_rate) {
            loss_report.lost_in_flight += 1;
            taint
                .entry((tx.to.0, tx.packet.seq()))
                .or_insert(FaultCause::Loss);
            return;
        }
    }
    stats.record(tx);
    if let Some(tr) = trace.as_mut() {
        tr.push(dispatch / TICKS_PER_SLOT, tx);
    }
    des_stats.sends += 1;
    q.push(dispatch, EventKind::Send(*tx));
}

/// The discrete-event engine. Reusable across runs; [`DesEngine::stats`]
/// reports the event counters of the most recent run.
#[derive(Debug, Default)]
pub struct DesEngine {
    stats: DesStats,
}

impl DesEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        DesEngine::default()
    }

    /// Event counters of the most recent [`DesEngine::run`].
    pub fn stats(&self) -> &DesStats {
        &self.stats
    }

    /// Run `scheme` under `cfg`, returning the same [`RunResult`] shape as
    /// the slot engines (so [`clustream_sim::diff_fields`] applies
    /// unchanged).
    ///
    /// The event queue implementation is chosen by [`DesConfig::queue`];
    /// every choice pops the identical event sequence (see
    /// [`crate::WheelQueue`] for the argument), so the `RunResult` is
    /// bit-identical across queues — only the wall clock differs.
    pub fn run(
        &mut self,
        scheme: &mut dyn Scheme,
        cfg: &DesConfig,
    ) -> Result<RunResult, CoreError> {
        match cfg.queue {
            QueueKind::Heap => self.run_with_queue(scheme, cfg, HeapQueue::new()),
            QueueKind::Wheel => self.run_with_queue(scheme, cfg, WheelQueue::new()),
            QueueKind::Checked => self.run_with_queue(scheme, cfg, CheckedQueue::new()),
        }
    }

    /// The monomorphized engine loop behind [`DesEngine::run`].
    fn run_with_queue<Q: EventQueue>(
        &mut self,
        scheme: &mut dyn Scheme,
        cfg: &DesConfig,
        mut q: Q,
    ) -> Result<RunResult, CoreError> {
        cfg.validate().map_err(CoreError::InvalidConfig)?;
        self.stats = DesStats::default();
        let sim = &cfg.sim;
        let tel = &sim.telemetry;
        let tel_on = tel.enabled();
        let _run_span = tel.span(tm::DES_RUN);
        let strict = cfg.is_slot_faithful();

        let n_ids = scheme.id_space();
        if n_ids == 0 {
            return Err(CoreError::InvalidConfig("empty id space".into()));
        }
        let receivers = scheme.receivers();
        for r in &receivers {
            if r.index() >= n_ids {
                return Err(CoreError::UnknownNode { node: *r });
            }
        }

        let mut state = DesState {
            held: vec![SeqSet::default(); n_ids],
            newest: vec![None; n_ids],
            slot: Slot(0),
            availability: scheme.availability(),
        };
        let mut arrivals = ArrivalTable::new(n_ids, sim.track_packets);
        let mut stats = TrafficStats::new(n_ids);
        let mut gate = UplinkGate::new(n_ids);

        // Strict mode: one pending arrival per (arrival slot, node), the
        // value being the occupying packet — the receive-capacity guard,
        // mirroring the slot engines' `scheduled_arrivals` set. Arrival
        // slots never repeat, so claims are never released; see
        // [`ArrivalRing`] for why a ring replaces a hash map here.
        let mut occupied = ArrivalRing::new(n_ids);
        // Heterogeneity: per-node uplink capacities from the class plan,
        // overriding the scheme's uniform capacity for non-source
        // senders at the serialized gate.
        let class_caps: Option<Vec<usize>> = cfg.capacity_classes.as_ref().map(|p| p.assign(n_ids));
        // Relaxed mode: calendar entries waiting for their packet, keyed
        // by (sender, packet). A BTreeMap so the end-of-run leftover
        // attribution walks entries in a deterministic order.
        let mut waiting: BTreeMap<(u32, u64), Vec<Transmission>> = BTreeMap::new();
        let mut departed = vec![false; n_ids];
        // First cause that took out each (node, packet) copy; lookup-only
        // (never iterated), so a hash map keeps determinism.
        let mut taint: FxHashMap<(u32, u64), FaultCause> = FxHashMap::default();

        // Recovery layer. All state is allocated unconditionally (cheap)
        // but only touched when `rec_on`; recovery-off runs schedule no
        // recovery events and stay bit-identical to the plain engine.
        let rec = cfg.recovery;
        let rec_on = rec.mode.enabled();
        let mut detector = FailureDetector::new(rec.suspicion_threshold, rec.suspect_timeout_ticks);
        let mut nacks = NackManager::new(
            rec.nack_timeout_ticks,
            rec.nack_backoff,
            rec.nack_cap_ticks,
            rec.nack_jitter_ticks,
            rec.seed,
        );
        let mut repair_buf = RepairBuffer::new(n_ids, rec.repair_buffer);
        // Most recent non-source sender per node: the first NACK target.
        let mut last_sender: Vec<u32> = vec![0; n_ids];
        // Monotone per-node gap-scan cursor (bounds total scan work).
        let mut gap_scan: Vec<u64> = vec![0; n_ids];
        // Ground-truth crash ticks (from the churn trace / fault plan),
        // the recovery-latency baseline.
        let mut crash_tick: BTreeMap<u32, u64> = BTreeMap::new();
        // Dedicated randomness for repair traffic so enabling recovery
        // never perturbs the main loss process.
        let mut rec_rng = ChaCha8Rng::seed_from_u64(rec.seed);
        let mut resil = ResilienceMetrics::default();
        // Telemetry-only bookkeeping: first NACK send tick per open
        // (node, packet) chase, consumed when the repair lands to observe
        // the NACK round-trip. Never touched with telemetry off.
        let mut nack_sent_tick: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        if rec_on {
            if let Some(f) = &sim.faults {
                for &(node, slot) in f.crashes.iter().chain(f.stop_crashes.iter()) {
                    crash_tick.insert(node.0, slot * TICKS_PER_SLOT);
                }
            }
        }

        let is_receiver: Vec<bool> = {
            let mut v = vec![false; n_ids];
            for r in &receivers {
                v[r.index()] = true;
            }
            v
        };
        let mut remaining: u64 = receivers.len() as u64 * sim.track_packets;

        let mut out: Vec<Transmission> = Vec::new();
        let mut send_counts: Vec<u32> = vec![0; n_ids];
        let mut touched: Vec<usize> = Vec::new();

        let mut loss_report = LossReport::default();
        let mut loss_rng = sim
            .faults
            .as_ref()
            .map(|f| ChaCha8Rng::seed_from_u64(f.seed));
        let mut lat_rng = cfg
            .latency
            .needs_rng()
            .then(|| ChaCha8Rng::seed_from_u64(cfg.latency_seed));
        // Networked replay: per-link recorded samples override the
        // parametric latency model, consumed FIFO per link.
        let mut replay = cfg.recorded.as_ref().map(crate::replay::ReplayCursor::new);
        let mut trace = sim.record_trace.then(EventTrace::default);

        if sim.max_slots > 0 {
            q.push(0, EventKind::PlaybackTick);
        }
        if let Some(churn) = &cfg.churn {
            let initial: Vec<u64> = receivers.iter().map(|r| r.0 as u64).collect();
            let protected: Vec<u64> = receivers
                .iter()
                .filter(|r| scheme.send_capacity(**r) > 1)
                .map(|r| r.0 as u64)
                .collect();
            for ev in churn.resolve(&initial, &protected) {
                if ev.slot < sim.max_slots {
                    q.push(ev.slot * TICKS_PER_SLOT, EventKind::Churn(ev.action));
                }
            }
        }

        let mut slots_run = 0u64;
        let mut stopped = false;

        while let Some(ev) = q.pop() {
            self.stats.events_processed += 1;
            // RAII service-time span: most arms exit via `continue`, so
            // only a drop guard times every path uniformly.
            let _event_span = if tel_on {
                let (class_counter, service_span) = event_probe_names(&ev.kind);
                tel.counter(tm::DES_EVENTS, 1);
                tel.counter(class_counter, 1);
                tel.gauge_max(tm::DES_QUEUE_DEPTH_MAX, q.len() as u64);
                Some(tel.span(service_span))
            } else {
                None
            };
            match ev.kind {
                EventKind::Deliver { from, to, packet } => {
                    self.stats.deliveries += 1;
                    // First slot the packet is usable: the next slot
                    // boundary at or after the arrival tick.
                    let usable = ev.time.div_ceil(TICKS_PER_SLOT);
                    if stopped || usable >= sim.max_slots {
                        // The playback loop never reaches this slot: record
                        // the arrival only, exactly like the slot engines'
                        // post-loop flush of the pending queue.
                        if let Some(f) = &sim.faults {
                            if f.stopped(to, usable.saturating_sub(1)) {
                                loss_report.stopped_receives += 1;
                                continue;
                            }
                        }
                        arrivals.record(to, packet, Slot(usable));
                        continue;
                    }
                    // The `occupied` claim for this arrival needs no
                    // release: arrival slots are strictly in the past of
                    // every later send, so the cell can never match again.
                    // Fail-stopped receivers drop arrivals on the floor.
                    if let Some(f) = &sim.faults {
                        if f.stopped(to, usable - 1) {
                            loss_report.stopped_receives += 1;
                            taint
                                .entry((to.0, packet.seq()))
                                .or_insert(FaultCause::Crash);
                            continue;
                        }
                    }
                    if !strict && departed[to.index()] {
                        self.stats.deliveries_to_departed += 1;
                        continue;
                    }
                    if rec_on {
                        // Even a duplicate arrival proves the sender alive
                        // and fills an open gap.
                        if nacks.resolve(to.0, packet.seq()) {
                            resil.repaired_packets += 1;
                            if tel_on {
                                if let Some(sent) = nack_sent_tick.remove(&(to.0, packet.seq())) {
                                    tel.observe(
                                        tm::RECOVERY_NACK_RTT,
                                        ev.time.saturating_sub(sent),
                                    );
                                }
                            }
                        }
                        repair_buf.note(to.0, packet.seq());
                        if !from.is_source() {
                            last_sender[to.index()] = from.0;
                            if detector.record(to.0, from.0, ev.time) {
                                q.push(
                                    ev.time + detector.timeout(),
                                    EventKind::SuspectTimeout {
                                        watcher: to,
                                        subject: from,
                                    },
                                );
                            }
                        }
                    }
                    let cell = &mut state.held[to.index()];
                    if !cell.insert(packet.seq()) {
                        stats.record_duplicate();
                        continue;
                    }
                    let nw = &mut state.newest[to.index()];
                    if nw.is_none_or(|n| packet.seq() > n) {
                        *nw = Some(packet.seq());
                    }
                    if packet.seq() < sim.track_packets
                        && is_receiver[to.index()]
                        && arrivals.usable_slot(to, packet).is_none()
                    {
                        remaining -= 1;
                    }
                    arrivals.record(to, packet, Slot(usable));
                    if rec_on && rec.mode.nack() && is_receiver[to.index()] {
                        // Scan for gaps that have fallen more than
                        // `gap_slack` behind the newest arrival. The cursor
                        // is monotone, so total scan work is O(window).
                        let horizon = state.newest[to.index()]
                            .unwrap_or(0)
                            .saturating_sub(rec.gap_slack)
                            .min(sim.track_packets);
                        let cur = &mut gap_scan[to.index()];
                        while *cur < horizon {
                            let s = *cur;
                            *cur += 1;
                            if !state.held[to.index()].contains(s) && nacks.open(to.0, s) {
                                q.push(
                                    ev.time,
                                    EventKind::Nack {
                                        node: to,
                                        packet: PacketId(s),
                                        attempt: 0,
                                    },
                                );
                            }
                        }
                    }
                    if !strict {
                        if let Some(txs) = waiting.remove(&(to.0, packet.seq())) {
                            for tx in txs {
                                self.stats.released_sends += 1;
                                let cap = match &class_caps {
                                    Some(c) if !tx.from.is_source() => c[tx.from.index()],
                                    _ => scheme.send_capacity(tx.from),
                                };
                                admit_relaxed(
                                    &tx,
                                    ev.time,
                                    cap,
                                    &departed,
                                    sim.faults.as_ref(),
                                    &mut loss_rng,
                                    &mut loss_report,
                                    &mut taint,
                                    cfg.uplink,
                                    &mut gate,
                                    &mut stats,
                                    &mut trace,
                                    &mut self.stats,
                                    &mut q,
                                );
                            }
                        }
                    }
                }
                EventKind::Churn(action) => match action {
                    ResolvedChurnAction::Leave { ext } => {
                        if (ext as usize) < n_ids {
                            departed[ext as usize] = true;
                            self.stats.churn_leaves += 1;
                            if rec_on {
                                crash_tick.entry(ext as u32).or_insert(ev.time);
                            }
                        }
                    }
                    ResolvedChurnAction::Join { .. } => {
                        self.stats.churn_joins_ignored += 1;
                    }
                    ResolvedChurnAction::Rejoin { ext } => {
                        if (ext as usize) < n_ids {
                            departed[ext as usize] = false;
                            self.stats.churn_rejoins += 1;
                            if rec_on {
                                if let Some(outcome) = scheme
                                    .membership_event(NodeId(ext as u32), MembershipEvent::Rejoined)
                                {
                                    resil.displaced_total += outcome.displaced.len() as u64;
                                    // Stale silence from the pre-rejoin
                                    // topology must not confirm anyone.
                                    detector.clear_links();
                                }
                                detector.forget(ext as u32);
                                crash_tick.remove(&(ext as u32));
                            }
                        }
                    }
                },
                EventKind::SuspectTimeout { watcher, subject } => {
                    // Timers die with the playback horizon — re-armed
                    // probes must not keep the queue alive forever.
                    if !rec_on
                        || stopped
                        || departed[watcher.index()]
                        || ev.time >= sim.max_slots * TICKS_PER_SLOT
                    {
                        continue;
                    }
                    match detector.check(watcher.0, subject.0, ev.time) {
                        TimeoutVerdict::Drop => {}
                        TimeoutVerdict::Rearm(deadline) => {
                            q.push(deadline, EventKind::SuspectTimeout { watcher, subject });
                        }
                        TimeoutVerdict::Suspect => {
                            // Silence alone cannot distinguish a crashed
                            // parent from a merely starved one (a crash
                            // silences its whole subtree at once) or from a
                            // link the last repair rewired away. The watcher
                            // therefore probes the subject before accusing
                            // it: a live subject answers, the alarm is
                            // defused and the link re-armed; only true
                            // silence counts toward confirmation.
                            resil.control_messages += 1;
                            let slot_now = ev.time / TICKS_PER_SLOT;
                            let alive = !departed[subject.index()]
                                && !sim.faults.as_ref().is_some_and(|f| {
                                    f.stopped(subject, slot_now) || f.crashed(subject, slot_now)
                                });
                            if alive {
                                detector.record(watcher.0, subject.0, ev.time);
                                q.push(
                                    ev.time + detector.timeout(),
                                    EventKind::SuspectTimeout { watcher, subject },
                                );
                            } else if detector.confirm(subject.0) {
                                resil.failures_detected += 1;
                                q.push(ev.time, EventKind::RepairCommit { failed: subject });
                            }
                        }
                    }
                }
                EventKind::RepairCommit { failed } => {
                    if !rec_on || stopped {
                        continue;
                    }
                    if let Some(outcome) = scheme.membership_event(failed, MembershipEvent::Failed)
                    {
                        resil.repairs_committed += 1;
                        resil.displaced_total += outcome.displaced.len() as u64;
                        let latency = ev
                            .time
                            .saturating_sub(crash_tick.get(&failed.0).copied().unwrap_or(ev.time));
                        resil.recovery_latency_total_ticks += latency;
                        resil.recovery_latency_max_ticks =
                            resil.recovery_latency_max_ticks.max(latency);
                        tel.observe(tm::RECOVERY_DETECTION_LATENCY, latency);
                        // The rebuilt schedule rewires who hears from whom;
                        // outstanding link timers must die, not misfire.
                        detector.clear_links();
                    }
                }
                EventKind::Nack {
                    node,
                    packet,
                    attempt,
                } => {
                    if !rec_on
                        || stopped
                        || ev.time >= sim.max_slots * TICKS_PER_SLOT
                        || !nacks.is_open(node.0, packet.seq())
                    {
                        continue;
                    }
                    let slot_now = ev.time / TICKS_PER_SLOT;
                    if departed[node.index()]
                        || sim
                            .faults
                            .as_ref()
                            .is_some_and(|f| f.stopped(node, slot_now))
                    {
                        // A dead requester stops chasing (no hiccup: it no
                        // longer plays).
                        nacks.abandon(node.0, packet.seq());
                        continue;
                    }
                    if attempt >= rec.max_retries {
                        // Graceful degradation: skip the packet, record the
                        // hiccup, move on.
                        nacks.abandon(node.0, packet.seq());
                        resil.abandoned_packets += 1;
                        continue;
                    }
                    // First attempts go to the most recent parent while it
                    // still buffers the packet; later attempts (or a dead /
                    // bufferless parent) escalate to the source.
                    let mut server = SOURCE;
                    let parent = last_sender[node.index()];
                    if attempt < 2 && parent != 0 {
                        let cand = NodeId(parent);
                        let dead = departed[cand.index()]
                            || sim
                                .faults
                                .as_ref()
                                .is_some_and(|f| f.crashed(cand, slot_now));
                        if !dead && repair_buf.contains(parent, packet.seq()) {
                            server = cand;
                        }
                    }
                    resil.nacks_sent += 1;
                    resil.control_messages += 1;
                    if tel_on {
                        nack_sent_tick
                            .entry((node.0, packet.seq()))
                            .or_insert(ev.time);
                    }
                    // The NACK reaches the server one slot later; the retry
                    // timer re-fires after the (capped, jittered) backoff.
                    q.push(
                        ev.time + TICKS_PER_SLOT,
                        EventKind::Retransmit {
                            from: server,
                            to: node,
                            packet,
                        },
                    );
                    q.push(
                        ev.time + TICKS_PER_SLOT + nacks.backoff_delay(attempt),
                        EventKind::Nack {
                            node,
                            packet,
                            attempt: attempt + 1,
                        },
                    );
                }
                EventKind::Retransmit { from, to, packet } => {
                    if !rec_on || stopped || !nacks.is_open(to.0, packet.seq()) {
                        continue;
                    }
                    let slot_now = ev.time / TICKS_PER_SLOT;
                    // The server must still be able to serve.
                    if from.is_source() {
                        if !state.availability.produced(packet, Slot(slot_now)) {
                            continue;
                        }
                    } else {
                        let dead = departed[from.index()]
                            || sim
                                .faults
                                .as_ref()
                                .is_some_and(|f| f.crashed(from, slot_now));
                        if dead || !repair_buf.contains(from.0, packet.seq()) {
                            continue;
                        }
                    }
                    resil.retransmissions += 1;
                    resil.control_messages += 1;
                    // Repair traffic crosses the same lossy links, but draws
                    // from the dedicated recovery stream so the main loss
                    // process is untouched.
                    if let Some(f) = &sim.faults {
                        if f.loss_rate > 0.0 && rec_rng.gen_bool(f.loss_rate) {
                            continue;
                        }
                    }
                    q.push(
                        ev.time + TICKS_PER_SLOT,
                        EventKind::Deliver { from, to, packet },
                    );
                }
                EventKind::PlaybackTick => {
                    if stopped {
                        continue;
                    }
                    let t = ev.time / TICKS_PER_SLOT;
                    slots_run = t + 1;
                    if sim.stop_when_complete && remaining == 0 {
                        stopped = true;
                        continue;
                    }
                    state.slot = Slot(t);
                    out.clear();
                    scheme.transmissions(Slot(t), &state, &mut out);
                    for idx in touched.drain(..) {
                        send_counts[idx] = 0;
                    }
                    for tx in &out {
                        if tx.from.index() >= n_ids {
                            return Err(CoreError::UnknownNode { node: tx.from });
                        }
                        if tx.to.index() >= n_ids {
                            return Err(CoreError::UnknownNode { node: tx.to });
                        }
                        if tx.latency == 0 {
                            return Err(CoreError::InvalidConfig(format!(
                                "zero-latency transmission {} → {}",
                                tx.from, tx.to
                            )));
                        }

                        if strict {
                            if let Some(f) = &sim.faults {
                                if f.crashed(tx.from, t) {
                                    loss_report.crash_suppressed += 1;
                                    taint
                                        .entry((tx.to.0, tx.packet.seq()))
                                        .or_insert(FaultCause::Crash);
                                    continue;
                                }
                            }
                            if tx.from.is_source() {
                                if !state.availability.produced(tx.packet, Slot(t)) {
                                    return Err(CoreError::PacketNotProduced {
                                        slot: Slot(t),
                                        packet: tx.packet,
                                    });
                                }
                            } else if !state.held[tx.from.index()].contains(tx.packet.seq()) {
                                if let Some(f) = &sim.faults {
                                    // A fault propagating downstream:
                                    // attribute the suppression to whatever
                                    // first took out the sender's copy.
                                    let cause = taint
                                        .get(&(tx.from.0, tx.packet.seq()))
                                        .copied()
                                        .unwrap_or(default_cause(f));
                                    loss_report.propagation_suppressed += 1;
                                    match cause {
                                        FaultCause::Loss => loss_report.propagation_from_loss += 1,
                                        FaultCause::Crash => {
                                            loss_report.propagation_from_crash += 1
                                        }
                                    }
                                    taint.entry((tx.to.0, tx.packet.seq())).or_insert(cause);
                                    continue;
                                }
                                return Err(CoreError::PacketNotHeld {
                                    node: tx.from,
                                    slot: Slot(t),
                                    packet: tx.packet,
                                });
                            }
                            let c = &mut send_counts[tx.from.index()];
                            if *c == 0 {
                                touched.push(tx.from.index());
                            }
                            *c += 1;
                            let cap = scheme.send_capacity(tx.from);
                            if *c as usize > cap {
                                return Err(CoreError::SendCapacityExceeded {
                                    node: tx.from,
                                    slot: Slot(t),
                                    capacity: cap,
                                });
                            }
                            if let (Some(f), Some(r)) = (&sim.faults, loss_rng.as_mut()) {
                                if f.loss_rate > 0.0 && r.gen_bool(f.loss_rate) {
                                    loss_report.lost_in_flight += 1;
                                    taint
                                        .entry((tx.to.0, tx.packet.seq()))
                                        .or_insert(FaultCause::Loss);
                                    continue;
                                }
                            }
                            let arrival_slot = t + tx.latency as u64 - 1;
                            if let Err(other) =
                                occupied.try_insert(arrival_slot, tx.to.0, tx.packet.seq(), t)
                            {
                                return Err(CoreError::ReceiveCollision {
                                    node: tx.to,
                                    slot: Slot(arrival_slot),
                                    packets: (PacketId(other), tx.packet),
                                });
                            }
                            stats.record(tx);
                            if let Some(tr) = trace.as_mut() {
                                tr.push(t, tx);
                            }
                            self.stats.sends += 1;
                            q.push(ev.time, EventKind::Send(*tx));
                        } else {
                            if tx.from.is_source() {
                                if !state.availability.produced(tx.packet, Slot(t)) {
                                    return Err(CoreError::PacketNotProduced {
                                        slot: Slot(t),
                                        packet: tx.packet,
                                    });
                                }
                            } else if !state.held[tx.from.index()].contains(tx.packet.seq()) {
                                // Reactive node: send the moment it arrives.
                                self.stats.deferred_sends += 1;
                                waiting
                                    .entry((tx.from.0, tx.packet.seq()))
                                    .or_default()
                                    .push(*tx);
                                continue;
                            }
                            let cap = match &class_caps {
                                Some(c) if !tx.from.is_source() => c[tx.from.index()],
                                _ => scheme.send_capacity(tx.from),
                            };
                            admit_relaxed(
                                tx,
                                ev.time,
                                cap,
                                &departed,
                                sim.faults.as_ref(),
                                &mut loss_rng,
                                &mut loss_report,
                                &mut taint,
                                cfg.uplink,
                                &mut gate,
                                &mut stats,
                                &mut trace,
                                &mut self.stats,
                                &mut q,
                            );
                        }
                    }
                    if t + 1 < sim.max_slots {
                        q.push((t + 1) * TICKS_PER_SLOT, EventKind::PlaybackTick);
                    }
                }
                EventKind::Send(tx) => {
                    if stopped {
                        continue;
                    }
                    let lat = match replay.as_mut() {
                        Some(r) => match r.sample_ticks(tx.from.0, tx.to.0, tx.latency) {
                            Some(l) => l,
                            None => {
                                // A recorded chaos drop (injected loss or a
                                // partition blackout): the networked wire ate
                                // this copy, so the replay loses it in flight
                                // at the same position in the link's FIFO.
                                loss_report.lost_in_flight += 1;
                                taint
                                    .entry((tx.to.0, tx.packet.seq()))
                                    .or_insert(FaultCause::Loss);
                                continue;
                            }
                        },
                        None => cfg.latency.sample_ticks(tx.latency, &mut lat_rng),
                    };
                    q.push(
                        ev.time + lat,
                        EventKind::Deliver {
                            from: tx.from,
                            to: tx.to,
                            packet: tx.packet,
                        },
                    );
                }
            }
        }
        self.stats.events_scheduled = q.total_pushed();
        if tel_on && rec_on {
            // End-of-run recovery totals, mirrored from the resilience
            // counters so a metrics file alone tells the recovery story.
            tel.counter(tm::RECOVERY_REPAIRS, resil.repairs_committed);
            tel.counter(tm::RECOVERY_RETRANSMITS, resil.retransmissions);
            tel.counter(tm::RECOVERY_ABANDONS, resil.abandoned_packets);
            tel.counter(tm::RECOVERY_CONTROL_MESSAGES, resil.control_messages);
        }

        // Calendar entries still waiting for a packet that never came are
        // downstream loss propagation, same as the slot engines count it.
        // Attribution chases chains (one leftover may be what starved the
        // next) to a fixpoint over the deterministic BTreeMap order, then
        // falls back to the plan's default cause.
        let fallback = sim
            .faults
            .as_ref()
            .map(default_cause)
            .unwrap_or(FaultCause::Crash);
        let mut leftovers: Vec<Transmission> = waiting.into_values().flatten().collect();
        loop {
            let mut progressed = false;
            let mut still_unknown = Vec::new();
            for tx in leftovers {
                match taint.get(&(tx.from.0, tx.packet.seq())).copied() {
                    Some(cause) => {
                        loss_report.propagation_suppressed += 1;
                        match cause {
                            FaultCause::Loss => loss_report.propagation_from_loss += 1,
                            FaultCause::Crash => loss_report.propagation_from_crash += 1,
                        }
                        taint.entry((tx.to.0, tx.packet.seq())).or_insert(cause);
                        progressed = true;
                    }
                    None => still_unknown.push(tx),
                }
            }
            leftovers = still_unknown;
            if !progressed || leftovers.is_empty() {
                break;
            }
        }
        for tx in leftovers {
            loss_report.propagation_suppressed += 1;
            match fallback {
                FaultCause::Loss => loss_report.propagation_from_loss += 1,
                FaultCause::Crash => loss_report.propagation_from_crash += 1,
            }
            taint.entry((tx.to.0, tx.packet.seq())).or_insert(fallback);
        }

        let lossy = sim.faults.is_some()
            || cfg.churn.is_some()
            || cfg.recorded.as_ref().is_some_and(|r| r.drop_count() > 0);
        let mut nodes = Vec::with_capacity(receivers.len());
        for r in &receivers {
            let (delay, buffer) = if lossy {
                let pb = arrivals.analyze_lossy(*r);
                if pb.missing > 0 {
                    loss_report.missing.push((*r, pb.missing));
                }
                (pb.playback_delay, pb.max_buffer)
            } else {
                let pb = arrivals.analyze(*r)?;
                (pb.playback_delay, pb.max_buffer)
            };
            nodes.push(NodeQos {
                node: *r,
                playback_delay: delay,
                max_buffer: buffer,
                out_neighbors: stats.out_degree(*r),
                in_neighbors: stats.in_degree(*r),
                neighbors: stats.degree(*r),
            });
        }

        // Resilience: slot engines report Some iff faults are installed
        // (stall counters only); the DES also reports under churn and
        // fills the recovery counters when the recovery layer ran.
        let resilience = (lossy || rec_on).then(|| {
            let total = loss_report.total_missing() as u64;
            resil.stall_events = total;
            resil.stall_slots = total;
            resil
        });

        Ok(RunResult {
            scheme: scheme.name(),
            slots_run,
            arrivals,
            qos: QosReport::new(scheme.name(), nodes),
            total_transmissions: stats.total_transmissions(),
            duplicate_deliveries: stats.duplicate_deliveries(),
            loss: lossy.then_some(loss_report),
            trace,
            upload_counts: stats.upload_counts().to_vec(),
            resilience,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use clustream_core::SOURCE;
    use clustream_sim::{diff_fields, SimConfig, Simulator};

    /// S → 1 → 2 → … → N, the engine-exercise scheme used across the
    /// workspace.
    struct Chain {
        n: usize,
    }

    impl Scheme for Chain {
        fn name(&self) -> String {
            format!("chain({})", self.n)
        }
        fn num_receivers(&self) -> usize {
            self.n
        }
        fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
            let t = slot.t();
            out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
            for i in 1..self.n as u64 {
                if t >= i {
                    out.push(Transmission::local(
                        NodeId(i as u32),
                        NodeId(i as u32 + 1),
                        PacketId(t - i),
                    ));
                }
            }
        }
    }

    #[test]
    fn slot_faithful_matches_reference_engine() {
        let sim_cfg = SimConfig::until_complete(16, 200);
        let want = Simulator::run(&mut Chain { n: 6 }, &sim_cfg).unwrap();
        let got = DesEngine::new()
            .run(&mut Chain { n: 6 }, &DesConfig::slot_faithful(sim_cfg))
            .unwrap();
        assert_eq!(diff_fields(&want, &got), Vec::<&str>::new());
    }

    #[test]
    fn every_queue_kind_reproduces_the_heap_run() {
        // Strict, faulty and recovery-heavy runs: the queue choice must
        // never show up in the RunResult, only in the wall clock.
        use clustream_sim::FaultPlan;
        let configs = [
            DesConfig::slot_faithful(SimConfig::until_complete(16, 200)),
            DesConfig::slot_faithful(SimConfig::with_faults(24, 80, FaultPlan::loss(0.25, 42))),
            DesConfig::slot_faithful(SimConfig::with_faults(24, 200, FaultPlan::loss(0.2, 9)))
                .with_recovery(clustream_recovery::RecoveryConfig {
                    mode: clustream_recovery::RecoveryMode::RepairNack,
                    ..Default::default()
                }),
            DesConfig::slot_faithful(SimConfig::until_complete(12, 2000))
                .with_latency(LatencyModel::UniformJitter { jitter: 3.0 })
                .seeded(11),
        ];
        for cfg in configs {
            let mut heap_engine = DesEngine::new();
            let want = heap_engine.run(&mut Chain { n: 6 }, &cfg).unwrap();
            for queue in [QueueKind::Wheel, QueueKind::Checked] {
                let mut engine = DesEngine::new();
                let got = engine
                    .run(&mut Chain { n: 6 }, &cfg.clone().with_queue(queue))
                    .unwrap();
                assert_eq!(diff_fields(&want, &got), Vec::<&str>::new(), "{queue:?}");
                assert_eq!(engine.stats(), heap_engine.stats(), "{queue:?}");
            }
        }
    }

    #[test]
    fn slot_faithful_matches_reference_with_faults() {
        use clustream_sim::FaultPlan;
        let sim_cfg = SimConfig::with_faults(24, 80, FaultPlan::loss(0.25, 42));
        let want = Simulator::run(&mut Chain { n: 6 }, &sim_cfg).unwrap();
        let got = DesEngine::new()
            .run(&mut Chain { n: 6 }, &DesConfig::slot_faithful(sim_cfg))
            .unwrap();
        assert_eq!(diff_fields(&want, &got), Vec::<&str>::new());
        assert!(got.loss.as_ref().unwrap().lost_in_flight > 0);
    }

    #[test]
    fn slot_faithful_reproduces_validation_errors() {
        struct Collide;
        impl Scheme for Collide {
            fn name(&self) -> String {
                "collide".into()
            }
            fn num_receivers(&self) -> usize {
                3
            }
            fn send_capacity(&self, node: NodeId) -> usize {
                if node.is_source() {
                    2
                } else {
                    1
                }
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                if slot.t() == 0 {
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(0)));
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(1)));
                }
            }
        }
        let sim_cfg = SimConfig::until_complete(1, 10);
        let want = Simulator::run(&mut Collide, &sim_cfg).unwrap_err();
        let got = DesEngine::new()
            .run(&mut Collide, &DesConfig::slot_faithful(sim_cfg))
            .unwrap_err();
        assert_eq!(want.to_string(), got.to_string());
    }

    #[test]
    fn jitter_inflates_delay_but_still_completes() {
        let sim_cfg = SimConfig::until_complete(16, 400);
        let clean = DesEngine::new()
            .run(
                &mut Chain { n: 5 },
                &DesConfig::slot_faithful(sim_cfg.clone()),
            )
            .unwrap();
        let jittered = DesEngine::new()
            .run(
                &mut Chain { n: 5 },
                &DesConfig::slot_faithful(sim_cfg)
                    .with_latency(LatencyModel::UniformJitter { jitter: 2.0 })
                    .seeded(7),
            )
            .unwrap();
        assert!(
            jittered.qos.max_delay() >= clean.qos.max_delay(),
            "jitter cannot shrink the worst-case delay ({} < {})",
            jittered.qos.max_delay(),
            clean.qos.max_delay()
        );
        // Completion takes longer, so the calendar keeps streaming longer.
        assert!(jittered.slots_run >= clean.slots_run);
        // Deterministic under a fixed latency seed.
        let again = DesEngine::new()
            .run(
                &mut Chain { n: 5 },
                &DesConfig::slot_faithful(SimConfig::until_complete(16, 400))
                    .with_latency(LatencyModel::UniformJitter { jitter: 2.0 })
                    .seeded(7),
            )
            .unwrap();
        assert_eq!(diff_fields(&jittered, &again), Vec::<&str>::new());
    }

    #[test]
    fn serialized_uplink_delays_burst_sends() {
        // Source with capacity 2 multicasts packet t to both nodes each
        // slot. Unconstrained: both dispatch at the slot start. Serialized:
        // the second send occupies the uplink half a slot later, landing
        // mid-slot and usable one slot later.
        struct Burst;
        impl Scheme for Burst {
            fn name(&self) -> String {
                "burst".into()
            }
            fn num_receivers(&self) -> usize {
                2
            }
            fn send_capacity(&self, node: NodeId) -> usize {
                if node.is_source() {
                    2
                } else {
                    1
                }
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                let t = slot.t();
                out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
                out.push(Transmission::local(SOURCE, NodeId(2), PacketId(t)));
            }
        }
        let cfg = DesConfig::slot_faithful(SimConfig::until_complete(8, 100))
            .with_uplink(UplinkModel::Serialized);
        let r = DesEngine::new().run(&mut Burst, &cfg).unwrap();
        // Node 1's copy dispatches on the boundary: usable next slot.
        assert_eq!(
            r.arrivals.usable_slot(NodeId(1), PacketId(0)),
            Some(Slot(1))
        );
        // Node 2's copy dispatches half a slot late: usable one slot later.
        assert_eq!(
            r.arrivals.usable_slot(NodeId(2), PacketId(0)),
            Some(Slot(2))
        );
        assert_eq!(r.qos.node(NodeId(1)).unwrap().playback_delay, 1);
        assert_eq!(r.qos.node(NodeId(2)).unwrap().playback_delay, 2);
    }

    #[test]
    fn deferred_sends_release_on_arrival() {
        // Under heavy jitter a chain node's calendar entry routinely fires
        // before the packet arrived; the reactive path must still deliver
        // everything (no Hiccup) within a generous horizon.
        let cfg = DesConfig::slot_faithful(SimConfig::until_complete(12, 2000))
            .with_latency(LatencyModel::UniformJitter { jitter: 3.0 })
            .seeded(11);
        let mut engine = DesEngine::new();
        let r = engine.run(&mut Chain { n: 6 }, &cfg).unwrap();
        assert!(r.arrivals.complete_for(NodeId(6)));
        assert!(
            engine.stats().deferred_sends > 0,
            "3-slot jitter on a chain must defer some forwards"
        );
        // Releases can only lag deferrals (entries whose packet lands
        // after the early stop are never released).
        assert!(engine.stats().released_sends > 0);
        assert!(engine.stats().released_sends <= engine.stats().deferred_sends);
    }

    #[test]
    fn churned_out_node_starves_downstream() {
        use clustream_workloads::{ChurnAction, ChurnEvent, ChurnTrace, ChurnTraceConfig};
        // Hand-built trace: rank 1 (node 2, no supers) leaves at slot 6.
        let trace = ChurnTrace {
            config: ChurnTraceConfig {
                initial_members: 5,
                slots: 40,
                join_rate: 0.0,
                leave_rate: 0.0,
                rejoin_rate: 0.0,
                seed: 0,
            },
            events: vec![ChurnEvent {
                slot: 6,
                action: ChurnAction::Leave { victim_rank: 1 },
            }],
        };
        let cfg = DesConfig::slot_faithful(SimConfig {
            max_slots: 40,
            track_packets: 12,
            ..SimConfig::default()
        })
        .with_churn(trace);
        let mut engine = DesEngine::new();
        let r = engine.run(&mut Chain { n: 5 }, &cfg).unwrap();
        assert_eq!(engine.stats().churn_leaves, 1);
        let loss = r.loss.as_ref().expect("churn runs report loss");
        let missing = |id: u32| {
            loss.missing
                .iter()
                .find(|(n, _)| n.0 == id)
                .map_or(0, |(_, m)| *m)
        };
        assert_eq!(missing(1), 0);
        // Node 2 held packets 0..=4 when it left at slot 6 (chain: packet
        // j usable at node 2 from slot j + 2) and misses the rest.
        assert_eq!(missing(2), 7, "the departed node stops receiving");
        assert!(missing(3) > 0, "downstream of the departed node starves");
        assert!(missing(5) > 0);
        assert!(loss.crash_suppressed > 0, "departed sends are suppressed");
    }

    #[test]
    fn event_probe_names_follow_the_registry_prefixes() {
        let kinds = [
            EventKind::PlaybackTick,
            EventKind::Send(Transmission::local(SOURCE, NodeId(1), PacketId(0))),
            EventKind::Deliver {
                from: SOURCE,
                to: NodeId(1),
                packet: PacketId(0),
            },
            EventKind::Churn(ResolvedChurnAction::Join { ext: 9 }),
            EventKind::SuspectTimeout {
                watcher: NodeId(1),
                subject: NodeId(2),
            },
            EventKind::RepairCommit { failed: NodeId(2) },
            EventKind::Nack {
                node: NodeId(1),
                packet: PacketId(0),
                attempt: 0,
            },
            EventKind::Retransmit {
                from: SOURCE,
                to: NodeId(1),
                packet: PacketId(0),
            },
        ];
        for kind in &kinds {
            let (counter, span) = event_probe_names(kind);
            assert!(counter.starts_with(tm::DES_EVENT_PREFIX), "{counter}");
            assert!(span.starts_with(tm::DES_SERVICE_PREFIX), "{span}");
            assert_eq!(
                counter.strip_prefix(tm::DES_EVENT_PREFIX),
                span.strip_prefix(tm::DES_SERVICE_PREFIX),
                "counter and span must name the same event class"
            );
        }
    }

    #[test]
    fn telemetry_off_and_on_runs_are_identical_with_recovery() {
        use clustream_sim::FaultPlan;
        use clustream_telemetry::{MemoryRecorder, Telemetry};
        let mut sim_cfg = SimConfig::with_faults(24, 200, FaultPlan::loss(0.2, 9));
        let base = DesConfig::slot_faithful(sim_cfg.clone()).with_recovery(
            clustream_recovery::RecoveryConfig {
                mode: clustream_recovery::RecoveryMode::RepairNack,
                ..Default::default()
            },
        );
        let plain = DesEngine::new().run(&mut Chain { n: 6 }, &base).unwrap();
        let (rec, tel) = MemoryRecorder::handle();
        sim_cfg.telemetry = tel;
        let cfg = DesConfig {
            sim: sim_cfg,
            ..base
        };
        let instrumented = DesEngine::new().run(&mut Chain { n: 6 }, &cfg).unwrap();
        assert_eq!(
            diff_fields(&plain, &instrumented),
            Vec::<&str>::new(),
            "telemetry must not perturb the run"
        );
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(tm::DES_EVENTS),
            instrumented_events(&instrumented, &snap)
        );
        assert!(snap.spans.contains_key(tm::DES_RUN));
        assert!(snap.spans.contains_key("des.service.playback_tick"));
        assert!(snap.gauges.contains_key(tm::DES_QUEUE_DEPTH_MAX));
        let _ = Telemetry::disabled();
    }

    /// The per-class counters must sum to the total event counter, and
    /// that total must equal the engine's own processed count.
    fn instrumented_events(_r: &RunResult, snap: &clustream_telemetry::MetricsSnapshot) -> u64 {
        snap.counters
            .iter()
            .filter(|(k, _)| k.starts_with(tm::DES_EVENT_PREFIX))
            .map(|(_, &v)| v)
            .sum()
    }

    #[test]
    fn event_counters_populate() {
        let mut engine = DesEngine::new();
        let _ = engine
            .run(
                &mut Chain { n: 4 },
                &DesConfig::slot_faithful(SimConfig::until_complete(8, 100)),
            )
            .unwrap();
        let s = engine.stats();
        assert!(s.events_processed > 0);
        assert_eq!(s.events_processed, s.events_scheduled);
        assert!(s.sends > 0);
        assert!(s.deliveries > 0);
    }
}
