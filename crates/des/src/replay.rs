//! Recorded-trace latency replay: re-run a networked cluster run in-sim.
//!
//! The networked runtime (`clustream-net`) records the observed latency
//! of every per-link delivery. [`RecordedLatencies`] holds those samples
//! keyed by link, in per-link arrival order (which equals per-link send
//! order: each link is one FIFO stream connection). Installing a table
//! via [`crate::DesConfig::with_recorded_latencies`] makes the engine
//! consume the recorded sample for each `Send` on that link instead of
//! drawing from the parametric [`crate::LatencyModel`] — the DES becomes
//! a *replay oracle*: the same schedule under the physically observed
//! latencies must reproduce the networked run's per-node delivery order
//! within tolerance.
//!
//! Samples come in two kinds: a delivery with its observed wire time, or
//! a **recorded drop** ([`RecordedLatencies::push_drop`]) — a send the
//! networked run's chaos layer ate (injected loss, or a partition
//! blackout over the send's slot window). The engine loses a dropped
//! send in flight exactly where the wire did, so an injected-fault run
//! replays against the same delivery set the physical cluster saw.
//!
//! A recorded table forces the engine into **relaxed** mode even though
//! every sample is a concrete number: recorded latencies are not
//! slot-exact, and the networked nodes are reactive (a calendar send
//! whose packet has not arrived is deferred, then sent on arrival) —
//! exactly the relaxed engine's semantics.

use crate::event::TICKS_PER_SLOT;
use std::collections::BTreeMap;

/// Observed per-link samples, in per-link send order. `Some(ticks)` is a
/// delivery; `None` is a recorded drop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordedLatencies {
    links: BTreeMap<(u32, u32), Vec<Option<u64>>>,
}

impl RecordedLatencies {
    /// An empty table.
    pub fn new() -> Self {
        RecordedLatencies::default()
    }

    /// Append a delivery sample for the link `from → to`, in ticks.
    /// Clamped to at least one tick: a zero-tick wire would deliver
    /// before it sent.
    pub fn push(&mut self, from: u32, to: u32, ticks: u64) {
        self.links
            .entry((from, to))
            .or_default()
            .push(Some(ticks.max(1)));
    }

    /// Append a recorded drop for the link `from → to`: the networked
    /// run put this send on the wire schedule but the chaos layer (loss
    /// or a partition blackout) ate it. The replay loses the matching
    /// send in flight.
    pub fn push_drop(&mut self, from: u32, to: u32) {
        self.links.entry((from, to)).or_default().push(None);
    }

    /// Total samples across all links (deliveries and drops).
    pub fn len(&self) -> usize {
        self.links.values().map(Vec::len).sum()
    }

    /// Whether the table holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of distinct links with at least one sample.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Recorded drops across all links.
    pub fn drop_count(&self) -> usize {
        self.links
            .values()
            .flatten()
            .filter(|s| s.is_none())
            .count()
    }
}

/// Per-run consumption state over a [`RecordedLatencies`] table: each
/// link's samples are popped FIFO, one per `Send`.
#[derive(Debug)]
pub(crate) struct ReplayCursor<'a> {
    table: &'a RecordedLatencies,
    next: BTreeMap<(u32, u32), usize>,
}

impl<'a> ReplayCursor<'a> {
    /// A cursor at the start of every link's sample list.
    pub(crate) fn new(table: &'a RecordedLatencies) -> Self {
        ReplayCursor {
            table,
            next: BTreeMap::new(),
        }
    }

    /// The next sample for a send on `from → to`: `Some(ticks)` delivers
    /// after that wire time, `None` is a recorded drop (the send is lost
    /// in flight).
    ///
    /// Links with more sends than samples repeat their last *delivered*
    /// sample (the networked run ended; its final observation is the
    /// best estimate for traffic past it — drops are events, not link
    /// properties, so they are never repeated), and links never observed
    /// — e.g. repair paths the networked run did not exercise — fall
    /// back to the nominal `base_slots` wire time.
    pub(crate) fn sample_ticks(&mut self, from: u32, to: u32, base_slots: u32) -> Option<u64> {
        let nominal = base_slots as u64 * TICKS_PER_SLOT;
        match self.table.links.get(&(from, to)) {
            Some(samples) if !samples.is_empty() => {
                let idx = self.next.entry((from, to)).or_insert(0);
                if *idx < samples.len() {
                    let s = samples[*idx];
                    *idx += 1;
                    s
                } else {
                    // Exhausted: repeat the last delivery, never a drop.
                    Some(samples.iter().rev().find_map(|s| *s).unwrap_or(nominal))
                }
            }
            _ => Some(nominal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_pop_fifo_then_repeat_last() {
        let mut rec = RecordedLatencies::new();
        rec.push(0, 1, 10);
        rec.push(0, 1, 20);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.link_count(), 1);
        let mut cur = ReplayCursor::new(&rec);
        assert_eq!(cur.sample_ticks(0, 1, 1), Some(10));
        assert_eq!(cur.sample_ticks(0, 1, 1), Some(20));
        assert_eq!(
            cur.sample_ticks(0, 1, 1),
            Some(20),
            "exhausted link repeats"
        );
    }

    #[test]
    fn unknown_links_use_the_nominal_latency() {
        let rec = RecordedLatencies::new();
        assert!(rec.is_empty());
        let mut cur = ReplayCursor::new(&rec);
        assert_eq!(cur.sample_ticks(3, 4, 2), Some(2 * TICKS_PER_SLOT));
    }

    #[test]
    fn zero_samples_are_clamped_to_one_tick() {
        let mut rec = RecordedLatencies::new();
        rec.push(1, 2, 0);
        let mut cur = ReplayCursor::new(&rec);
        assert_eq!(cur.sample_ticks(1, 2, 1), Some(1));
    }

    #[test]
    fn drops_consume_their_slot_in_the_fifo() {
        let mut rec = RecordedLatencies::new();
        rec.push(0, 1, 10);
        rec.push_drop(0, 1);
        rec.push(0, 1, 30);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.drop_count(), 1);
        let mut cur = ReplayCursor::new(&rec);
        assert_eq!(cur.sample_ticks(0, 1, 1), Some(10));
        assert_eq!(cur.sample_ticks(0, 1, 1), None, "the recorded drop");
        assert_eq!(cur.sample_ticks(0, 1, 1), Some(30));
    }

    #[test]
    fn exhaustion_repeats_the_last_delivery_not_a_trailing_drop() {
        let mut rec = RecordedLatencies::new();
        rec.push(0, 1, 17);
        rec.push_drop(0, 1);
        let mut cur = ReplayCursor::new(&rec);
        assert_eq!(cur.sample_ticks(0, 1, 1), Some(17));
        assert_eq!(cur.sample_ticks(0, 1, 1), None);
        assert_eq!(
            cur.sample_ticks(0, 1, 1),
            Some(17),
            "a trailing drop must not black-hole the link forever"
        );
    }

    #[test]
    fn all_drop_links_fall_back_to_nominal_on_exhaustion() {
        let mut rec = RecordedLatencies::new();
        rec.push_drop(2, 3);
        let mut cur = ReplayCursor::new(&rec);
        assert_eq!(cur.sample_ticks(2, 3, 2), None);
        assert_eq!(cur.sample_ticks(2, 3, 2), Some(2 * TICKS_PER_SLOT));
    }
}
