//! The synchronous slot engine.
//!
//! Executes a [`Scheme`] slot by slot under the paper's communication model,
//! validating every transmission and recording arrivals. See the crate docs
//! for the model; the important conventions are:
//!
//! * a transmission sent during slot `t` with latency `ℓ` *occupies the
//!   receiver's downlink* during slot `t + ℓ − 1` (its arrival slot) and is
//!   usable from slot `t + ℓ`;
//! * at most one arrival per node per arrival slot (receive capacity 1);
//! * at most `send_capacity(node)` sends per node per slot;
//! * a non-source sender must already hold the packet it forwards; the
//!   source holds every *produced* packet (see
//!   [`clustream_core::Availability`]).

use crate::metrics::TrafficStats;
use crate::playback::ArrivalTable;
use clustream_core::{
    CoreError, NodeId, NodeQos, PacketId, QosReport, Scheme, Slot, StateView, Transmission,
};
use std::collections::{BTreeMap, HashSet};

/// Simulation parameters.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Maximum number of slots to simulate.
    pub max_slots: u64,
    /// Record arrivals (and measure QoS) for packets `0..track_packets`.
    pub track_packets: u64,
    /// Stop as soon as every receiver has every tracked packet.
    pub stop_when_complete: bool,
    /// Optional fault injection (link loss, crashes). With faults active,
    /// missing packets are *reported* (see [`RunResult::loss`]) instead of
    /// failing the run, and a non-source sender forwarding a packet it
    /// never received is counted as propagation suppression rather than a
    /// model violation.
    pub faults: Option<crate::faults::FaultPlan>,
    /// Record every validated transmission into [`RunResult::trace`].
    pub record_trace: bool,
    /// Instrumentation sink. Disabled by default; engines must produce
    /// bit-identical [`RunResult`]s whether or not a recorder is attached
    /// (enforced by `tests/telemetry.rs`).
    pub telemetry: clustream_telemetry::Telemetry,
}

impl SimConfig {
    /// Track `track_packets` packets with a generous horizon and early stop.
    pub fn until_complete(track_packets: u64, max_slots: u64) -> Self {
        SimConfig {
            max_slots,
            track_packets,
            stop_when_complete: true,
            ..SimConfig::default()
        }
    }

    /// Same, with fault injection (early stop disabled: lossy runs never
    /// "complete").
    pub fn with_faults(
        track_packets: u64,
        max_slots: u64,
        faults: crate::faults::FaultPlan,
    ) -> Self {
        SimConfig {
            max_slots,
            track_packets,
            faults: Some(faults),
            ..SimConfig::default()
        }
    }

    /// The fault-tolerant regime without injected faults: a zero-rate
    /// loss plan turns on lossy *reporting* (missing packets become a
    /// [`crate::faults::LossReport`] and resilience metrics instead of a
    /// hiccup error) while the loss RNG never fires. This is the
    /// configuration for runs that are lossy *by design* — flash-crowd
    /// scenarios where joiners miss every pre-join packet, or repair
    /// interleavings where departed members stay in the id space — and
    /// it behaves identically on the reference, fast, mega and
    /// slot-faithful DES engines.
    pub fn lossy_regime(track_packets: u64, max_slots: u64) -> Self {
        Self::with_faults(
            track_packets,
            max_slots,
            crate::faults::FaultPlan::loss(0.0, 0),
        )
    }

    /// Enable transmission tracing on this configuration.
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attach a telemetry recorder to this configuration.
    pub fn with_telemetry(mut self, telemetry: clustream_telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// This configuration with telemetry removed — used by differential
    /// harnesses so the oracle-side run does not double-record.
    pub fn without_telemetry(&self) -> Self {
        let mut cfg = self.clone();
        cfg.telemetry = clustream_telemetry::Telemetry::disabled();
        cfg
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Scheme identifier.
    pub scheme: String,
    /// Slots actually simulated (may be fewer than `max_slots` when
    /// stopping early).
    pub slots_run: u64,
    /// Per-node arrival slots of tracked packets.
    pub arrivals: ArrivalTable,
    /// Aggregate QoS over the scheme's receivers.
    pub qos: QosReport,
    /// Total validated transmissions.
    pub total_transmissions: u64,
    /// Deliveries of packets the node already held (0 for all of the
    /// paper's schemes).
    pub duplicate_deliveries: u64,
    /// Loss accounting; `Some` iff the run had a fault plan.
    pub loss: Option<crate::faults::LossReport>,
    /// Transmission trace; `Some` iff [`SimConfig::record_trace`] was set.
    pub trace: Option<crate::trace::EventTrace>,
    /// Packets uploaded per node id over the run — the contribution
    /// profile (§1: idle leaves waste system resources).
    pub upload_counts: Vec<u64>,
    /// Resilience accounting; `Some` iff the run had a fault plan (same
    /// rule as [`RunResult::loss`]). Slot engines populate only the stall
    /// counters; the DES recovery layer fills the rest.
    pub resilience: Option<crate::resilience::ResilienceMetrics>,
}

/// The slot engine. Stateless between runs; see [`Simulator::run`].
pub struct Simulator;

/// Mutable per-run state, borrowed immutably by the scheme through
/// [`StateView`].
struct EngineState {
    /// Packets held (usable) per node. The source's holdings are implicit.
    held: Vec<HashSet<u64>>,
    /// Highest-numbered packet held per node.
    newest: Vec<Option<u64>>,
    slot: Slot,
    availability: clustream_core::Availability,
}

impl StateView for EngineState {
    fn holds(&self, node: NodeId, packet: PacketId) -> bool {
        if node.is_source() {
            self.availability.produced(packet, self.slot)
        } else {
            self.held[node.index()].contains(&packet.seq())
        }
    }

    fn newest(&self, node: NodeId) -> Option<PacketId> {
        self.newest[node.index()].map(PacketId)
    }

    fn slot(&self) -> Slot {
        self.slot
    }
}

impl Simulator {
    /// Run `scheme` under `cfg`, returning per-node QoS.
    ///
    /// Errors if the scheme violates the communication model
    /// (capacity/collision/holding violations) or if some receiver never
    /// obtains a tracked packet within the horizon (hiccup).
    pub fn run(scheme: &mut dyn Scheme, cfg: &SimConfig) -> Result<RunResult, CoreError> {
        use clustream_telemetry::names as tm;
        let _run_span = cfg.telemetry.span(tm::ENGINE_RUN);
        let n_ids = scheme.id_space();
        if n_ids == 0 {
            return Err(CoreError::InvalidConfig("empty id space".into()));
        }
        let receivers = scheme.receivers();
        for r in &receivers {
            if r.index() >= n_ids {
                return Err(CoreError::UnknownNode { node: *r });
            }
        }

        let mut state = EngineState {
            held: vec![HashSet::new(); n_ids],
            newest: vec![None; n_ids],
            slot: Slot(0),
            availability: scheme.availability(),
        };
        let mut arrivals = ArrivalTable::new(n_ids, cfg.track_packets);
        let mut stats = TrafficStats::new(n_ids);

        // Arrival queue: arrival slot → (to, packet). A packet queued with
        // arrival slot `s` becomes usable at `s + 1`.
        let mut pending: BTreeMap<u64, Vec<(NodeId, PacketId)>> = BTreeMap::new();
        // Guards the one-arrival-per-node-per-slot constraint across
        // transmissions queued from different send slots.
        let mut scheduled_arrivals: HashSet<(u64, u32)> = HashSet::new();

        // Remaining (receiver, tracked packet) firsts before completion.
        let is_receiver: Vec<bool> = {
            let mut v = vec![false; n_ids];
            for r in &receivers {
                v[r.index()] = true;
            }
            v
        };
        let mut remaining: u64 = receivers.len() as u64 * cfg.track_packets;

        let mut out: Vec<Transmission> = Vec::new();
        let mut send_counts: Vec<u32> = vec![0; n_ids];
        let mut touched: Vec<usize> = Vec::new();

        // Fault machinery (inactive when cfg.faults is None).
        use rand::{Rng, SeedableRng};
        let mut loss_report = crate::faults::LossReport::default();
        // First cause each (node, packet) copy went missing for; looked up
        // by key only (never iterated), so a HashMap stays deterministic.
        let mut taint: std::collections::HashMap<(u32, u64), crate::faults::FaultCause> =
            std::collections::HashMap::new();
        let mut rng = cfg
            .faults
            .as_ref()
            .map(|f| rand_chacha::ChaCha8Rng::seed_from_u64(f.seed));
        let mut trace = cfg.record_trace.then(crate::trace::EventTrace::default);

        let mut slots_run = 0;
        for t in 0..cfg.max_slots {
            state.slot = Slot(t);
            slots_run = t + 1;

            // 1. Deliver packets whose arrival slot was t − 1 (usable from t).
            let mut slot_deliveries: u64 = 0;
            if let Some(batch) = pending.remove(&t.wrapping_sub(1)) {
                for (to, packet) in batch {
                    scheduled_arrivals.remove(&(t - 1, to.0));
                    // Fail-stopped receivers drop arrivals on the floor.
                    if let Some(f) = &cfg.faults {
                        if f.stopped(to, t - 1) {
                            loss_report.stopped_receives += 1;
                            taint
                                .entry((to.0, packet.seq()))
                                .or_insert(crate::faults::FaultCause::Crash);
                            continue;
                        }
                    }
                    let cell = &mut state.held[to.index()];
                    if !cell.insert(packet.seq()) {
                        stats.record_duplicate();
                        continue;
                    }
                    let nw = &mut state.newest[to.index()];
                    if nw.is_none_or(|n| packet.seq() > n) {
                        *nw = Some(packet.seq());
                    }
                    if packet.seq() < cfg.track_packets
                        && is_receiver[to.index()]
                        && arrivals.usable_slot(to, packet).is_none()
                    {
                        remaining -= 1;
                    }
                    arrivals.record(to, packet, Slot(t));
                    slot_deliveries += 1;
                }
            }
            cfg.telemetry
                .counter(tm::ENGINE_DELIVERIES, slot_deliveries);
            cfg.telemetry
                .observe(tm::ENGINE_SLOT_DELIVERIES, slot_deliveries);

            if cfg.stop_when_complete && remaining == 0 {
                break;
            }

            // 2. Ask the scheme for this slot's transmissions.
            out.clear();
            scheme.transmissions(Slot(t), &state, &mut out);

            // 3. Validate and queue.
            for idx in touched.drain(..) {
                send_counts[idx] = 0;
            }
            for tx in &out {
                if tx.from.index() >= n_ids {
                    return Err(CoreError::UnknownNode { node: tx.from });
                }
                if tx.to.index() >= n_ids {
                    return Err(CoreError::UnknownNode { node: tx.to });
                }
                if tx.latency == 0 {
                    return Err(CoreError::InvalidConfig(format!(
                        "zero-latency transmission {} → {}",
                        tx.from, tx.to
                    )));
                }

                // Crashed senders transmit nothing.
                if let Some(f) = &cfg.faults {
                    if f.crashed(tx.from, t) {
                        loss_report.crash_suppressed += 1;
                        taint
                            .entry((tx.to.0, tx.packet.seq()))
                            .or_insert(crate::faults::FaultCause::Crash);
                        continue;
                    }
                }

                // Sender must hold (or, for the source, have produced) it.
                if tx.from.is_source() {
                    if !state.availability.produced(tx.packet, Slot(t)) {
                        return Err(CoreError::PacketNotProduced {
                            slot: Slot(t),
                            packet: tx.packet,
                        });
                    }
                } else if !state.held[tx.from.index()].contains(&tx.packet.seq()) {
                    if let Some(f) = &cfg.faults {
                        // A fault propagating downstream: the node cannot
                        // forward what it never received. Attribute the
                        // suppression to whatever first took out the
                        // sender's copy.
                        let cause = taint
                            .get(&(tx.from.0, tx.packet.seq()))
                            .copied()
                            .unwrap_or(crate::faults::default_cause(f));
                        loss_report.propagation_suppressed += 1;
                        match cause {
                            crate::faults::FaultCause::Loss => {
                                loss_report.propagation_from_loss += 1
                            }
                            crate::faults::FaultCause::Crash => {
                                loss_report.propagation_from_crash += 1
                            }
                        }
                        taint.entry((tx.to.0, tx.packet.seq())).or_insert(cause);
                        continue;
                    }
                    return Err(CoreError::PacketNotHeld {
                        node: tx.from,
                        slot: Slot(t),
                        packet: tx.packet,
                    });
                }

                // Send capacity.
                let c = &mut send_counts[tx.from.index()];
                if *c == 0 {
                    touched.push(tx.from.index());
                }
                *c += 1;
                let cap = scheme.send_capacity(tx.from);
                if *c as usize > cap {
                    return Err(CoreError::SendCapacityExceeded {
                        node: tx.from,
                        slot: Slot(t),
                        capacity: cap,
                    });
                }

                // Link loss: uplink capacity is spent, nothing arrives.
                if let (Some(f), Some(r)) = (&cfg.faults, rng.as_mut()) {
                    if f.loss_rate > 0.0 && r.gen_bool(f.loss_rate) {
                        loss_report.lost_in_flight += 1;
                        taint
                            .entry((tx.to.0, tx.packet.seq()))
                            .or_insert(crate::faults::FaultCause::Loss);
                        continue;
                    }
                }

                // Receive capacity at the arrival slot.
                let arrival_slot = t + tx.latency as u64 - 1;
                if !scheduled_arrivals.insert((arrival_slot, tx.to.0)) {
                    // Find the other packet for the error message.
                    let other = pending
                        .get(&arrival_slot)
                        .and_then(|v| v.iter().find(|(to, _)| *to == tx.to))
                        .map(|(_, p)| *p)
                        .unwrap_or(tx.packet);
                    return Err(CoreError::ReceiveCollision {
                        node: tx.to,
                        slot: Slot(arrival_slot),
                        packets: (other, tx.packet),
                    });
                }
                pending
                    .entry(arrival_slot)
                    .or_default()
                    .push((tx.to, tx.packet));
                stats.record(tx);
                if let Some(tr) = trace.as_mut() {
                    tr.push(t, tx);
                }
            }
        }

        // 4. Flush any deliveries that complete right after the last slot.
        //    (Packets sent in the final simulated slot are usable at
        //    slots_run; count them so tight horizons still complete.)
        for (arrival_slot, batch) in pending {
            for (to, packet) in batch {
                if let Some(f) = &cfg.faults {
                    if f.stopped(to, arrival_slot) {
                        loss_report.stopped_receives += 1;
                        continue;
                    }
                }
                arrivals.record(to, packet, Slot(arrival_slot + 1));
            }
        }

        // 5. Analyse playback per receiver. Fault-free runs fail hard on a
        //    missing packet; faulty runs report losses instead.
        let mut nodes = Vec::with_capacity(receivers.len());
        for r in &receivers {
            let (delay, buffer) = if cfg.faults.is_some() {
                let pb = arrivals.analyze_lossy(*r);
                if pb.missing > 0 {
                    loss_report.missing.push((*r, pb.missing));
                    cfg.telemetry.counter(tm::ENGINE_HICCUPS, 1);
                }
                (pb.playback_delay, pb.max_buffer)
            } else {
                let pb = arrivals.analyze(*r)?;
                (pb.playback_delay, pb.max_buffer)
            };
            cfg.telemetry.observe(tm::ENGINE_PLAYBACK_DELAY, delay);
            cfg.telemetry
                .observe(tm::ENGINE_BUFFER_OCCUPANCY, buffer as u64);
            nodes.push(NodeQos {
                node: *r,
                playback_delay: delay,
                max_buffer: buffer,
                out_neighbors: stats.out_degree(*r),
                in_neighbors: stats.in_degree(*r),
                neighbors: stats.degree(*r),
            });
        }

        cfg.telemetry.counter(tm::ENGINE_SLOTS, slots_run);
        cfg.telemetry
            .counter(tm::ENGINE_TRANSMISSIONS, stats.total_transmissions());

        let resilience = cfg.faults.as_ref().map(|_| {
            crate::resilience::ResilienceMetrics::from_missing(loss_report.total_missing() as u64)
        });
        Ok(RunResult {
            scheme: scheme.name(),
            slots_run,
            arrivals,
            qos: QosReport::new(scheme.name(), nodes),
            total_transmissions: stats.total_transmissions(),
            duplicate_deliveries: stats.duplicate_deliveries(),
            loss: cfg.faults.as_ref().map(|_| loss_report),
            trace,
            upload_counts: stats.upload_counts().to_vec(),
            resilience,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_core::{Availability, SOURCE};

    /// S streams packets down a chain S → 1 → 2 → … → N; the simplest
    /// possible scheme, used here to exercise the engine itself.
    struct Chain {
        n: usize,
    }

    impl Scheme for Chain {
        fn name(&self) -> String {
            format!("chain({})", self.n)
        }
        fn num_receivers(&self) -> usize {
            self.n
        }
        fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
            let t = slot.t();
            // S sends packet t to node 1; node i forwards packet t−i to i+1.
            out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
            for i in 1..self.n as u64 {
                if t >= i && (self.n as u64) > i {
                    out.push(Transmission::local(
                        NodeId(i as u32),
                        NodeId(i as u32 + 1),
                        PacketId(t - i),
                    ));
                }
            }
        }
    }

    #[test]
    fn chain_delays_grow_linearly() {
        let mut s = Chain { n: 5 };
        let r = Simulator::run(&mut s, &SimConfig::until_complete(8, 100)).unwrap();
        // Node i first gets packet 0 at usable slot i ⇒ delay i.
        for i in 1..=5u32 {
            assert_eq!(r.qos.node(NodeId(i)).unwrap().playback_delay, i as u64);
            // In-order arrival: packet j+1 received while j plays ⇒ 2.
            assert_eq!(r.qos.node(NodeId(i)).unwrap().max_buffer, 2);
        }
        assert_eq!(r.qos.max_delay(), 5);
        assert_eq!(r.duplicate_deliveries, 0);
    }

    #[test]
    fn chain_neighbors_are_two_interior() {
        let mut s = Chain { n: 4 };
        let r = Simulator::run(&mut s, &SimConfig::until_complete(6, 100)).unwrap();
        assert_eq!(r.qos.node(NodeId(1)).unwrap().neighbors, 2); // S and 2
        assert_eq!(r.qos.node(NodeId(2)).unwrap().neighbors, 2); // 1 and 3
        assert_eq!(r.qos.node(NodeId(4)).unwrap().neighbors, 1); // 3 only
    }

    #[test]
    fn early_stop_trims_slots() {
        let mut s = Chain { n: 3 };
        let r = Simulator::run(&mut s, &SimConfig::until_complete(2, 1000)).unwrap();
        // Packet 1 reaches node 3 at usable slot 1+3 = 4 ⇒ ≈5 slots, not 1000.
        assert!(r.slots_run < 10, "ran {} slots", r.slots_run);
    }

    struct Violator {
        mode: u8,
    }
    impl Scheme for Violator {
        fn name(&self) -> String {
            "violator".into()
        }
        fn num_receivers(&self) -> usize {
            3
        }
        fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
            if slot.t() > 0 {
                return;
            }
            match self.mode {
                // two sends from a unit-capacity node
                0 => {
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(0)));
                    out.push(Transmission::local(SOURCE, NodeId(2), PacketId(1)));
                }
                // two arrivals at one node in one slot
                1 => {
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(0)));
                }
                // forwarding a packet never received
                2 => {
                    out.push(Transmission::local(NodeId(2), NodeId(3), PacketId(0)));
                }
                _ => unreachable!(),
            }
            if self.mode == 1 {
                out.push(Transmission::local(NodeId(2), NodeId(1), PacketId(1)));
            }
        }
    }

    #[test]
    fn send_capacity_violation_detected() {
        let err = Simulator::run(&mut Violator { mode: 0 }, &SimConfig::until_complete(1, 10))
            .unwrap_err();
        assert!(
            matches!(err, CoreError::SendCapacityExceeded { .. }),
            "{err}"
        );
    }

    #[test]
    fn receive_collision_detected() {
        // mode 1: node 2 forwards packet 1 it does not hold → PacketNotHeld
        // fires first; use a custom scheme where both senders hold packets.
        struct Collide;
        impl Scheme for Collide {
            fn name(&self) -> String {
                "collide".into()
            }
            fn num_receivers(&self) -> usize {
                3
            }
            fn send_capacity(&self, node: NodeId) -> usize {
                if node.is_source() {
                    2
                } else {
                    1
                }
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                if slot.t() == 0 {
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(0)));
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(1)));
                }
            }
        }
        let err = Simulator::run(&mut Collide, &SimConfig::until_complete(1, 10)).unwrap_err();
        assert!(matches!(err, CoreError::ReceiveCollision { .. }), "{err}");
    }

    #[test]
    fn forwarding_unheld_packet_detected() {
        let err = Simulator::run(&mut Violator { mode: 2 }, &SimConfig::until_complete(1, 10))
            .unwrap_err();
        assert!(matches!(err, CoreError::PacketNotHeld { .. }), "{err}");
    }

    #[test]
    fn latency_collision_across_send_slots_detected() {
        // A remote send at t=0 with latency 2 and a local send at t=1 both
        // arrive at node 1 during slot 1.
        struct Lat;
        impl Scheme for Lat {
            fn name(&self) -> String {
                "lat".into()
            }
            fn num_receivers(&self) -> usize {
                2
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                match slot.t() {
                    0 => out.push(Transmission::remote(SOURCE, NodeId(1), PacketId(0), 2)),
                    1 => out.push(Transmission::local(SOURCE, NodeId(1), PacketId(1))),
                    _ => {}
                }
            }
        }
        let err = Simulator::run(&mut Lat, &SimConfig::until_complete(1, 10)).unwrap_err();
        assert!(matches!(err, CoreError::ReceiveCollision { .. }), "{err}");
    }

    #[test]
    fn live_stream_future_packet_rejected() {
        struct Eager;
        impl Scheme for Eager {
            fn name(&self) -> String {
                "eager".into()
            }
            fn num_receivers(&self) -> usize {
                1
            }
            fn availability(&self) -> Availability {
                Availability::Live
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                if slot.t() == 0 {
                    // Packet 5 does not exist yet at slot 0.
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(5)));
                }
            }
        }
        let err = Simulator::run(&mut Eager, &SimConfig::until_complete(1, 10)).unwrap_err();
        assert!(matches!(err, CoreError::PacketNotProduced { .. }), "{err}");
    }

    #[test]
    fn hiccup_when_horizon_too_short() {
        let mut s = Chain { n: 5 };
        // Packet 0 reaches node 5 at slot 5; a 3-slot horizon must fail.
        let err = Simulator::run(
            &mut s,
            &SimConfig {
                max_slots: 3,
                track_packets: 1,
                stop_when_complete: false,
                ..SimConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Hiccup { .. }), "{err}");
    }

    #[test]
    fn remote_latency_delays_usability() {
        struct OneRemote;
        impl Scheme for OneRemote {
            fn name(&self) -> String {
                "remote".into()
            }
            fn num_receivers(&self) -> usize {
                1
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                let t = slot.t();
                out.push(Transmission::remote(SOURCE, NodeId(1), PacketId(t), 7));
            }
        }
        let r = Simulator::run(&mut OneRemote, &SimConfig::until_complete(3, 100)).unwrap();
        // Packet 0 sent at slot 0 with latency 7 → usable at slot 7.
        assert_eq!(
            r.arrivals.usable_slot(NodeId(1), PacketId(0)),
            Some(Slot(7))
        );
        assert_eq!(r.qos.node(NodeId(1)).unwrap().playback_delay, 7);
    }

    #[test]
    fn trace_records_validated_sends_and_paths() {
        let mut s = Chain { n: 4 };
        let cfg = SimConfig::until_complete(6, 100).traced();
        let r = Simulator::run(&mut s, &cfg).unwrap();
        let trace = r.trace.as_ref().expect("trace requested");
        assert_eq!(trace.events.len() as u64, r.total_transmissions);
        // Packet 0's path to node 4 is S → 1 → 2 → 3 → 4.
        assert_eq!(
            trace.path_to(NodeId(4), PacketId(0)),
            Some(vec![0, 1, 2, 3, 4])
        );
        // Chain node 2 sends once per slot from slot 2 onward.
        assert!(trace.sent_by(NodeId(2)).count() > 0);
        // Untraced run: no trace.
        let mut s = Chain { n: 4 };
        let r = Simulator::run(&mut s, &SimConfig::until_complete(6, 100)).unwrap();
        assert!(r.trace.is_none());
    }

    #[test]
    fn crash_starves_downstream_chain() {
        use crate::faults::FaultPlan;
        // Chain S→1→2→3→4→5; node 2 crashes at slot 6: nodes 3..5 stop
        // receiving anything sent after the crash, while 1 and 2 are
        // unaffected.
        let mut s = Chain { n: 5 };
        let cfg = SimConfig::with_faults(12, 40, FaultPlan::crash(NodeId(2), 6));
        let r = Simulator::run(&mut s, &cfg).unwrap();
        let loss = r.loss.as_ref().unwrap();
        assert!(loss.crash_suppressed > 0);
        let missing = |id: u32| {
            loss.missing
                .iter()
                .find(|(n, _)| n.0 == id)
                .map_or(0, |(_, m)| *m)
        };
        assert_eq!(missing(1), 0);
        assert_eq!(missing(2), 0);
        assert!(missing(3) > 0);
        assert!(missing(4) >= missing(3).saturating_sub(1));
        assert!(missing(5) > 0);
    }

    #[test]
    fn link_loss_propagates_and_is_deterministic() {
        use crate::faults::FaultPlan;
        let run = |seed: u64| {
            let mut s = Chain { n: 6 };
            let cfg = SimConfig::with_faults(24, 60, FaultPlan::loss(0.2, seed));
            Simulator::run(&mut s, &cfg).unwrap()
        };
        let a = run(9);
        let b = run(9);
        let loss_a = a.loss.as_ref().unwrap();
        let loss_b = b.loss.as_ref().unwrap();
        assert_eq!(loss_a, loss_b, "same seed ⇒ identical loss pattern");
        assert!(loss_a.lost_in_flight > 0);
        // A chain never recovers a lost packet: someone misses something.
        assert!(loss_a.total_missing() > 0);

        let c = run(10);
        assert_ne!(
            loss_a,
            c.loss.as_ref().unwrap(),
            "different seed ⇒ different pattern"
        );
    }

    #[test]
    fn zero_loss_fault_plan_changes_nothing() {
        use crate::faults::FaultPlan;
        let mut s = Chain { n: 4 };
        let clean = Simulator::run(&mut s, &SimConfig::until_complete(8, 100)).unwrap();
        let mut s = Chain { n: 4 };
        let cfg = SimConfig::with_faults(8, 100, FaultPlan::loss(0.0, 1));
        let faulty = Simulator::run(&mut s, &cfg).unwrap();
        let loss = faulty.loss.as_ref().unwrap();
        assert_eq!(loss.lost_in_flight, 0);
        assert_eq!(loss.total_missing(), 0);
        for q in &clean.qos.nodes {
            assert_eq!(
                faulty.qos.node(q.node).unwrap().playback_delay,
                q.playback_delay
            );
        }
    }

    #[test]
    fn view_reflects_holdings() {
        struct Probe {
            checked: bool,
        }
        impl Scheme for Probe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn num_receivers(&self) -> usize {
                1
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                view: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                match slot.t() {
                    0 => {
                        assert!(!view.holds(NodeId(1), PacketId(0)));
                        out.push(Transmission::local(SOURCE, NodeId(1), PacketId(0)));
                    }
                    1 => {
                        assert!(view.holds(NodeId(1), PacketId(0)));
                        assert_eq!(view.newest(NodeId(1)), Some(PacketId(0)));
                        assert!(view.holds(SOURCE, PacketId(999)));
                        self.checked = true;
                    }
                    _ => {}
                }
            }
        }
        let mut p = Probe { checked: false };
        // No early stop: the probe needs to observe the slot after delivery.
        let cfg = SimConfig {
            max_slots: 5,
            track_packets: 1,
            stop_when_complete: false,
            ..SimConfig::default()
        };
        let _ = Simulator::run(&mut p, &cfg).unwrap();
        assert!(p.checked);
    }
}
