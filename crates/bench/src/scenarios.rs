//! Flash-crowd & heterogeneity scenario experiments (DESIGN.md §15).
//!
//! Two scenario families stress the paper's delay/buffer story beyond
//! the static populations of its figures:
//!
//! * **Flash crowd** — a [`ScenarioPlan`] join curve grows the forest
//!   online through [`FlashCrowdScheme`] (the appendix add dynamics),
//!   then every node's arrival timeline is scored with the
//!   [`clustream_workloads::qoe`] playback model: interruption
//!   probability, the initial-buffering vs. interruption tradeoff and
//!   the throughput–smoothness frontier, each annotated with the
//!   paper's `h·d` worst-delay bound (Theorem 2) at the *final*
//!   population — the delay budget at which the frontier should flatten.
//! * **Heterogeneity** — the same overlay replayed through the DES with
//!   a [`CapacityClassPlan`] over the serialized uplink gate: fiber /
//!   cable / mobile nodes drawn by seeded zipf, per-class QoE reported
//!   side by side.
//!
//! Both produce serde-serializable reports; `ext_flash_crowd` and
//! `ext_heterogeneity` are the JSON-emitting wrappers, and CI pins a
//! small oracle-closed crowd in the quick tier plus a 10⁵-join crowd on
//! the mega engine in the full tier.

use clustream_analysis::thm2_worst_delay_bound;
use clustream_core::{CoreError, NodeId, PacketId, Scheme};
use clustream_des::{CapacityClassPlan, DesConfig, DesEngine, LatencyModel, UplinkModel};
use clustream_multitree::{Construction, StreamMode};
use clustream_recovery::FlashCrowdScheme;
use clustream_sim::{FastEngine, MegaEngine, RunResult, SimConfig, Simulator};
use clustream_workloads::{
    initial_buffering_frontier, summarize, throughput_smoothness_frontier, NodeTimeline,
    PlayPolicy, QoeSummary, ScenarioPlan,
};
use serde::{Deserialize, Serialize};

/// Per-node arrival timelines for every current member of a finished
/// run. `join_slots[id]` = slot node `id` joined (0 for incumbents);
/// nodes that left (regional failures) are excluded — QoE is a
/// survivors' metric, the departed have no player to stall.
pub fn member_timelines(r: &RunResult, crowd: &FlashCrowdScheme, track: u64) -> Vec<NodeTimeline> {
    let join_slots = crowd.join_slots();
    (1..=crowd.num_receivers() as u64)
        .filter(|&id| crowd.is_member(NodeId(id as u32)))
        .map(|id| NodeTimeline {
            node: id,
            join_slot: join_slots.get(id as usize).copied().unwrap_or(0),
            usable: (0..track)
                .map(|p| {
                    r.arrivals
                        .usable_slot(NodeId(id as u32), PacketId(p))
                        .map(|s| s.t())
                })
                .collect(),
        })
        .collect()
}

/// The delay grid a frontier is swept over: powers of two up to `2·bound`
/// with the bound itself pinned as a grid point, so every frontier table
/// has an exact row at the paper's `h·d` budget.
pub fn delay_grid(bound: u64) -> Vec<u64> {
    let mut grid = vec![0u64];
    let mut v = 1u64;
    while v <= bound.saturating_mul(2) {
        grid.push(v);
        v *= 2;
    }
    grid.push(bound);
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// Machine-readable outcome of one flash-crowd run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlashCrowdReport {
    pub build: String,
    pub engine: String,
    pub n0: usize,
    pub d: usize,
    /// Canonical scenario spec (round-trips through [`ScenarioPlan::parse`]).
    pub scenario: String,
    pub track: u64,
    pub horizon: u64,
    pub joins_applied: u64,
    pub leaves_applied: u64,
    pub final_members: u64,
    pub rebuilds: u64,
    pub total_swaps: usize,
    pub settled_slot: u64,
    /// Theorem 2's `h·d` worst-delay bound at the final population — the
    /// initial-buffering budget that should close the frontier.
    pub bound_h_d: u64,
    /// Measured worst playback delay over the run.
    pub max_delay: u64,
    /// QoE at the paper's bound, both policies.
    pub qoe_wait_at_bound: QoeSummary,
    pub qoe_skip_at_bound: QoeSummary,
    /// Interruption probability vs. initial buffering (Wait policy).
    pub initial_buffering: Vec<QoeSummary>,
    /// Throughput–smoothness frontier (both policies over the grid).
    pub throughput_smoothness: Vec<QoeSummary>,
    pub wall_ms: u64,
}

fn build_label() -> String {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
    .to_string()
}

/// Run one flash-crowd scenario on the named slot engine
/// (`reference`, `fast` or `mega`) in the fault-tolerant regime and
/// score the survivors' QoE.
pub fn run_flash_crowd(
    n0: usize,
    d: usize,
    plan: &ScenarioPlan,
    track: u64,
    horizon: u64,
    engine: &str,
) -> Result<FlashCrowdReport, CoreError> {
    let t0 = std::time::Instant::now();
    let mut crowd =
        FlashCrowdScheme::from_plan(n0, d, StreamMode::PreRecorded, Construction::Greedy, plan)?;
    let cfg = SimConfig::lossy_regime(track, horizon);
    let r = match engine {
        "fast" => FastEngine::new().run(&mut crowd, &cfg)?,
        "mega" => MegaEngine::new().run(&mut crowd, &cfg)?,
        _ => Simulator::run(&mut crowd, &cfg)?,
    };
    let timelines = member_timelines(&r, &crowd, track);
    let final_members = timelines.len() as u64;
    let bound = thm2_worst_delay_bound(final_members as usize, d);
    let grid = delay_grid(bound);
    Ok(FlashCrowdReport {
        build: build_label(),
        engine: engine.to_string(),
        n0,
        d,
        scenario: plan.to_string(),
        track,
        horizon,
        joins_applied: crowd.joins_applied(),
        leaves_applied: crowd.leaves_applied(),
        final_members,
        rebuilds: crowd.rebuilds(),
        total_swaps: crowd.total_swaps(),
        settled_slot: crowd.settled_slot(),
        bound_h_d: bound,
        max_delay: r.qos.max_delay(),
        qoe_wait_at_bound: summarize(&timelines, PlayPolicy::Wait, bound),
        qoe_skip_at_bound: summarize(&timelines, PlayPolicy::Skip, bound),
        initial_buffering: initial_buffering_frontier(&timelines, &grid),
        throughput_smoothness: throughput_smoothness_frontier(&timelines, &grid),
        wall_ms: t0.elapsed().as_millis() as u64,
    })
}

/// Per-class slice of a heterogeneity run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassQoe {
    pub class: String,
    pub capacity: usize,
    pub nodes: u64,
    /// QoE for this class's nodes at the paper's `h·d` delay budget
    /// (Wait policy).
    pub qoe_wait_at_bound: QoeSummary,
}

/// Machine-readable outcome of one heterogeneity run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeterogeneityReport {
    pub build: String,
    pub n0: usize,
    pub d: usize,
    /// Canonical class spec (round-trips through
    /// [`CapacityClassPlan::parse`]).
    pub classes: String,
    pub zipf_exponent: f64,
    pub seed: u64,
    /// Uniform latency-jitter width in slots (`0.0` = fixed wire times).
    pub jitter: f64,
    /// Scenario layered on top (regional failures / joins); empty = none.
    pub scenario: String,
    pub track: u64,
    pub horizon: u64,
    pub bound_h_d: u64,
    pub max_delay: u64,
    pub per_class: Vec<ClassQoe>,
    /// Whole-population throughput–smoothness frontier.
    pub throughput_smoothness: Vec<QoeSummary>,
    pub wall_ms: u64,
}

/// Run one heterogeneity scenario through the DES: the overlay under a
/// serialized uplink whose per-node credit is drawn from `classes`,
/// optionally layered with a [`ScenarioPlan`] (regional failures, late
/// joins). Reports per-class QoE side by side.
///
/// `jitter` is the [`LatencyModel::UniformJitter`] width in slots
/// (`0.0` = fixed wire times). It is what makes class capacity *bite*:
/// under fixed latency every forwarder's demand is exactly one send per
/// slot, which even a mobile uplink absorbs on time. Jitter bunches a
/// delayed send against the next slot's, and a burst of two is where a
/// capacity-4 fiber uplink shrugs and a capacity-1 mobile uplink queues —
/// the queueing cascades down the mobile node's subtree.
#[allow(clippy::too_many_arguments)]
pub fn run_heterogeneity(
    n0: usize,
    d: usize,
    classes: &CapacityClassPlan,
    plan: &ScenarioPlan,
    track: u64,
    horizon: u64,
    jitter: f64,
    latency_seed: u64,
) -> Result<HeterogeneityReport, CoreError> {
    let t0 = std::time::Instant::now();
    let mut crowd =
        FlashCrowdScheme::from_plan(n0, d, StreamMode::PreRecorded, Construction::Greedy, plan)?;
    let mut cfg = DesConfig::slot_faithful(SimConfig::lossy_regime(track, horizon))
        .with_uplink(UplinkModel::Serialized)
        .with_capacity_classes(classes.clone())
        .seeded(latency_seed);
    if jitter > 0.0 {
        cfg = cfg.with_latency(LatencyModel::UniformJitter { jitter });
    }
    cfg.validate().map_err(CoreError::InvalidConfig)?;
    let n_ids = crowd.num_receivers() + 1;
    let r = DesEngine::new().run(&mut crowd, &cfg)?;
    let timelines = member_timelines(&r, &crowd, track);
    let final_members = timelines.len();
    let bound = thm2_worst_delay_bound(final_members, d);
    let grid = delay_grid(bound);

    // Slice the population by assigned class. The assignment is the
    // same seeded draw the engine used (same plan, same id space).
    let assigned = classes.assign_classes(n_ids);
    let per_class = classes
        .classes
        .iter()
        .enumerate()
        .map(|(k, c)| {
            let slice: Vec<NodeTimeline> = timelines
                .iter()
                .filter(|tl| assigned[tl.node as usize] == k)
                .cloned()
                .collect();
            ClassQoe {
                class: c.name.clone(),
                capacity: c.capacity,
                nodes: slice.len() as u64,
                qoe_wait_at_bound: summarize(&slice, PlayPolicy::Wait, bound),
            }
        })
        .collect();

    Ok(HeterogeneityReport {
        build: build_label(),
        n0,
        d,
        classes: classes.to_string(),
        zipf_exponent: classes.zipf_exponent,
        seed: classes.seed,
        jitter,
        scenario: plan.to_string(),
        track,
        horizon,
        bound_h_d: bound,
        max_delay: r.qos.max_delay(),
        per_class,
        throughput_smoothness: throughput_smoothness_frontier(&timelines, &grid),
        wall_ms: t0.elapsed().as_millis() as u64,
    })
}

/// Oracle closure for a crowd plan: the slot world (fast engine) and the
/// DES must agree bit for bit on the replay. Returns the divergence
/// description on failure — `ext_flash_crowd --oracle` turns it into a
/// nonzero exit, which is the CI quick-tier gate.
pub fn flash_crowd_oracle(
    n0: usize,
    d: usize,
    plan: &ScenarioPlan,
    track: u64,
    horizon: u64,
) -> Result<(), String> {
    let factory = || -> Box<dyn Scheme> {
        Box::new(
            FlashCrowdScheme::from_plan(n0, d, StreamMode::PreRecorded, Construction::Greedy, plan)
                .expect("plan validated by the caller"),
        )
    };
    let cfg = SimConfig::lossy_regime(track, horizon);
    match clustream_des::DesOracle::check(factory, &cfg) {
        Ok(_) | Err(None) => Ok(()),
        Err(Some(d)) => Err(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_report_round_trips_through_json() {
        let plan = ScenarioPlan::parse("step:20@4").unwrap();
        let rep = run_flash_crowd(10, 2, &plan, 16, 400, "fast").unwrap();
        assert_eq!(rep.joins_applied, 20);
        assert_eq!(rep.final_members, 30);
        assert_eq!(rep.scenario, "step:20@4");
        // The frontier sweeps the Wait policy and pins the h·d bound as
        // a grid point.
        assert!(rep
            .initial_buffering
            .iter()
            .any(|p| p.initial_delay == rep.bound_h_d));
        let json = serde_json::to_string(&rep).unwrap();
        let back: FlashCrowdReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.final_members, rep.final_members);
        assert_eq!(back.qoe_wait_at_bound, rep.qoe_wait_at_bound);
        assert_eq!(
            back.throughput_smoothness.len(),
            rep.throughput_smoothness.len()
        );
    }

    #[test]
    fn engines_agree_on_the_crowd_report() {
        let plan = ScenarioPlan::parse("ramp:30@2+8").unwrap();
        let fast = run_flash_crowd(8, 3, &plan, 12, 300, "fast").unwrap();
        let mega = run_flash_crowd(8, 3, &plan, 12, 300, "mega").unwrap();
        assert_eq!(fast.max_delay, mega.max_delay);
        assert_eq!(fast.qoe_wait_at_bound, mega.qoe_wait_at_bound);
        assert_eq!(fast.initial_buffering, mega.initial_buffering);
    }

    #[test]
    fn heterogeneity_report_round_trips_through_json() {
        let classes = CapacityClassPlan::parse("fiber,cable,mobile")
            .unwrap()
            .seeded(3);
        let rep =
            run_heterogeneity(40, 2, &classes, &ScenarioPlan::default(), 16, 600, 0.75, 1).unwrap();
        assert_eq!(rep.classes, "fiber:4,cable:2,mobile:1");
        assert_eq!(rep.per_class.len(), 3);
        assert_eq!(
            rep.per_class.iter().map(|c| c.nodes).sum::<u64>(),
            40,
            "every member lands in exactly one class"
        );
        let json = serde_json::to_string(&rep).unwrap();
        let back: HeterogeneityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.per_class.len(), rep.per_class.len());
        assert_eq!(back.max_delay, rep.max_delay);
    }

    #[test]
    fn small_crowd_is_oracle_closed() {
        let plan = ScenarioPlan::parse("spikes:12@2+3=2").unwrap();
        flash_crowd_oracle(6, 2, &plan, 12, 300).unwrap();
    }

    #[test]
    fn delay_grid_pins_the_bound() {
        let g = delay_grid(6);
        assert!(g.contains(&0) && g.contains(&6) && g.contains(&8));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }
}
