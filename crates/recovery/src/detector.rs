//! Per-link silence detection with a watcher-count suspicion threshold.
//!
//! Every delivery `from → to` refreshes the link's last-heard time; the
//! receiver (`to`, the *watcher*) arms a timeout for `from` (the
//! *subject*). If the link stays silent past the timeout the watcher
//! suspects the subject; once enough **distinct** watchers suspect the
//! same subject, the failure is confirmed. Timeouts are lazily re-armed
//! (one outstanding timer per link), so the detector adds O(live links)
//! events, not O(deliveries).
//!
//! All state lives in `BTreeMap`/`BTreeSet`, keeping iteration — and
//! therefore the DES — deterministic.

use std::collections::{BTreeMap, BTreeSet};

/// What a watcher should do when a link timeout fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutVerdict {
    /// The link was reset (repair committed, subject already confirmed,
    /// or the watcher stopped caring): drop the timer.
    Drop,
    /// The link delivered since the timer was armed: re-arm at this tick.
    Rearm(u64),
    /// The link has been silent past the timeout: suspect the subject.
    Suspect,
}

/// The failure detector: link freshness plus suspicion tallies.
#[derive(Debug, Default, Clone)]
pub struct FailureDetector {
    /// Last delivery tick per (watcher, subject) link.
    last_heard: BTreeMap<(u32, u32), u64>,
    /// Distinct watchers currently suspecting each subject.
    suspicions: BTreeMap<u32, BTreeSet<u32>>,
    /// Subjects whose failure has been confirmed.
    confirmed: BTreeSet<u32>,
    /// Distinct watchers needed to confirm.
    threshold: usize,
    /// Link silence horizon in ticks.
    timeout: u64,
}

impl FailureDetector {
    /// A detector confirming a failure after `threshold` distinct
    /// watchers each observe `timeout` ticks of silence.
    pub fn new(threshold: usize, timeout: u64) -> Self {
        FailureDetector {
            threshold: threshold.max(1),
            timeout,
            ..FailureDetector::default()
        }
    }

    /// The configured link timeout in ticks.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Record a delivery on the link `subject → watcher` at `now`.
    /// Returns `true` if the link is newly watched — the caller must then
    /// schedule the link's first timeout at `now + timeout` (afterwards
    /// the timer re-arms itself via [`FailureDetector::check`]).
    pub fn record(&mut self, watcher: u32, subject: u32, now: u64) -> bool {
        // A heard-from subject is clearly not (or no longer) failed.
        if let Some(s) = self.suspicions.get_mut(&subject) {
            s.remove(&watcher);
        }
        self.last_heard.insert((watcher, subject), now).is_none()
    }

    /// Evaluate the link timeout for `watcher` on `subject` firing at
    /// `now`.
    pub fn check(&mut self, watcher: u32, subject: u32, now: u64) -> TimeoutVerdict {
        if self.confirmed.contains(&subject) {
            return TimeoutVerdict::Drop;
        }
        let Some(&last) = self.last_heard.get(&(watcher, subject)) else {
            // Link forgotten (topology changed under us): timer dies.
            return TimeoutVerdict::Drop;
        };
        let deadline = last + self.timeout;
        if deadline > now {
            TimeoutVerdict::Rearm(deadline)
        } else {
            self.suspicions.entry(subject).or_default().insert(watcher);
            TimeoutVerdict::Suspect
        }
    }

    /// Record an externally reported suspicion — the networked path,
    /// where a remote watcher raises the suspicion over a control link
    /// instead of a local timeout event. Suspicions against an
    /// already-confirmed subject are dropped, like
    /// [`FailureDetector::check`] drops their timers.
    pub fn suspect(&mut self, watcher: u32, subject: u32) {
        if self.confirmed.contains(&subject) {
            return;
        }
        self.suspicions.entry(subject).or_default().insert(watcher);
    }

    /// Distinct watchers currently suspecting `subject`.
    pub fn suspicion_count(&self, subject: u32) -> usize {
        self.suspicions.get(&subject).map_or(0, |s| s.len())
    }

    /// Whether `subject` has accumulated enough distinct suspecting
    /// watchers to confirm its failure. Idempotent: the first `true`
    /// marks the subject confirmed, later calls keep returning `false`
    /// (the failure is only confirmed once).
    pub fn confirm(&mut self, subject: u32) -> bool {
        if self.confirmed.contains(&subject) {
            return false;
        }
        let n = self.suspicions.get(&subject).map_or(0, |s| s.len());
        if n >= self.threshold {
            self.confirmed.insert(subject);
            true
        } else {
            false
        }
    }

    /// Whether `subject`'s failure has been confirmed.
    pub fn is_confirmed(&self, subject: u32) -> bool {
        self.confirmed.contains(&subject)
    }

    /// Forget all link state (but keep confirmations): called after a
    /// repair commits, because the rebuilt schedule rewires who hears
    /// from whom and stale silence must not confirm healthy nodes.
    /// Outstanding timers then resolve to [`TimeoutVerdict::Drop`].
    pub fn clear_links(&mut self) {
        self.last_heard.clear();
        self.suspicions.clear();
    }

    /// Forget a confirmation (the node rejoined).
    pub fn forget(&mut self, subject: u32) {
        self.confirmed.remove(&subject);
        self.suspicions.remove(&subject);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_record_arms_later_records_do_not() {
        let mut d = FailureDetector::new(2, 100);
        assert!(d.record(1, 2, 10));
        assert!(!d.record(1, 2, 20));
        assert!(d.record(3, 2, 20), "a different watcher is a new link");
    }

    #[test]
    fn timeout_rearm_then_suspect_then_confirm() {
        let mut d = FailureDetector::new(2, 100);
        d.record(1, 9, 10);
        d.record(2, 9, 15);
        // Fresh delivery at 90 moves the deadline.
        d.record(1, 9, 90);
        assert_eq!(d.check(1, 9, 110), TimeoutVerdict::Rearm(190));
        // Silence past the deadline: suspect.
        assert_eq!(d.check(1, 9, 190), TimeoutVerdict::Suspect);
        assert!(!d.confirm(9), "one watcher below threshold 2");
        assert_eq!(d.check(2, 9, 190), TimeoutVerdict::Suspect);
        assert!(d.confirm(9));
        assert!(d.is_confirmed(9));
        assert!(!d.confirm(9), "confirmation fires exactly once");
        // Timers for a confirmed subject die.
        assert_eq!(d.check(1, 9, 500), TimeoutVerdict::Drop);
    }

    #[test]
    fn remote_suspicions_tally_like_local_timeouts() {
        let mut d = FailureDetector::new(2, 100);
        d.suspect(1, 9);
        assert_eq!(d.suspicion_count(9), 1);
        assert!(!d.confirm(9));
        d.suspect(1, 9); // same watcher again: still one distinct voice
        assert_eq!(d.suspicion_count(9), 1);
        d.suspect(4, 9);
        assert!(d.confirm(9));
        // Post-confirmation reports are dropped, not re-tallied.
        d.suspect(5, 9);
        assert_eq!(d.suspicion_count(9), 2);
        // A delivery withdraws a remote suspicion like a local one.
        let mut d = FailureDetector::new(2, 100);
        d.suspect(1, 3);
        d.record(1, 3, 50);
        assert_eq!(d.suspicion_count(3), 0);
    }

    #[test]
    fn fresh_delivery_withdraws_suspicion() {
        let mut d = FailureDetector::new(1, 100);
        d.record(1, 5, 0);
        assert_eq!(d.check(1, 5, 100), TimeoutVerdict::Suspect);
        // The subject speaks again before confirmation: suspicion cleared.
        d.record(1, 5, 150);
        assert!(!d.confirm(5));
    }

    #[test]
    fn clear_links_drops_timers_but_keeps_confirmations() {
        let mut d = FailureDetector::new(1, 50);
        d.record(1, 7, 0);
        assert_eq!(d.check(1, 7, 60), TimeoutVerdict::Suspect);
        assert!(d.confirm(7));
        d.record(2, 8, 0);
        d.clear_links();
        assert_eq!(d.check(2, 8, 100), TimeoutVerdict::Drop);
        assert!(d.is_confirmed(7));
        d.forget(7);
        assert!(!d.is_confirmed(7));
    }
}
