//! Flash-crowd scenario differential suite: a [`ScenarioPlan`] compiled
//! to scripted churn and replayed through [`FlashCrowdScheme`] must
//! produce **bit-identical** results on every engine — reference, fast,
//! mega (via [`DiffHarness`]) and the DES in slot-faithful mode (via
//! [`DesOracle`]). The scheme applies its scripted joins and regional
//! failures at the top of each `transmissions(slot)` call, which every
//! engine invokes exactly once per slot in order, so growth mid-run is
//! engine-invisible by construction; this suite enforces that argument
//! over arbitrary join curves (step, ramp, spike trains) and failure
//! regions.
//!
//! Runs use the fault-tolerant regime ([`SimConfig::lossy_regime`]):
//! late joiners necessarily miss the head of the window, which must be
//! *reported* (loss accounting), not fatal — on every engine alike.
//!
//! Named regressions at the bottom pin the two shapes that stress the
//! dynamics hardest: a join wave landing at slot 0 (growth before the
//! first transmission is ever scheduled) and a burst much larger than
//! the current forest (repeated `+d` grows plus full relabelling in one
//! eventful slot).

use clustream::prelude::*;
use proptest::prelude::*;

/// Assertion-friendly wrapper: `None` = reference, fast and mega agree.
fn divergence(factory: impl FnMut() -> Box<dyn Scheme>, cfg: &SimConfig) -> Option<String> {
    match DiffHarness::check(factory, cfg) {
        Ok(_) | Err(None) => None,
        Err(Some(d)) => Some(d),
    }
}

/// Assertion-friendly wrapper: `None` = fast slot engine ≡ DES.
fn des_divergence(factory: impl FnMut() -> Box<dyn Scheme>, cfg: &SimConfig) -> Option<String> {
    match DesOracle::check(factory, cfg) {
        Ok(_) | Err(None) => None,
        Err(Some(d)) => Some(d),
    }
}

/// Build one sampled join curve from raw draws (the proptest shim has no
/// `prop_oneof`, so variants are selected by integer tag).
fn build_curve(kind: u32, joins: u64, start: u64, span: u64, count: u64) -> JoinCurve {
    match kind % 3 {
        0 => JoinCurve::Step { joins, at: start },
        1 => JoinCurve::Ramp {
            joins,
            start,
            duration: span,
        },
        _ => JoinCurve::SpikeTrain {
            joins,
            start,
            period: span,
            count,
        },
    }
}

fn crowd_factory(n0: usize, d: usize, plan: ScenarioPlan) -> impl FnMut() -> Box<dyn Scheme> {
    move || {
        Box::new(
            FlashCrowdScheme::from_plan(
                n0,
                d,
                StreamMode::PreRecorded,
                Construction::Greedy,
                &plan,
            )
            .expect("sampled plans are well-formed"),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reference, fast and mega engines agree bit for bit on arbitrary
    /// flash-crowd replays, and the slot world agrees with the DES.
    #[test]
    fn flash_crowd_replays_are_engine_agnostic(
        geometry in (4usize..12, 2usize..4, any::<bool>()),
        shape in ((0u32..3, 1u64..16), (0u64..10, 1u64..6, 1u64..4)),
    ) {
        let (n0, d, with_fail) = geometry;
        let ((kind, joins), (start, span, count)) = shape;
        let mut plan = ScenarioPlan {
            curves: vec![build_curve(kind, joins, start, span, count)],
            failures: vec![],
        };
        if with_fail {
            // A small region of initial members (node 0 is the source,
            // so regions start at 1), failing mid-curve.
            let lo = 1 + (start % (n0 as u64 - 1));
            let hi = (lo + 1).min(n0 as u64);
            plan.failures.push(RegionalFailure { lo, hi, at: start + 2 });
        }
        let cfg = SimConfig::lossy_regime(12, 400);

        let div = divergence(crowd_factory(n0, d, plan.clone()), &cfg);
        prop_assert!(div.is_none(), "slot engines diverge: {}", div.unwrap());

        let div = des_divergence(crowd_factory(n0, d, plan), &cfg);
        prop_assert!(div.is_none(), "slot vs DES diverge: {}", div.unwrap());
    }

    /// The compiled trace is deterministic: compiling and resolving the
    /// same plan twice yields schemes that replay identically (the
    /// factory contract [`DiffHarness`] and [`DesOracle`] rely on).
    #[test]
    fn compiled_plans_are_deterministic(
        n0 in 4usize..10,
        joins in 1u64..12,
        at in 0u64..8,
    ) {
        let plan = ScenarioPlan::parse(&format!("step:{joins}@{at}")).unwrap();
        let a = plan.compile(n0);
        let b = plan.compile(n0);
        let initial: Vec<u64> = (1..=n0 as u64).collect();
        prop_assert_eq!(a.resolve(&initial, &[]), b.resolve(&initial, &[]));
    }
}

/// Joins scripted for slot 0 must apply before the very first
/// transmission is scheduled — on every engine. The joiners were present
/// from the start, so this run is *not* lossy: everyone gets everything,
/// and the strict (fault-free) regime must close cleanly too.
#[test]
fn join_at_slot_0_is_engine_agnostic() {
    let plan = ScenarioPlan::parse("step:6@0").unwrap();
    let cfg = SimConfig::until_complete(16, 10_000);

    let div = divergence(crowd_factory(5, 2, plan.clone()), &cfg);
    assert!(div.is_none(), "slot engines diverge: {}", div.unwrap());

    let r = DesOracle::check(crowd_factory(5, 2, plan), &cfg).expect("oracle-closed");
    // All 11 receivers (5 incumbents + 6 slot-0 joiners) hold the window.
    for id in 1..=11u32 {
        for p in 0..16u64 {
            assert!(
                r.arrivals.usable_slot(NodeId(id), p.into()).is_some(),
                "node {id} missing packet {p}"
            );
        }
    }
}

/// A join burst an order of magnitude larger than the current forest:
/// n₀ = 4 receivers absorb 100 joins in one eventful slot, forcing
/// repeated `+d` grows and a full snapshot relabel. Must stay
/// oracle-closed (slot ≡ DES) and agree across the slot engines.
#[test]
fn join_burst_larger_than_forest_is_engine_agnostic() {
    let plan = ScenarioPlan::parse("step:100@3").unwrap();
    let cfg = SimConfig::lossy_regime(16, 600);

    let div = divergence(crowd_factory(4, 3, plan.clone()), &cfg);
    assert!(div.is_none(), "slot engines diverge: {}", div.unwrap());

    let r = DesOracle::check(crowd_factory(4, 3, plan.clone()), &cfg).expect("oracle-closed");
    // Every joiner eventually receives the tail of the tracked window.
    let mut crowd =
        FlashCrowdScheme::from_plan(4, 3, StreamMode::PreRecorded, Construction::Greedy, &plan)
            .unwrap();
    let _ = Simulator::run(&mut crowd, &cfg).unwrap();
    assert_eq!(crowd.joins_applied(), 100);
    for id in 5..=104u32 {
        assert!(
            r.arrivals.usable_slot(NodeId(id), 15.into()).is_some(),
            "joiner {id} missing packet 15"
        );
    }
    crowd.forest().validate().unwrap();
}

/// Regional failures layered on a join wave stay engine-agnostic: the
/// membership set shrinks mid-run and the survivors' replay must still
/// be bit-identical everywhere.
#[test]
fn crowd_with_regional_failure_is_engine_agnostic() {
    let plan = ScenarioPlan::parse("ramp:12@2+6,fail:2-4@10").unwrap();
    let cfg = SimConfig::lossy_regime(12, 400);

    let div = divergence(crowd_factory(8, 2, plan.clone()), &cfg);
    assert!(div.is_none(), "slot engines diverge: {}", div.unwrap());
    let div = des_divergence(crowd_factory(8, 2, plan), &cfg);
    assert!(div.is_none(), "slot vs DES diverge: {}", div.unwrap());
}
