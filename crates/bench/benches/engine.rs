//! Criterion benchmarks of the slot engine itself: validated simulation
//! throughput per scheme, closed-form profiling at scale, and the cost of
//! tracing/fault machinery.

use clustream_bench::simulate;
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{greedy_forest, DelayProfile, MultiTreeScheme, StreamMode};
use clustream_sim::{FaultPlan, SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);

    g.bench_function("multitree_n2000_d3_track48", |b| {
        b.iter(|| {
            let mut s =
                MultiTreeScheme::new(greedy_forest(2000, 3).unwrap(), StreamMode::PreRecorded);
            simulate(&mut s, 48).total_transmissions
        })
    });

    g.bench_function("hypercube_n2000_track64", |b| {
        b.iter(|| {
            let mut s = HypercubeStream::new(2000).unwrap();
            simulate(&mut s, 64).total_transmissions
        })
    });

    g.bench_function("multitree_n2000_traced", |b| {
        b.iter(|| {
            let mut s =
                MultiTreeScheme::new(greedy_forest(2000, 3).unwrap(), StreamMode::PreRecorded);
            let cfg = SimConfig::until_complete(48, 1_000_000).traced();
            Simulator::run(&mut s, &cfg).unwrap().total_transmissions
        })
    });

    g.bench_function("multitree_n500_lossy", |b| {
        b.iter(|| {
            let mut s =
                MultiTreeScheme::new(greedy_forest(500, 3).unwrap(), StreamMode::PreRecorded);
            let cfg = SimConfig::with_faults(48, 400, FaultPlan::loss(0.01, 7));
            Simulator::run(&mut s, &cfg).unwrap().total_transmissions
        })
    });
    g.finish();

    let mut g = c.benchmark_group("closed_form_profile");
    g.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        g.bench_function(format!("delay_profile_d3_n{n}"), |b| {
            b.iter(|| {
                let s = MultiTreeScheme::new(greedy_forest(n, 3).unwrap(), StreamMode::PreRecorded);
                DelayProfile::compute(&s).unwrap().max_delay()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
