//! Differential-testing suite: the fast and mega engines must produce
//! results **bit-identical** to the reference engine for every scheme
//! family — multi-tree forests (both constructions), chained hypercubes
//! (special and arbitrary `N`, grouped splits), the baselines, and
//! composed multi-cluster overlay sessions — across arbitrary
//! populations, degrees, inter-cluster latencies, traces and fault
//! plans. The mega engine's in-run sharding is additionally held to
//! `--shards 1 ≡ --shards k` bit-determinism at every shard count.
//!
//! The oracle is [`DiffHarness::check`]: it runs one fresh scheme
//! instance per engine and compares the [`RunResult`]s field by field
//! (arrivals, QoS, traffic stats, loss reports, traces). Two engines
//! failing with identically-rendered errors also count as agreement.
//!
//! Shapes that once needed special care in the fast engine are pinned
//! as named regression tests at the bottom (ring-buffer growth under
//! large latencies, loss_rate = 1.0, crashes from slot 0, single-node
//! populations).

use clustream::prelude::*;
use clustream::sim::FaultPlan;
use proptest::prelude::*;

/// Assertion-friendly wrapper: `None` = engines agree.
fn divergence(factory: impl FnMut() -> Box<dyn Scheme>, cfg: &SimConfig) -> Option<String> {
    match DiffHarness::check(factory, cfg) {
        Ok(_) | Err(None) => None,
        Err(Some(d)) => Some(d),
    }
}

/// Build the fault plan for a sampled case. `crash_sel` picks none /
/// a source-adjacent node from slot 0 / a mid-population node later.
fn fault_plan(n: usize, loss_permille: u32, seed: u64, crash_sel: usize) -> FaultPlan {
    let mut plan = FaultPlan::loss(loss_permille as f64 / 1000.0, seed);
    match crash_sel {
        1 => plan.crashes.push((NodeId(1), 0)),
        2 => plan.crashes.push((NodeId((n / 2).max(1) as u32), 6)),
        _ => {}
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Multi-tree forests, both constructions, clean and traced runs.
    #[test]
    fn multitree_engines_agree(
        n in 1usize..120,
        d in 1usize..6,
        structured in any::<bool>(),
        traced in any::<bool>(),
    ) {
        let c = if structured { Construction::Structured } else { Construction::Greedy };
        let mut cfg = SimConfig::until_complete(24, 100_000);
        if traced { cfg = cfg.traced(); }
        let div = divergence(
            || Box::new(MultiTreeScheme::new(build_forest(n, d, c).unwrap(), StreamMode::PreRecorded)),
            &cfg,
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Multi-tree forests under arbitrary loss and crash plans.
    #[test]
    fn multitree_fault_engines_agree(
        n in 2usize..80,
        d in 1usize..5,
        loss_permille in 0u32..400,
        seed in any::<u64>(),
        crash_sel in 0usize..3,
    ) {
        let plan = fault_plan(n, loss_permille, seed, crash_sel);
        let cfg = SimConfig::with_faults(16, 400, plan).traced();
        let div = divergence(
            || Box::new(MultiTreeScheme::new(greedy_forest(n, d).unwrap(), StreamMode::PreRecorded)),
            &cfg,
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Hypercubes: special sizes, arbitrary sizes, grouped splits.
    #[test]
    fn hypercube_engines_agree(
        n in 1usize..200,
        groups in 1usize..5,
        traced in any::<bool>(),
    ) {
        let groups = groups.min(n);
        let mut cfg = SimConfig::until_complete(24, 100_000);
        if traced { cfg = cfg.traced(); }
        let div = divergence(
            || Box::new(HypercubeStream::with_groups(n, groups).unwrap()),
            &cfg,
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Hypercubes under loss and crashes.
    #[test]
    fn hypercube_fault_engines_agree(
        n in 2usize..120,
        loss_permille in 0u32..400,
        seed in any::<u64>(),
        crash_sel in 0usize..3,
    ) {
        let plan = fault_plan(n, loss_permille, seed, crash_sel);
        let cfg = SimConfig::with_faults(16, 400, plan);
        let div = divergence(|| Box::new(HypercubeStream::new(n).unwrap()), &cfg);
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Baselines (chain and elevated-capacity single tree), clean and
    /// lossy.
    #[test]
    fn baseline_engines_agree(
        n in 1usize..60,
        d in 2usize..5,
        single_tree in any::<bool>(),
        loss_permille in 0u32..300,
        seed in any::<u64>(),
    ) {
        let mk = move || -> Box<dyn Scheme> {
            if single_tree {
                Box::new(SingleTreeScheme::new(n, d))
            } else {
                Box::new(ChainScheme::new(n))
            }
        };
        let clean = SimConfig::until_complete(12, 100_000);
        let div = divergence(mk, &clean);
        prop_assert!(div.is_none(), "clean: {div:?}");
        let lossy = SimConfig::with_faults(
            12,
            300,
            FaultPlan::loss(loss_permille as f64 / 1000.0, seed),
        );
        let div = divergence(mk, &lossy);
        prop_assert!(div.is_none(), "lossy: {div:?}");
    }

    /// Composed multi-cluster sessions: remote latencies exercise the
    /// fast engine's ring-buffer arrival queue across send slots.
    #[test]
    fn overlay_session_engines_agree(
        k in 1usize..4,
        cluster_size in 2usize..10,
        t_c in 2u32..30,
        big_d in 3usize..6,
        d in 1usize..4,
    ) {
        let sizes = vec![cluster_size; k];
        let div = divergence(
            || Box::new(ClusterSession::new(
                &sizes,
                big_d,
                t_c,
                IntraScheme::MultiTree { d, construction: Construction::Greedy },
            ).unwrap()),
            &SimConfig::until_complete(16, 100_000),
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// In-run sharding is pure parallelism: a sharded mega run must be
    /// bit-identical to the sequential (`--shards 1`) run at any shard
    /// count, with or without natural group boundaries.
    #[test]
    fn mega_shard_counts_are_bit_identical(
        n in 2usize..90,
        d in 1usize..5,
        shards in 2usize..6,
        track in 1u64..32,
    ) {
        let cfg = SimConfig::until_complete(track, 100_000);
        let mut a = MultiTreeScheme::new(greedy_forest(n, d).unwrap(), StreamMode::PreRecorded);
        let mut b = MultiTreeScheme::new(greedy_forest(n, d).unwrap(), StreamMode::PreRecorded);
        let seq = MegaSimulator::run_sharded(&mut a, &cfg, 1).unwrap();
        let sh = MegaSimulator::run_sharded(&mut b, &cfg, shards).unwrap();
        let diffs = diff_fields(&seq, &sh);
        prop_assert!(diffs.is_empty(), "shards={shards}: {diffs:?}");
    }

    /// Sharded composed sessions: the declared cluster boundaries give
    /// each shard whole clusters, leaving the super-node exchange as
    /// the only cross-shard coupling — still bit-identical.
    #[test]
    fn mega_sharded_sessions_agree(
        k in 2usize..4,
        cluster_size in 2usize..8,
        t_c in 2u32..20,
        shards in 2usize..5,
    ) {
        let sizes = vec![cluster_size; k];
        let mk = |sizes: &[usize]| ClusterSession::new(
            sizes,
            3,
            t_c,
            IntraScheme::MultiTree { d: 2, construction: Construction::Greedy },
        ).unwrap();
        let cfg = SimConfig::until_complete(12, 100_000);
        let seq = MegaSimulator::run(&mut mk(&sizes), &cfg).unwrap();
        let sh = MegaSimulator::run_sharded(&mut mk(&sizes), &cfg, shards).unwrap();
        let diffs = diff_fields(&seq, &sh);
        prop_assert!(diffs.is_empty(), "k={k} shards={shards}: {diffs:?}");
    }
}

// ---------------------------------------------------------------------
// Named regression shapes: inputs that stress specific fast-engine
// mechanics, pinned so they run on every `cargo test`.

/// Inter-cluster latency far beyond the ring buffer's initial window
/// forces `ArrivalRing::grow` to re-index queued arrivals mid-run.
#[test]
fn regression_ring_growth_under_large_latency() {
    for t_c in [70u32, 150, 400] {
        let sizes = [6usize, 6, 6];
        let div = divergence(
            || {
                Box::new(
                    ClusterSession::new(
                        &sizes,
                        3,
                        t_c,
                        IntraScheme::MultiTree {
                            d: 2,
                            construction: Construction::Greedy,
                        },
                    )
                    .unwrap(),
                )
            },
            &SimConfig::until_complete(12, 100_000),
        );
        assert!(div.is_none(), "t_c={t_c}: {div:?}");
    }
}

/// Total loss: every transmission is dropped, every tracked packet is
/// missing, and both engines report the identical (degenerate) result.
#[test]
fn regression_total_loss_engines_agree() {
    let cfg = SimConfig::with_faults(8, 120, FaultPlan::loss(1.0, 3));
    let div = divergence(
        || {
            Box::new(MultiTreeScheme::new(
                greedy_forest(20, 2).unwrap(),
                StreamMode::PreRecorded,
            ))
        },
        &cfg,
    );
    assert!(div.is_none(), "{div:?}");
}

/// Crash of the source-adjacent node from slot 0: nothing it relays is
/// ever sent, the largest possible crash blast radius.
#[test]
fn regression_crash_at_slot_zero_engines_agree() {
    for n in [7usize, 15, 40] {
        let cfg = SimConfig::with_faults(12, 300, FaultPlan::crash(NodeId(1), 0));
        let div = divergence(|| Box::new(HypercubeStream::new(n).unwrap()), &cfg);
        assert!(div.is_none(), "n={n}: {div:?}");
    }
}

/// Degenerate populations: a single receiver, and a single tracked
/// packet.
#[test]
fn regression_tiny_populations_engines_agree() {
    for (n, track) in [(1usize, 1u64), (1, 8), (2, 1), (3, 0)] {
        let div = divergence(
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, 1).unwrap(),
                    StreamMode::PreRecorded,
                ))
            },
            &SimConfig::until_complete(track, 10_000),
        );
        assert!(div.is_none(), "n={n} track={track}: {div:?}");
    }
}

/// Live-mode multi-trees (the `Availability::Live` source path).
#[test]
fn regression_live_modes_engines_agree() {
    for mode in [StreamMode::LivePrebuffered, StreamMode::LivePipelined] {
        let div = divergence(
            || Box::new(MultiTreeScheme::new(greedy_forest(30, 3).unwrap(), mode)),
            &SimConfig::until_complete(24, 100_000).traced(),
        );
        assert!(div.is_none(), "{mode:?}: {div:?}");
    }
}

/// A packet crossing a shard boundary through the super-node exchange:
/// in a sharded session each cluster is its own shard, so cluster
/// `i > 0`'s head node receives every packet from the *previous*
/// cluster's shard — coordinator work between barrier waits. Pin one
/// such packet end to end: its arrival slot at every cluster head must
/// exist, be strictly later per hop (the `t_c` backbone latency), and
/// agree with the reference engine at every shard count.
#[test]
fn regression_cluster_boundary_packet_across_shard_exchange() {
    let sizes = [5usize, 5, 5];
    let t_c = 9u32;
    let mk = || {
        Box::new(
            ClusterSession::new(
                &sizes,
                3,
                t_c,
                IntraScheme::MultiTree {
                    d: 2,
                    construction: Construction::Greedy,
                },
            )
            .unwrap(),
        )
    };
    let cfg = SimConfig::until_complete(16, 100_000);
    let reference = Simulator::run(mk().as_mut(), &cfg).unwrap();
    for shards in [1usize, 2, 3, 5] {
        let sharded = MegaSimulator::run_sharded(mk().as_mut(), &cfg, shards).unwrap();
        let diffs = diff_fields(&reference, &sharded);
        assert!(diffs.is_empty(), "shards={shards}: {diffs:?}");
        // Heads of clusters 1 and 2 are the first ids past each
        // boundary; packet 0 reaches them only over the exchange.
        let head1 = NodeId(sizes[0] as u32 + 1);
        let head2 = NodeId((sizes[0] + sizes[1]) as u32 + 1);
        let a0 = sharded.arrivals.usable_slot(NodeId(1), PacketId(0));
        let a1 = sharded.arrivals.usable_slot(head1, PacketId(0));
        let a2 = sharded.arrivals.usable_slot(head2, PacketId(0));
        let (a0, a1, a2) = (
            a0.expect("cluster 0 head missing packet 0").t(),
            a1.expect("cluster 1 head missing packet 0").t(),
            a2.expect("cluster 2 head missing packet 0").t(),
        );
        // Any path into a non-first cluster crosses at least one
        // backbone edge of latency t_c, so the packet cannot be usable
        // before slot t_c — and the slots must match the reference
        // engine's cell for cell (the exchange preserved them).
        assert!(
            a1 >= t_c as u64 && a2 >= t_c as u64,
            "shards={shards}: boundary packet skipped the exchange: {a0} {a1} {a2}"
        );
        for (head, got) in [(NodeId(1), a0), (head1, a1), (head2, a2)] {
            let want = reference
                .arrivals
                .usable_slot(head, PacketId(0))
                .unwrap()
                .t();
            assert_eq!(got, want, "shards={shards}: {head} packet 0 slot moved");
        }
    }
}

/// Seeds that drew unusual loss patterns during development, kept as
/// fixed regressions (loss exactly at a collision-heavy slot boundary).
#[test]
fn regression_fixed_fault_seeds_engines_agree() {
    for (n, d, seed, permille) in [
        (33usize, 3usize, 0u64, 100u32),
        (64, 2, u64::MAX, 250),
        (17, 4, 0xDEAD_BEEF, 399),
        (50, 2, 42, 1000),
    ] {
        let plan = FaultPlan::loss(permille as f64 / 1000.0, seed);
        let cfg = SimConfig::with_faults(16, 400, plan).traced();
        let div = divergence(
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, d).unwrap(),
                    StreamMode::PreRecorded,
                ))
            },
            &cfg,
        );
        assert!(div.is_none(), "n={n} d={d} seed={seed}: {div:?}");
    }
}
