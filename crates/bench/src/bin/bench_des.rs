//! Discrete-event runtime benchmark: event throughput on the standard
//! simulation workloads — on both event queues (binary heap and timing
//! wheel) — plus the delay/buffer inflation the relaxed network models
//! introduce over the synchronous slot model.
//!
//! Every `(workload, queue)` cell is first checked field-by-field against
//! the fast slot engine (the correctness anchor), then timed. The jitter
//! table reuses `ext_jitter_sweep`: observed worst playback delay under
//! uniform link jitter vs the Theorem 2 `h·d` bound. A machine-readable
//! summary is written to `BENCH_des.json`.

use clustream_bench::ext_jitter_sweep;
use clustream_bench::render_table;
use clustream_bench::suites::{des_queues, des_workloads, DesReport, ThroughputRow};
use clustream_bench::timing::bench;
use clustream_des::{DesConfig, DesEngine};
use clustream_sim::{diff_fields, FastEngine, SimConfig};

fn main() {
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    if build == "debug" {
        eprintln!("warning: debug build — throughput is not representative");
    }

    let mut fast = FastEngine::new();
    let mut throughput = Vec::new();
    let mut min_wheel_speedup = f64::INFINITY;
    for w in des_workloads() {
        let sim = SimConfig::until_complete(w.track, 1_000_000);
        let reference = fast.run((w.make)().as_mut(), &sim).unwrap();
        let m_fast = bench(&format!("{}_fast", w.name), w.samples, || {
            fast.run((w.make)().as_mut(), &sim).unwrap().slots_run
        });

        let mut heap_min_ns = 0u64;
        for queue in des_queues() {
            let des_cfg = DesConfig::slot_faithful(sim.clone()).with_queue(queue);

            // Correctness first: slot-faithful DES ≡ fast slot engine,
            // whichever queue backs it.
            let mut engine = DesEngine::new();
            let des = engine.run((w.make)().as_mut(), &des_cfg).unwrap();
            let diffs = diff_fields(&reference, &des);
            assert!(
                diffs.is_empty(),
                "{}/{}: DES diverges on {diffs:?}",
                w.name,
                queue.label()
            );
            let events = engine.stats().events_processed;

            let m_des = bench(
                &format!("{}_des_{}", w.name, queue.label()),
                w.samples,
                || engine.run((w.make)().as_mut(), &des_cfg).unwrap().slots_run,
            );

            let des_min_ns = m_des.min().as_nanos() as u64;
            if queue.label() == "heap" {
                heap_min_ns = des_min_ns;
            } else {
                let speedup = heap_min_ns as f64 / des_min_ns as f64;
                min_wheel_speedup = min_wheel_speedup.min(speedup);
                println!("{}: wheel speedup over heap {speedup:.2}x", w.name);
            }
            let des_s = m_des.min().as_secs_f64();
            throughput.push(ThroughputRow {
                workload: w.name.to_string(),
                queue: queue.label().to_string(),
                slots_run: reference.slots_run,
                events,
                samples: w.samples,
                des_min_ns,
                fast_min_ns: m_fast.min().as_nanos() as u64,
                events_per_sec: events as f64 / des_s,
                slowdown_vs_fast: des_s / m_fast.min().as_secs_f64(),
            });
        }
    }

    println!(
        "\n{}",
        render_table(
            &["workload", "queue", "slots", "events", "events/s", "vs fast"],
            &throughput
                .iter()
                .map(|r| {
                    vec![
                        r.workload.clone(),
                        r.queue.clone(),
                        r.slots_run.to_string(),
                        r.events.to_string(),
                        format!("{:.0}", r.events_per_sec),
                        format!("{:.2}x", r.slowdown_vs_fast),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );
    println!("min wheel speedup over heap: {min_wheel_speedup:.2}x");

    // Jitter sweep: how far observed delay drifts past Theorem 2's
    // synchronous-model bound as link jitter grows.
    let jitter_sweep = ext_jitter_sweep(500, 3, &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0], 48, 1);
    assert!(
        (jitter_sweep[0].delay_inflation - 1.0).abs() < f64::EPSILON,
        "jitter=0 must be slot-faithful"
    );
    println!(
        "\n{}",
        render_table(
            &[
                "jitter",
                "max delay",
                "thm2 bound",
                "delay infl",
                "buffer infl"
            ],
            &jitter_sweep
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.2}", r.jitter_slots),
                        r.max_delay.to_string(),
                        r.thm2_bound.to_string(),
                        format!("{:.2}x", r.delay_inflation),
                        format!("{:.2}x", r.buffer_inflation),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );

    let report = DesReport {
        build: build.to_string(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        throughput,
        min_wheel_speedup,
        jitter_sweep,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_des.json", json + "\n").expect("write BENCH_des.json");
    println!("wrote BENCH_des.json");
}
