//! Bench-regression gate: re-run a reduced tier of every committed bench
//! suite and compare against the checked-in baselines.
//!
//! Reads `BENCH_engine.json`, `BENCH_des.json` and `BENCH_recovery.json`
//! from the current directory (the repo root under `ci.sh`), re-runs the
//! same workload definitions (`clustream_bench::suites`) with a reduced
//! sample count, and fails when
//!
//! * a correctness-derived field changes at all — slot counts,
//!   transmission/event counts and every deterministic recovery counter
//!   are compared exactly;
//! * a throughput number falls below `baseline * (1 - tolerance)`
//!   (`--tolerance`, default 0.25). Throughput is a one-sided floor:
//!   running faster than the baseline is never a failure.
//!
//! Wall-clock fields (`wall_ms`, `*_min_ns`) are never compared, and the
//! jitter sweep is validated from the baseline alone (its zero-jitter row
//! must be slot-faithful) rather than re-run. In debug builds the
//! throughput floors are skipped — the baselines are release numbers.
//!
//! `--suite engine|des|recovery|scale|all` selects which suites run;
//! the default is the engine+des+recovery trio. The `scale` suite
//! re-runs the scaling rows of `BENCH_engine.json`: exact fields on
//! every row, plus — on the gated rows — a hard `MIN_MEGA_SPEEDUP`
//! floor on the mega engine's measured speedup over the fast engine.

use clustream_bench::suites::{
    des_queues, des_workloads, engine_workloads, recovery_tiers, recovery_trace_for,
    run_recovery_tier, scale_workloads, DesReport, EngineReport, RecoveryReport, MIN_MEGA_SPEEDUP,
    RECOVERY_RATES,
};
use clustream_bench::timing::{bench, bench_prepared};
use clustream_des::{DesConfig, DesEngine};
use clustream_sim::{diff_fields, FastEngine, MegaEngine, SimConfig, Simulator};
use std::process::ExitCode;

/// Timing samples per workload for the reduced re-run tier.
const REDUCED_SAMPLES: usize = 2;

struct Checker {
    tolerance: f64,
    timing: bool,
    checks: usize,
    failures: Vec<String>,
}

impl Checker {
    fn exact<T: PartialEq + std::fmt::Display>(&mut self, ctx: &str, field: &str, base: T, got: T) {
        self.checks += 1;
        if base != got {
            self.failures.push(format!(
                "{ctx}: {field} changed: baseline {base}, measured {got}"
            ));
        }
    }

    /// Deterministic float fields (ratios of exact counters); a tiny
    /// epsilon absorbs nothing but representation noise.
    fn exact_f64(&mut self, ctx: &str, field: &str, base: f64, got: f64) {
        self.checks += 1;
        if (base - got).abs() > 1e-9 {
            self.failures.push(format!(
                "{ctx}: {field} changed: baseline {base}, measured {got}"
            ));
        }
    }

    /// One-sided throughput floor: measured must reach
    /// `baseline * (1 - tolerance)`.
    fn floor(&mut self, ctx: &str, field: &str, base: f64, got: f64) {
        if !self.timing {
            return;
        }
        self.checks += 1;
        let floor = base * (1.0 - self.tolerance);
        if got < floor {
            self.failures.push(format!(
                "{ctx}: {field} regressed: baseline {base:.0}, floor {floor:.0}, measured {got:.0}"
            ));
        }
    }

    fn fail(&mut self, msg: String) {
        self.checks += 1;
        self.failures.push(msg);
    }
}

fn load<T: serde::Deserialize>(path: &str) -> Result<T, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn check_engine(c: &mut Checker, baseline: &EngineReport) {
    let mut engine = FastEngine::new();
    for w in engine_workloads() {
        let ctx = format!("engine/{}", w.name);
        let Some(base) = baseline.rows.iter().find(|r| r.workload == w.name) else {
            c.fail(format!("{ctx}: no baseline row in BENCH_engine.json"));
            continue;
        };
        let cfg = SimConfig::until_complete(w.track, 1_000_000);
        let reference = Simulator::run((w.make)().as_mut(), &cfg).unwrap();
        let fast = engine.run((w.make)().as_mut(), &cfg).unwrap();
        let diffs = diff_fields(&reference, &fast);
        if !diffs.is_empty() {
            c.fail(format!("{ctx}: engines diverge on {diffs:?}"));
        }
        c.exact(&ctx, "slots_run", base.slots_run, reference.slots_run);
        c.exact(
            &ctx,
            "transmissions",
            base.transmissions,
            reference.total_transmissions,
        );
        if c.timing {
            let m_ref = bench(&format!("{}_reference", w.name), REDUCED_SAMPLES, || {
                Simulator::run((w.make)().as_mut(), &cfg).unwrap().slots_run
            });
            let m_fast = bench(&format!("{}_fast", w.name), REDUCED_SAMPLES, || {
                engine.run((w.make)().as_mut(), &cfg).unwrap().slots_run
            });
            let slots = reference.slots_run as f64;
            c.floor(
                &ctx,
                "reference_slots_per_sec",
                base.reference_slots_per_sec,
                slots / m_ref.min().as_secs_f64(),
            );
            c.floor(
                &ctx,
                "fast_slots_per_sec",
                base.fast_slots_per_sec,
                slots / m_fast.min().as_secs_f64(),
            );
        }
    }
}

fn check_des(c: &mut Checker, baseline: &DesReport) {
    let mut fast = FastEngine::new();
    for w in des_workloads() {
        let sim = SimConfig::until_complete(w.track, 1_000_000);
        let reference = fast.run((w.make)().as_mut(), &sim).unwrap();
        for queue in des_queues() {
            let ctx = format!("des/{}/{}", w.name, queue.label());
            let Some(base) = baseline
                .throughput
                .iter()
                .find(|r| r.workload == w.name && r.queue == queue.label())
            else {
                c.fail(format!("{ctx}: no baseline row in BENCH_des.json"));
                continue;
            };
            let des_cfg = DesConfig::slot_faithful(sim.clone()).with_queue(queue);
            let mut engine = DesEngine::new();
            let des = engine.run((w.make)().as_mut(), &des_cfg).unwrap();
            let diffs = diff_fields(&reference, &des);
            if !diffs.is_empty() {
                c.fail(format!("{ctx}: DES diverges from slot engine on {diffs:?}"));
            }
            let events = engine.stats().events_processed;
            c.exact(&ctx, "slots_run", base.slots_run, reference.slots_run);
            c.exact(&ctx, "events", base.events, events);
            if c.timing {
                let m_des = bench(
                    &format!("{}_des_{}", w.name, queue.label()),
                    REDUCED_SAMPLES,
                    || engine.run((w.make)().as_mut(), &des_cfg).unwrap().slots_run,
                );
                c.floor(
                    &ctx,
                    "events_per_sec",
                    base.events_per_sec,
                    events as f64 / m_des.min().as_secs_f64(),
                );
            }
        }
    }

    // The jitter sweep is expensive and statistical, so it is validated
    // from the committed baseline instead of re-run: the zero-jitter row
    // must exist and must be exactly slot-faithful.
    match baseline.jitter_sweep.first() {
        None => c.fail("des/jitter_sweep: baseline has no rows".to_string()),
        Some(row0) => {
            c.exact_f64(
                "des/jitter_sweep",
                "row0.jitter_slots",
                0.0,
                row0.jitter_slots,
            );
            c.exact_f64(
                "des/jitter_sweep",
                "row0.delay_inflation",
                1.0,
                row0.delay_inflation,
            );
        }
    }
}

fn check_scale(c: &mut Checker, baseline: &EngineReport) {
    for w in scale_workloads() {
        let ctx = format!("scale/{}", w.name);
        let Some(base) = baseline.scaling.iter().find(|r| r.workload == w.name) else {
            c.fail(format!(
                "{ctx}: no baseline scaling row in BENCH_engine.json"
            ));
            continue;
        };
        let cfg = SimConfig::until_complete(w.track, 1_000_000);
        let mega = MegaEngine::new().run((w.make)().as_mut(), &cfg).unwrap();
        c.exact(&ctx, "slots_run", base.slots_run, mega.slots_run);
        c.exact(
            &ctx,
            "transmissions",
            base.transmissions,
            mega.total_transmissions,
        );
        if !w.gate {
            continue;
        }
        // Gated rows additionally cross-check against the fast engine
        // and — in timing builds — hold the mega engine to its speedup
        // floor, engine-only (scheme construction untimed).
        let fast = FastEngine::new().run((w.make)().as_mut(), &cfg).unwrap();
        let diffs = diff_fields(&fast, &mega);
        if !diffs.is_empty() {
            c.fail(format!("{ctx}: fast and mega diverge on {diffs:?}"));
        }
        if c.timing {
            let m_fast = bench_prepared(
                &format!("{}_fast", w.name),
                REDUCED_SAMPLES,
                || (w.make)(),
                |mut s| FastEngine::new().run(s.as_mut(), &cfg).unwrap().slots_run,
            );
            let m_mega = bench_prepared(
                &format!("{}_mega", w.name),
                REDUCED_SAMPLES,
                || (w.make)(),
                |mut s| MegaEngine::new().run(s.as_mut(), &cfg).unwrap().slots_run,
            );
            let speedup = m_fast.min().as_secs_f64() / m_mega.min().as_secs_f64();
            c.checks += 1;
            if speedup < MIN_MEGA_SPEEDUP {
                c.failures.push(format!(
                    "{ctx}: mega_speedup floor missed: required {MIN_MEGA_SPEEDUP:.2}x, \
                     measured {speedup:.2}x"
                ));
            }
            c.floor(
                &ctx,
                "mega_slots_per_sec",
                base.mega_slots_per_sec,
                mega.slots_run as f64 / m_mega.min().as_secs_f64(),
            );
        }
    }
}

fn check_recovery(c: &mut Checker, baseline: &RecoveryReport) {
    for &rate in &RECOVERY_RATES {
        let trace = recovery_trace_for(rate);
        for (mode, rec) in recovery_tiers() {
            let ctx = format!("recovery/{rate}/{mode}");
            let Some(base) = baseline
                .rows
                .iter()
                .find(|r| r.mode == mode && (r.churn_rate - rate).abs() < 1e-12)
            else {
                c.fail(format!("{ctx}: no baseline row in BENCH_recovery.json"));
                continue;
            };
            let got = run_recovery_tier(&trace, rate, mode, rec);
            c.exact(&ctx, "departures", base.departures, got.departures);
            c.exact(
                &ctx,
                "missing_packets",
                base.missing_packets,
                got.missing_packets,
            );
            c.exact(
                &ctx,
                "failures_detected",
                base.failures_detected,
                got.failures_detected,
            );
            c.exact(
                &ctx,
                "repairs_committed",
                base.repairs_committed,
                got.repairs_committed,
            );
            c.exact(
                &ctx,
                "displaced_total",
                base.displaced_total,
                got.displaced_total,
            );
            c.exact(&ctx, "nacks_sent", base.nacks_sent, got.nacks_sent);
            c.exact(
                &ctx,
                "retransmissions",
                base.retransmissions,
                got.retransmissions,
            );
            c.exact(
                &ctx,
                "repaired_packets",
                base.repaired_packets,
                got.repaired_packets,
            );
            c.exact(
                &ctx,
                "abandoned_packets",
                base.abandoned_packets,
                got.abandoned_packets,
            );
            c.exact(
                &ctx,
                "control_messages",
                base.control_messages,
                got.control_messages,
            );
            c.exact_f64(
                &ctx,
                "delivered_fraction",
                base.delivered_fraction,
                got.delivered_fraction,
            );
            c.exact_f64(
                &ctx,
                "control_overhead",
                base.control_overhead,
                got.control_overhead,
            );
            c.exact_f64(
                &ctx,
                "recovery_latency_avg_slots",
                base.recovery_latency_avg_slots,
                got.recovery_latency_avg_slots,
            );
            c.exact_f64(
                &ctx,
                "recovery_latency_max_slots",
                base.recovery_latency_max_slots,
                got.recovery_latency_max_slots,
            );
        }
    }
}

fn main() -> ExitCode {
    let mut tolerance = 0.25_f64;
    let mut suite = "default".to_string();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--tolerance" => {
                let Some(v) = argv.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--tolerance needs a numeric value, e.g. --tolerance 0.25");
                    return ExitCode::from(2);
                };
                tolerance = v;
            }
            "--suite" => {
                let Some(v) = argv.next() else {
                    eprintln!("--suite needs a value: engine, des, recovery, scale or all");
                    return ExitCode::from(2);
                };
                if !["engine", "des", "recovery", "scale", "all"].contains(&v.as_str()) {
                    eprintln!(
                        "unknown suite `{v}`; valid suites: engine, des, recovery, scale, all"
                    );
                    return ExitCode::from(2);
                }
                suite = v;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`; usage: bench_check [--tolerance FRAC] \
                     [--suite engine|des|recovery|scale|all]"
                );
                return ExitCode::from(2);
            }
        }
    }
    // The default set is the pre-scaling trio, so the full CI tier's
    // bench stage cost is unchanged; `scale` runs only when asked for.
    let on =
        |name: &str| suite == name || suite == "all" || (suite == "default" && name != "scale");

    let timing = !cfg!(debug_assertions);
    if !timing {
        eprintln!("warning: debug build — throughput floors skipped, exact checks only");
    }

    let mut c = Checker {
        tolerance,
        timing,
        checks: 0,
        failures: Vec::new(),
    };

    if on("engine") || on("scale") {
        match load::<EngineReport>("BENCH_engine.json") {
            Ok(baseline) => {
                if on("engine") {
                    check_engine(&mut c, &baseline);
                }
                if on("scale") {
                    check_scale(&mut c, &baseline);
                }
            }
            Err(e) => c.fail(e),
        }
    }
    if on("des") {
        match load::<DesReport>("BENCH_des.json") {
            Ok(baseline) => check_des(&mut c, &baseline),
            Err(e) => c.fail(e),
        }
    }
    if on("recovery") {
        match load::<RecoveryReport>("BENCH_recovery.json") {
            Ok(baseline) => check_recovery(&mut c, &baseline),
            Err(e) => c.fail(e),
        }
    }

    if c.failures.is_empty() {
        println!(
            "bench_check: {} checks against committed baselines, no regressions (tolerance {:.0}%)",
            c.checks,
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_check: {} of {} checks FAILED (tolerance {:.0}%):",
            c.failures.len(),
            c.checks,
            tolerance * 100.0
        );
        for f in &c.failures {
            eprintln!("  - {f}");
        }
        eprintln!("(if a throughput floor fails on a slower machine, raise --tolerance;");
        eprintln!(" if a correctness field changed intentionally, regenerate the BENCH_*.json");
        eprintln!(" baselines with the bench_engine / bench_des / bench_recovery binaries)");
        ExitCode::FAILURE
    }
}
