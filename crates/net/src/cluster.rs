//! The cluster orchestrator: spawn `clustream-node` processes, drive the
//! control plane, inject kills, and collect the run trace.
//!
//! One `run_cluster` call is a full experiment: lower the schedule
//! (reference simulator), spawn `n + 1` local processes (node 0 is the
//! source), distribute per-node [`NodeConfig`]s, release the stream with
//! a synchronized `Start`, SIGKILL the scheduled victims at their slot
//! deadlines, tally `Suspect` frames into detection wall-clocks
//! ([`clustream_recovery::FailureDetector`] at the configured watcher
//! threshold), and wait for every expected survivor's `Complete`. Child
//! processes are owned by a [`Reaper`] drop guard, so they are killed
//! and waited even when the orchestrator panics mid-run — `cargo test`
//! must never leak a node process.

use crate::faultspec::{format_chaos_spec, ChaosSpec};
use crate::frame::{read_frame, write_frame, Frame};
use crate::killspec::KillSpec;
use crate::schedule::{
    lower_schedule, lower_scheme_healed, NodeConfig, NodeReport, PeerAddr, ScheduleUpdate,
    SchemeParams,
};
use crate::trace::{KillObs, LinkObs, NodeDeliveries, RunTrace};
use crate::transport::{Conn, NetListener, Transport};
use clustream_core::{MembershipEvent, NodeId, Scheme};
use clustream_multitree::{Construction, StreamMode};
use clustream_recovery::{FailureDetector, SelfHealingMultiTree};
use clustream_telemetry::{names as tm, Telemetry};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::node::sys_ns;

/// Parameters of one orchestrated cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Receiver population (`n` node processes plus the source).
    pub nodes: u64,
    /// Socket family for every link.
    pub transport: Transport,
    /// Scheme to lower; `params.n` must equal `nodes`.
    pub params: SchemeParams,
    /// Tracked window (packets `0..track`).
    pub track: u64,
    /// Wall-clock slot length, microseconds.
    pub slot_micros: u64,
    /// Kill schedule (validated against the lowered horizon).
    pub kills: Vec<KillSpec>,
    /// Distinct watchers that must suspect a node before the
    /// orchestrator calls it detected.
    pub suspect_threshold: u64,
    /// Per-node silence horizon before suspecting, in slots.
    pub suspect_timeout_slots: u64,
    /// Slots past the expected arrival before the first NACK.
    pub gap_slack_slots: u64,
    /// Slots between NACK retries.
    pub nack_retry_slots: u64,
    /// NACK attempts per packet before giving up.
    pub nack_max_attempts: u64,
    /// Path to the `clustream-node` binary.
    pub node_bin: PathBuf,
    /// Extra slots past the lowered horizon the nodes keep running
    /// (repair headroom).
    pub horizon_slack: u64,
    /// Chaos schedule injected into every node's outbound data path
    /// (empty = clean run).
    pub chaos: Vec<ChaosSpec>,
    /// Seed the per-node chaos policies draw their decisions from.
    pub chaos_seed: u64,
    /// Repair confirmed failures live: remove the subject from a
    /// [`SelfHealingMultiTree`], re-lower the healed forest and ship
    /// [`ScheduleUpdate`] frames to every survivor. Multitree only.
    pub repair: bool,
    /// Per-slot retransmit budget handed to every node (0 = unlimited).
    pub retransmit_budget_per_slot: u64,
    /// Slots of headroom between the estimated current slot and the
    /// splice barrier of a shipped schedule update.
    pub splice_margin_slots: u64,
    /// Telemetry sink for aggregated transport counters.
    pub telemetry: Telemetry,
}

impl ClusterOptions {
    /// Defaults for an `n`-receiver multi-tree run with no kills.
    pub fn new(nodes: u64, node_bin: PathBuf) -> ClusterOptions {
        ClusterOptions {
            nodes,
            transport: Transport::Tcp,
            params: SchemeParams {
                family: "multitree".into(),
                n: nodes,
                d: 2,
            },
            track: 24,
            slot_micros: 5_000,
            kills: Vec::new(),
            suspect_threshold: 1,
            suspect_timeout_slots: 8,
            gap_slack_slots: 4,
            nack_retry_slots: 6,
            nack_max_attempts: 12,
            node_bin,
            horizon_slack: 64,
            chaos: Vec::new(),
            chaos_seed: 0,
            repair: false,
            retransmit_budget_per_slot: 64,
            splice_margin_slots: 8,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// What happened to one scheduled kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillOutcome {
    /// The victim.
    pub node: u32,
    /// Requested kill slot.
    pub slot: u64,
    /// Wall clock when the SIGKILL was delivered, UNIX nanoseconds.
    pub kill_ns: u64,
    /// Wall clock when `suspect_threshold` distinct watchers had
    /// suspected the victim; `None` if never detected.
    pub detection_ns: Option<u64>,
    /// Wall clock of the last survivor `Complete` at or after the kill —
    /// the moment the stream was whole again; `None` if survivors did
    /// not all complete.
    pub repair_ns: Option<u64>,
}

impl KillOutcome {
    /// Detection latency in milliseconds, if detected.
    pub fn detection_ms(&self) -> Option<f64> {
        self.detection_ns
            .map(|d| d.saturating_sub(self.kill_ns) as f64 / 1e6)
    }

    /// Repair latency in milliseconds, if repaired.
    pub fn repair_ms(&self) -> Option<f64> {
        self.repair_ns
            .map(|r| r.saturating_sub(self.kill_ns) as f64 / 1e6)
    }
}

/// One live in-network repair: a confirmed failure healed structurally
/// by re-lowering the forest and shipping spliced calendars to the
/// survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairEvent {
    /// The confirmed-failed node the forest healed around.
    pub subject: u32,
    /// Repair generation carried by the shipped updates.
    pub epoch: u64,
    /// Wall clock when the detector confirmed the subject, UNIX ns.
    pub confirmed_ns: u64,
    /// Wall clock when the last survivor's update was on the wire.
    pub dispatch_ns: u64,
    /// Barrier slot every survivor splices the healed calendar at.
    pub barrier_slot: u64,
    /// Survivors an update was shipped to.
    pub survivors_updated: u64,
    /// Wall clock of the earliest post-splice delivery that filled a
    /// missing packet anywhere in the cluster; `None` if no survivor
    /// was missing anything (or none reported one).
    pub first_healed_ns: Option<u64>,
}

impl RepairEvent {
    /// Confirm-to-dispatch latency (healing + re-lowering + shipping),
    /// milliseconds.
    pub fn dispatch_ms(&self) -> f64 {
        self.dispatch_ns.saturating_sub(self.confirmed_ns) as f64 / 1e6
    }

    /// Confirm-to-first-healed-delivery latency, milliseconds.
    pub fn first_healed_ms(&self) -> Option<f64> {
        self.first_healed_ns
            .map(|h| h.saturating_sub(self.confirmed_ns) as f64 / 1e6)
    }
}

/// Everything a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Final per-node reports, sorted by node id (killed nodes absent).
    pub reports: Vec<NodeReport>,
    /// Per-kill wall-clock accounting.
    pub kills: Vec<KillOutcome>,
    /// Live repairs dispatched (empty unless `repair` was on and a
    /// failure was confirmed).
    pub repairs: Vec<RepairEvent>,
    /// Survivors that reported `Complete`.
    pub completed: u64,
    /// Survivors expected to complete (receivers minus victims).
    pub expected_complete: u64,
    /// Wall clock of the whole run (Start to last event), nanoseconds.
    pub wall_ns: u64,
    /// The recorded trace, replayable via [`crate::trace::replay_in_des`].
    pub trace: RunTrace,
    /// PIDs of every spawned child (all reaped by return time).
    pub child_pids: Vec<u32>,
}

/// Drop guard owning the spawned node processes: whatever way the
/// orchestrator exits — success, error return, or panic — every child is
/// SIGKILLed and waited, so no test run leaks processes.
#[derive(Debug, Default)]
pub struct Reaper {
    children: Vec<(u32, Option<Child>)>,
}

impl Reaper {
    /// An empty guard.
    pub fn new() -> Reaper {
        Reaper::default()
    }

    /// Take ownership of `child`, spawned for `node`.
    pub fn push(&mut self, node: u32, child: Child) {
        self.children.push((node, Some(child)));
    }

    /// PIDs of every child ever pushed, in push order.
    pub fn pids(&self) -> Vec<u32> {
        self.children
            .iter()
            .filter_map(|(_, c)| c.as_ref().map(Child::id))
            .collect()
    }

    /// SIGKILL and reap `node` now. No-op if already reaped.
    pub fn kill(&mut self, node: u32) {
        for (id, slot) in &mut self.children {
            if *id == node {
                if let Some(mut child) = slot.take() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
    }

    /// Reap children that exited on their own; SIGKILL the rest after
    /// `grace`.
    pub fn wait_all(&mut self, grace: Duration) {
        let deadline = Instant::now() + grace;
        loop {
            let mut alive = false;
            for (_, slot) in &mut self.children {
                if let Some(child) = slot {
                    match child.try_wait() {
                        Ok(Some(_)) => *slot = None,
                        Ok(None) => alive = true,
                        Err(_) => *slot = None,
                    }
                }
            }
            if !alive || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for (_, slot) in &mut self.children {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

impl Drop for Reaper {
    fn drop(&mut self) {
        for (_, slot) in &mut self.children {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Unique-per-call suffix for the run's socket directory.
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One frame read off a node's control connection.
type ControlEvent = (u32, Frame);

/// Read one frame from `conn` within `timeout`.
fn read_one_timeout(conn: &mut crate::transport::Conn, timeout: Duration) -> Result<Frame, String> {
    conn.set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let got = read_frame(conn).map_err(|e| e.to_string())?;
    conn.set_read_timeout(None).map_err(|e| e.to_string())?;
    match got {
        Some((frame, _)) => Ok(frame),
        None => Err("control connection closed".into()),
    }
}

/// Run a full orchestrated cluster experiment. See the module docs.
pub fn run_cluster(opts: &ClusterOptions) -> Result<ClusterOutcome, String> {
    let n = opts.nodes;
    if n == 0 {
        return Err("a cluster needs at least one receiver".into());
    }
    if opts.params.n != n {
        return Err(format!(
            "scheme population {} does not match --nodes {n}",
            opts.params.n
        ));
    }
    let lowered = lower_schedule(&opts.params, opts.track)?;
    let max_slots = lowered.slots_run + opts.horizon_slack;
    for k in &opts.kills {
        if u64::from(k.node) > n {
            return Err(format!(
                "kill target {} is outside the population 1..={n}",
                k.node
            ));
        }
        if k.slot >= lowered.slots_run {
            return Err(format!(
                "kill slot {} is past the schedule horizon {} — the stream \
                 would already be complete",
                k.slot, lowered.slots_run
            ));
        }
    }
    for c in &opts.chaos {
        for node in c.nodes() {
            if u64::from(node) > n {
                return Err(format!(
                    "chaos target {node} in `{}` is outside the population 0..={n}",
                    format_chaos_spec(std::slice::from_ref(c))
                ));
            }
        }
    }
    if opts.repair && opts.params.family != "multitree" {
        return Err(format!(
            "live repair only heals the multitree family, not `{}`",
            opts.params.family
        ));
    }

    // Scratch directory for Unix sockets (harmless under TCP).
    let dir = std::env::temp_dir().join(format!(
        "clustream-cluster-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let result = run_cluster_in(opts, &lowered, max_slots, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_cluster_in(
    opts: &ClusterOptions,
    lowered: &crate::schedule::LoweredSchedule,
    max_slots: u64,
    dir: &std::path::Path,
) -> Result<ClusterOutcome, String> {
    let n = opts.nodes;
    let (control_listener, control_addr) =
        NetListener::bind(opts.transport, dir, "control.sock").map_err(|e| e.to_string())?;

    // Spawn the source and every receiver under the reaper.
    let mut reaper = Reaper::new();
    for node in 0..=n as u32 {
        let child = Command::new(&opts.node_bin)
            .arg("--node")
            .arg(node.to_string())
            .arg("--control")
            .arg(&control_addr)
            .arg("--transport")
            .arg(opts.transport.label())
            .arg("--socket-dir")
            .arg(dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", opts.node_bin.display()))?;
        reaper.push(node, child);
    }
    let child_pids = reaper.pids();

    // Accept every Hello within the handshake deadline.
    control_listener
        .set_nonblocking(true)
        .map_err(|e| e.to_string())?;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut controls: BTreeMap<u32, crate::transport::Conn> = BTreeMap::new();
    let mut data_addrs: BTreeMap<u32, String> = BTreeMap::new();
    while controls.len() < (n + 1) as usize {
        match control_listener.accept() {
            Ok(mut conn) => match read_one_timeout(&mut conn, Duration::from_secs(10))? {
                Frame::Hello { node, listen_addr } => {
                    data_addrs.insert(node, listen_addr);
                    controls.insert(node, conn);
                }
                other => return Err(format!("expected Hello, got {other:?}")),
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(format!(
                        "only {}/{} nodes reported in before the handshake deadline",
                        controls.len(),
                        n + 1
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(format!("accept control connection: {e}")),
        }
    }

    // Distribute configs and collect Ready.
    let source_addr = data_addrs
        .get(&0)
        .cloned()
        .ok_or("the source never said Hello")?;
    for node in 0..=n as u32 {
        let sends = lowered.sends.get(&node).cloned().unwrap_or_default();
        let expects = lowered.expects.get(&node).cloned().unwrap_or_default();
        // The source learns every receiver's address (NACK replies dial
        // lazily); receivers only their scheduled downstream peers.
        let peer_ids: BTreeSet<u32> = if node == 0 {
            (1..=n as u32).collect()
        } else {
            sends.iter().map(|s| s.to).collect()
        };
        let peers: Vec<PeerAddr> = peer_ids
            .iter()
            .filter_map(|id| {
                data_addrs.get(id).map(|addr| PeerAddr {
                    node: *id,
                    addr: addr.clone(),
                })
            })
            .collect();
        let cfg = NodeConfig {
            node,
            n,
            track: opts.track,
            max_slots,
            slot_micros: opts.slot_micros,
            suspect_timeout_slots: opts.suspect_timeout_slots,
            gap_slack_slots: opts.gap_slack_slots,
            nack_retry_slots: opts.nack_retry_slots,
            nack_max_attempts: opts.nack_max_attempts,
            sends,
            expects,
            peers,
            source_addr: if node == 0 {
                String::new()
            } else {
                source_addr.clone()
            },
            chaos: opts.chaos.clone(),
            chaos_seed: opts.chaos_seed,
            retransmit_budget_per_slot: opts.retransmit_budget_per_slot,
        };
        let payload = serde_json::to_string(&cfg).map_err(|e| e.to_string())?;
        let conn = controls.get_mut(&node).expect("accepted above");
        write_frame(conn, &Frame::Config { payload }).map_err(|e| e.to_string())?;
    }
    for (node, conn) in controls.iter_mut() {
        match read_one_timeout(conn, Duration::from_secs(20))? {
            Frame::Ready { node: who } if who == *node => {}
            other => return Err(format!("expected Ready from node {node}, got {other:?}")),
        }
    }

    // Hand each control conn's read half to a reader thread; release.
    let (ev_tx, ev_rx) = mpsc::channel::<ControlEvent>();
    for (node, conn) in controls.iter() {
        let mut rd = conn.try_clone().map_err(|e| e.to_string())?;
        let tx = ev_tx.clone();
        let node = *node;
        std::thread::spawn(move || loop {
            match read_frame(&mut rd) {
                Ok(Some((frame, _))) => {
                    if tx.send((node, frame)).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => return,
            }
        });
    }
    drop(ev_tx);

    let t0 = Instant::now();
    let start_ns = sys_ns();
    for conn in controls.values_mut() {
        write_frame(conn, &Frame::Start).map_err(|e| e.to_string())?;
    }

    // The stream runs; kills fire at their slot deadlines.
    let slot_dur = Duration::from_micros(opts.slot_micros.max(1));
    let mut kill_queue: Vec<KillSpec> = opts.kills.clone();
    kill_queue.sort_by_key(|k| k.slot);
    let mut kill_outcomes: Vec<KillOutcome> = Vec::new();
    let killed: BTreeSet<u32> = kill_queue.iter().map(|k| k.node).collect();
    let expected_complete = n - killed.len() as u64;
    let mut detector = FailureDetector::new(opts.suspect_threshold.max(1) as usize, 0);
    let mut completions: BTreeMap<u32, u64> = BTreeMap::new();
    let mut reports: BTreeMap<u32, NodeReport> = BTreeMap::new();
    // Live repair: the healing forest persists across the run so repeated
    // failures compose; `repaired` guards one repair per subject.
    let mut healer: Option<SelfHealingMultiTree> = if opts.repair {
        Some(
            SelfHealingMultiTree::new(
                n as usize,
                opts.params.d as usize,
                StreamMode::PreRecorded,
                Construction::Greedy,
            )
            .map_err(|e| format!("build healing forest: {e}"))?,
        )
    } else {
        None
    };
    let mut repaired: BTreeSet<u32> = BTreeSet::new();
    let mut repair_events: Vec<RepairEvent> = Vec::new();
    // Generous overall deadline: 4× the nominal stream plus repair slack.
    let overall = Duration::from_secs(10).max(slot_dur * (max_slots as u32) * 4);
    let run_deadline = Instant::now() + overall;
    let mut next_kill = 0usize;

    loop {
        if completions.len() as u64 >= expected_complete && next_kill >= kill_queue.len() {
            break;
        }
        if Instant::now() > run_deadline {
            break;
        }
        // Fire every kill whose slot deadline has passed.
        while next_kill < kill_queue.len() {
            let k = kill_queue[next_kill];
            let due = t0 + slot_dur * (k.slot as u32);
            if Instant::now() < due {
                break;
            }
            reaper.kill(k.node);
            kill_outcomes.push(KillOutcome {
                node: k.node,
                slot: k.slot,
                kill_ns: sys_ns(),
                detection_ns: None,
                repair_ns: None,
            });
            next_kill += 1;
        }
        let wait = if next_kill < kill_queue.len() {
            let due = t0 + slot_dur * (kill_queue[next_kill].slot as u32);
            due.saturating_duration_since(Instant::now())
                .min(Duration::from_millis(50))
        } else {
            Duration::from_millis(50)
        };
        match ev_rx.recv_timeout(wait) {
            Ok((from, frame)) => match frame {
                Frame::Suspect { subject, .. } => {
                    detector.suspect(from, subject);
                    if detector.confirm(subject) {
                        let now = sys_ns();
                        for ko in kill_outcomes.iter_mut() {
                            if ko.node == subject && ko.detection_ns.is_none() {
                                ko.detection_ns = Some(now);
                            }
                        }
                        if subject != 0 && repaired.insert(subject) {
                            if let Some(h) = healer.as_mut() {
                                // Dead set: everything confirmed so far plus
                                // every scheduled victim already killed.
                                let mut dead = repaired.clone();
                                for k in kill_queue.iter().take(next_kill) {
                                    dead.insert(k.node);
                                }
                                match dispatch_repair(
                                    h,
                                    subject,
                                    repair_events.len() as u64 + 1,
                                    opts,
                                    max_slots,
                                    t0,
                                    &data_addrs,
                                    &mut controls,
                                    &dead,
                                ) {
                                    Ok(mut ev) => {
                                        ev.confirmed_ns = now;
                                        repair_events.push(ev);
                                    }
                                    Err(e) => {
                                        // A refused heal (forest would empty)
                                        // or a dead control conn must not
                                        // abort the run; record nothing.
                                        let _ = e;
                                    }
                                }
                            }
                        }
                    }
                }
                Frame::Complete { node, at_ns } => {
                    completions.insert(node, at_ns);
                }
                Frame::Report { payload } => {
                    if let Ok(report) = serde_json::from_str::<NodeReport>(&payload) {
                        reports.insert(report.node, report);
                    }
                }
                _ => {}
            },
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    let wall_ns = sys_ns().saturating_sub(start_ns);

    // Stop everyone still alive and drain their final reports.
    for (node, conn) in controls.iter_mut() {
        if !killed.contains(node) {
            let _ = write_frame(conn, &Frame::Stop);
        }
    }
    let report_deadline = Instant::now() + Duration::from_secs(10);
    while reports.len() < (n + 1 - killed.len() as u64) as usize {
        let left = report_deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match ev_rx.recv_timeout(left.min(Duration::from_millis(100))) {
            Ok((_, Frame::Report { payload })) => {
                if let Ok(report) = serde_json::from_str::<NodeReport>(&payload) {
                    reports.insert(report.node, report);
                }
            }
            Ok((node, Frame::Complete { node: who, at_ns })) => {
                let _ = node;
                completions.insert(who, at_ns);
            }
            Ok(_) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    reaper.wait_all(Duration::from_secs(5));

    // Repair wall-clock: the last survivor completion at or after each kill.
    for ko in kill_outcomes.iter_mut() {
        let all_done = completions.len() as u64 >= expected_complete;
        if all_done {
            ko.repair_ns = completions
                .values()
                .copied()
                .filter(|&c| c >= ko.kill_ns)
                .max()
                .or(Some(ko.kill_ns));
        }
    }

    let reports: Vec<NodeReport> = reports.into_values().collect();
    // The earliest post-splice gap-filling delivery anywhere closes the
    // detection→repair→first-healed-delivery wall-clock chain.
    let first_healed = reports
        .iter()
        .map(|r| r.first_healed_delivery_ns)
        .filter(|&x| x > 0)
        .min();
    for ev in repair_events.iter_mut() {
        ev.first_healed_ns = first_healed.filter(|&h| h >= ev.dispatch_ns);
    }
    record_telemetry(&opts.telemetry, &reports);
    let trace = assemble_trace(opts, max_slots, &kill_outcomes, &reports);
    Ok(ClusterOutcome {
        reports,
        kills: kill_outcomes,
        repairs: repair_events,
        completed: completions.len() as u64,
        expected_complete,
        wall_ns,
        trace,
        child_pids,
    })
}

/// Heal the forest around a confirmed-failed `subject`, re-lower the
/// healed schedule and ship one [`ScheduleUpdate`] per survivor over its
/// control connection. Returns the event with `confirmed_ns` left for
/// the caller to stamp. Errors only when the forest refuses the heal
/// (it would empty) or the healed schedule cannot be lowered; a single
/// dead control connection just lowers `survivors_updated`.
#[allow(clippy::too_many_arguments)]
fn dispatch_repair(
    healer: &mut SelfHealingMultiTree,
    subject: u32,
    epoch: u64,
    opts: &ClusterOptions,
    max_slots: u64,
    t0: Instant,
    data_addrs: &BTreeMap<u32, String>,
    controls: &mut BTreeMap<u32, Conn>,
    dead: &BTreeSet<u32>,
) -> Result<RepairEvent, String> {
    healer
        .membership_event(NodeId(subject), MembershipEvent::Failed)
        .ok_or_else(|| format!("forest refused to heal around node {subject}"))?;
    let dead_list: Vec<u32> = dead.iter().copied().collect();
    let lowered = lower_scheme_healed(healer, opts.track, &dead_list, max_slots)?;
    let n = opts.nodes;
    // Barrier: past every survivor's current slot (estimated from the
    // shared Start instant) plus margin for control-plane latency, so
    // all survivors splice at the same calendar position.
    let elapsed_us = t0.elapsed().as_micros() as u64;
    let barrier_slot = elapsed_us / opts.slot_micros.max(1) + opts.splice_margin_slots;
    let mut survivors_updated = 0u64;
    for node in 0..=n as u32 {
        if node != 0 && dead.contains(&node) {
            continue;
        }
        let sends = lowered.sends.get(&node).cloned().unwrap_or_default();
        let expects = lowered.expects.get(&node).cloned().unwrap_or_default();
        let peer_ids: BTreeSet<u32> = if node == 0 {
            (1..=n as u32).filter(|id| !dead.contains(id)).collect()
        } else {
            sends.iter().map(|s| s.to).collect()
        };
        let peers: Vec<PeerAddr> = peer_ids
            .iter()
            .filter_map(|id| {
                data_addrs.get(id).map(|addr| PeerAddr {
                    node: *id,
                    addr: addr.clone(),
                })
            })
            .collect();
        let upd = ScheduleUpdate {
            epoch,
            barrier_slot,
            sends,
            expects,
            peers,
        };
        let payload = serde_json::to_string(&upd).map_err(|e| e.to_string())?;
        if let Some(conn) = controls.get_mut(&node) {
            if write_frame(conn, &Frame::ScheduleUpdate { payload }).is_ok() {
                survivors_updated += 1;
            }
        }
    }
    Ok(RepairEvent {
        subject,
        epoch,
        confirmed_ns: 0,
        dispatch_ns: sys_ns(),
        barrier_slot,
        survivors_updated,
        first_healed_ns: None,
    })
}

/// Fold per-node transport counters into the telemetry sink.
fn record_telemetry(tel: &Telemetry, reports: &[NodeReport]) {
    if !tel.enabled() {
        return;
    }
    for r in reports {
        tel.counter(tm::NET_FRAMES_SENT, r.frames_sent);
        tel.counter(tm::NET_FRAMES_RECEIVED, r.frames_received);
        tel.counter(tm::NET_BYTES_SENT, r.bytes_sent);
        tel.counter(tm::NET_BYTES_RECEIVED, r.bytes_received);
        tel.counter(tm::NET_RECONNECTS, r.reconnects);
        tel.counter(tm::NET_NACKS, r.nacks_sent);
        tel.counter(tm::NET_RETRANSMITS, r.retransmits_served);
        tel.counter(tm::NET_CHAOS_DROPS, r.chaos_drops);
        tel.counter(tm::NET_CHAOS_DUPS, r.chaos_dups);
        tel.counter(tm::NET_CHAOS_REORDERS, r.chaos_reorders);
        tel.counter(tm::NET_CHAOS_DELAYS, r.chaos_delays);
        tel.counter(tm::NET_CHAOS_PARTITION_DROPS, r.chaos_partition_drops);
        tel.counter(tm::NET_NACKS_SUPPRESSED, r.nacks_suppressed);
        tel.counter(tm::NET_REPAIR_SCHEDULE_UPDATES, r.schedule_updates_applied);
        if r.schedule_updates_applied > 0 {
            tel.observe(tm::NET_REPAIR_SPLICE_LAG_US, r.splice_lag_us);
        }
        tel.gauge_max(tm::NET_SEND_QUEUE_HIGH_WATER, r.send_queue_high_water);
        for a in &r.arrivals {
            let us = a.recv_ns.saturating_sub(a.sent_ns) / 1_000;
            tel.observe(tm::NET_LINK_LATENCY_US, us);
        }
    }
}

/// Build the replayable [`RunTrace`] from the survivors' observations.
fn assemble_trace(
    opts: &ClusterOptions,
    max_slots: u64,
    kills: &[KillOutcome],
    reports: &[NodeReport],
) -> RunTrace {
    let mut trace = RunTrace {
        params: opts.params.clone(),
        track: opts.track,
        max_slots,
        slot_micros: opts.slot_micros,
        links: Vec::new(),
        kills: kills
            .iter()
            .map(|k| KillObs {
                node: k.node,
                slot: k.slot,
            })
            .collect(),
        chaos: opts.chaos.clone(),
        chaos_seed: opts.chaos_seed,
        deliveries: Vec::new(),
    };
    // Deliveries include every arrival (calendar, retransmit, healed):
    // they are what the node actually played back.
    for r in reports {
        if r.node == 0 {
            continue;
        }
        let mut packets: Vec<(u64, u64)> =
            r.arrivals.iter().map(|a| (a.recv_ns, a.packet)).collect();
        packets.sort_unstable();
        trace.deliveries.push(NodeDeliveries {
            node: r.node,
            packets: packets.into_iter().map(|(_, p)| p).collect(),
        });
    }
    let chaos_run = reports.iter().any(|r| !r.calendar_sends.is_empty());
    if chaos_run {
        // Sender-ledger assembly: every sender logged its pre-splice
        // calendar sends in order, including the copies chaos ate. Pair
        // each delivered entry with the receiver's first-copy arrival of
        // that packet — by packet id, not FIFO position: a lowered
        // calendar may carry redundant copies of one packet on two
        // links, and the receiver records only whichever landed first
        // (the redundant copy borrows the first copy's latency).
        let mut first_copy: BTreeMap<u32, BTreeMap<u64, u64>> = BTreeMap::new();
        for r in reports {
            let per_packet = first_copy.entry(r.node).or_default();
            for a in &r.arrivals {
                if !a.retransmit && !a.healed {
                    per_packet
                        .entry(a.packet)
                        .or_insert_with(|| trace.ns_to_ticks(a.recv_ns.saturating_sub(a.sent_ns)));
                }
            }
        }
        for r in reports {
            for cs in &r.calendar_sends {
                let ticks = (!cs.dropped)
                    .then(|| {
                        first_copy
                            .get(&cs.to)
                            .and_then(|m| m.get(&cs.packet))
                            .copied()
                    })
                    .flatten();
                trace.links.push(match ticks {
                    Some(ticks) => LinkObs {
                        from: r.node,
                        to: cs.to,
                        ticks,
                        dropped: false,
                    },
                    // Chaos ate it, or it left the sender and the
                    // receiver never reported it arriving (killed
                    // mid-flight): either way the wire lost this copy.
                    None => LinkObs {
                        from: r.node,
                        to: cs.to,
                        ticks: 0,
                        dropped: true,
                    },
                });
            }
        }
    } else {
        // Clean runs record no sender ledger: receiver-driven assembly,
        // per-link samples in arrival order (= send order per FIFO
        // stream). Retransmissions and healed deliveries are repair
        // traffic, not calendar traffic.
        let mut link_obs: Vec<(u64, LinkObs)> = Vec::new();
        for r in reports {
            if r.node == 0 {
                continue;
            }
            for a in &r.arrivals {
                if !a.retransmit && !a.healed {
                    link_obs.push((
                        a.recv_ns,
                        LinkObs {
                            from: a.from,
                            to: r.node,
                            ticks: trace.ns_to_ticks(a.recv_ns.saturating_sub(a.sent_ns)),
                            dropped: false,
                        },
                    ));
                }
            }
        }
        link_obs.sort_by_key(|(recv_ns, _)| *recv_ns);
        trace.links = link_obs.into_iter().map(|(_, l)| l).collect();
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_to_a_consistent_population() {
        let o = ClusterOptions::new(16, PathBuf::from("/bin/true"));
        assert_eq!(o.params.n, 16);
        assert_eq!(o.transport, Transport::Tcp);
        assert!(o.kills.is_empty());
    }

    #[test]
    fn population_mismatch_is_rejected() {
        let mut o = ClusterOptions::new(8, PathBuf::from("/bin/true"));
        o.params.n = 9;
        let err = run_cluster(&o).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn out_of_range_kills_are_rejected() {
        let mut o = ClusterOptions::new(8, PathBuf::from("/bin/true"));
        o.kills = vec![KillSpec { node: 9, slot: 1 }];
        let err = run_cluster(&o).unwrap_err();
        assert!(err.contains("outside the population"), "{err}");

        o.kills = vec![KillSpec {
            node: 3,
            slot: 1_000_000,
        }];
        let err = run_cluster(&o).unwrap_err();
        assert!(err.contains("past the schedule horizon"), "{err}");
    }

    #[test]
    fn reaper_kills_children_on_drop() {
        let mut reaper = Reaper::new();
        let child = Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let pid = child.id();
        reaper.push(1, child);
        assert_eq!(reaper.pids(), vec![pid]);
        drop(reaper);
        // After the drop the PID must be gone (or a zombie already reaped
        // — /proc/<pid> disappears once waited).
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "child {pid} survived the reaper"
        );
    }

    #[test]
    fn reaper_reaps_even_when_the_holder_panics() {
        let child = Command::new("sleep")
            .arg("30")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let pid = child.id();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut reaper = Reaper::new();
            reaper.push(1, child);
            panic!("orchestrator exploded");
        }));
        assert!(result.is_err());
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "child {pid} leaked through a panic"
        );
    }

    #[test]
    fn wait_all_reaps_fast_exits_without_killing() {
        let mut reaper = Reaper::new();
        let child = Command::new("true")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn true");
        reaper.push(1, child);
        reaper.wait_all(Duration::from_secs(5));
        // Nothing to assert beyond "returns promptly and drop is clean".
    }
}
