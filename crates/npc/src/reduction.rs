//! The paper's reduction: E-4 Set Splitting ≤ₚ Two Interior-Disjoint
//! Trees.
//!
//! Given elements `V` and 4-element sets `R_i`, build a bipartite-ish
//! graph: a root `r` adjacent to every element vertex, plus one vertex
//! `x_i` per set adjacent to exactly the four elements of `R_i`. The
//! paper shows `G` has two interior-disjoint spanning trees rooted at `r`
//! iff the instance splits: a split `(V₁, V₂)` gives trees whose interiors
//! are `V₁` and `V₂` (each `x_i` hangs as a leaf off both sides since it
//! meets both), and conversely the `x_i` can always be pushed to the
//! leaves, making the two interior sets a valid split.

use crate::graph::Graph;
use crate::setsplit::E4SetSplitting;

/// Vertex layout of a reduced instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// The root vertex `r` (always 0).
    pub root: usize,
    /// Element `e` is vertex `1 + e`.
    pub first_elem: usize,
    /// Set `i`'s vertex `x_i` is `1 + n_elems + i`.
    pub first_set: usize,
}

/// Build the reduction graph for `inst`.
pub fn reduce(inst: &E4SetSplitting) -> (Graph, Layout) {
    let n = 1 + inst.n_elems() + inst.sets().len();
    assert!(n <= 64, "reduced instance too large for the solver");
    let mut g = Graph::new(n).expect("size checked");
    let layout = Layout {
        root: 0,
        first_elem: 1,
        first_set: 1 + inst.n_elems(),
    };
    for e in 0..inst.n_elems() {
        g.add_edge(layout.root, layout.first_elem + e);
    }
    for (i, set) in inst.sets().iter().enumerate() {
        for &e in set {
            g.add_edge(layout.first_set + i, layout.first_elem + e);
        }
    }
    (g, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{find_two_interior_disjoint_trees, verify_interior_disjoint};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn layout_is_as_documented() {
        let inst = E4SetSplitting::new(5, vec![[0, 1, 2, 3]]).unwrap();
        let (g, l) = reduce(&inst);
        assert_eq!(g.n(), 7);
        assert_eq!(l.root, 0);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 5));
        assert!(!g.has_edge(0, 6), "root is not adjacent to set vertices");
        assert!(g.has_edge(6, 1) && g.has_edge(6, 4));
        assert!(!g.has_edge(6, 5), "x_0 only touches its own elements");
    }

    #[test]
    fn splittable_instances_yield_two_trees() {
        let inst = E4SetSplitting::new(6, vec![[0, 1, 2, 3], [2, 3, 4, 5], [0, 2, 4, 5]]).unwrap();
        assert!(inst.solve_brute().is_some());
        let (g, l) = reduce(&inst);
        let (t1, t2) = find_two_interior_disjoint_trees(&g, l.root)
            .expect("reduction of a splittable instance must admit two trees");
        assert!(verify_interior_disjoint(&g, &t1, &t2));
    }

    /// The answer-preservation check the appendix proof claims, validated
    /// exhaustively on random small instances by running both exact
    /// solvers.
    #[test]
    fn reduction_preserves_answers_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..40 {
            let n_elems = rng.gen_range(4..=7);
            let n_sets = rng.gen_range(1..=5);
            let mut sets = Vec::new();
            for _ in 0..n_sets {
                let mut s: Vec<usize> = (0..n_elems).collect();
                for i in 0..4 {
                    let j = rng.gen_range(i..n_elems);
                    s.swap(i, j);
                }
                sets.push([s[0], s[1], s[2], s[3]]);
            }
            let inst = E4SetSplitting::new(n_elems, sets).unwrap();
            let splittable = inst.solve_brute().is_some();
            let (g, l) = reduce(&inst);
            let trees = find_two_interior_disjoint_trees(&g, l.root);
            assert_eq!(
                splittable,
                trees.is_some(),
                "trial {trial}: reduction changed the answer for {inst:?}"
            );
            if let Some((t1, t2)) = trees {
                assert!(verify_interior_disjoint(&g, &t1, &t2));
            }
        }
    }

    /// Forward direction with an explicit witness: interiors of the two
    /// trees built from a valid split are exactly the split classes.
    #[test]
    fn split_classes_work_as_interior_covers() {
        let inst = E4SetSplitting::new(4, vec![[0, 1, 2, 3]]).unwrap();
        let v1 = inst.solve_brute().unwrap();
        let (g, l) = reduce(&inst);
        // Translate the element split into vertex masks.
        let mut w1 = 0u64;
        let mut w2 = 0u64;
        for e in 0..inst.n_elems() {
            let v = l.first_elem + e;
            if v1 & (1 << e) != 0 {
                w1 |= 1 << v;
            } else {
                w2 |= 1 << v;
            }
        }
        // Both classes + root must be connected (root adjacent to every
        // element) and dominate all x_i (each set meets both classes).
        let core1 = w1 | 1;
        let core2 = w2 | 1;
        assert!(g.connected_within(core1));
        assert!(g.connected_within(core2));
        let all = g.full_mask();
        assert_eq!(g.dominated_by(core1) | core1, all);
        assert_eq!(g.dominated_by(core2) | core2, all);
    }
}
