//! End-to-end cluster tests: real `clustream-node` processes over
//! loopback sockets, orchestrated in-process.
//!
//! Timings are deliberately loose (small populations, short tracked
//! windows, generous deadlines): CI containers are shared and slow, and
//! these tests assert *protocol* properties — complete delivery, kill
//! detection, replay concordance, child reaping — not latency numbers.

use clustream_net::{
    compare_delivery_order, parse_kill_spec, replay_in_des, run_cluster, ClusterOptions, Transport,
};
use clustream_telemetry::names as tm;
use clustream_telemetry::MemoryRecorder;
use std::path::PathBuf;

fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_clustream-node"))
}

fn base_options(nodes: u64, track: u64) -> ClusterOptions {
    let mut opts = ClusterOptions::new(nodes, node_bin());
    opts.track = track;
    opts.slot_micros = 3_000;
    opts
}

#[test]
fn uds_cluster_delivers_and_replays_concordantly() {
    let (recorder, telemetry) = MemoryRecorder::handle();
    let mut opts = base_options(8, 16);
    opts.transport = Transport::Uds;
    opts.telemetry = telemetry;
    let outcome = run_cluster(&opts).expect("cluster run");

    assert_eq!(
        outcome.completed, outcome.expected_complete,
        "every receiver must complete: {outcome:?}"
    );
    assert_eq!(outcome.expected_complete, 8);
    // Every survivor delivered the full tracked window.
    for d in &outcome.trace.deliveries {
        assert_eq!(
            d.packets.len() as u64,
            opts.track,
            "node {} delivered {} of {} tracked packets",
            d.node,
            d.packets.len(),
            opts.track
        );
    }
    assert!(
        !outcome.trace.links.is_empty(),
        "no link latencies recorded"
    );

    // Transport telemetry flowed through the aggregate sink.
    let snap = recorder.snapshot();
    assert!(snap.counter(tm::NET_FRAMES_SENT) > 0);
    assert!(snap.counter(tm::NET_BYTES_RECEIVED) > 0);
    assert!(
        snap.histogram(tm::NET_LINK_LATENCY_US).is_some(),
        "link latency histogram missing"
    );

    // The replay oracle: the DES under recorded latencies reproduces the
    // per-node delivery order (ties concordant, threshold loose enough
    // for scheduler jitter on shared CI hosts).
    let replay = replay_in_des(&outcome.trace).expect("DES replay");
    let cmp = compare_delivery_order(&outcome.trace, &replay);
    assert_eq!(cmp.per_node.len(), 8);
    assert!(
        cmp.min >= 0.85,
        "delivery-order concordance too low: {cmp:?}"
    );

    // No child outlives the run.
    for pid in &outcome.child_pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "node process {pid} leaked"
        );
    }
}

#[test]
fn tcp_kill_is_detected_and_repaired() {
    let mut opts = base_options(8, 16);
    opts.transport = Transport::Tcp;
    opts.kills = parse_kill_spec("3@2").expect("kill spec");
    // A couple of slots of silence before suspicion keeps detection fast
    // relative to the repair window.
    opts.suspect_timeout_slots = 4;
    let outcome = run_cluster(&opts).expect("cluster run");

    assert_eq!(outcome.kills.len(), 1);
    let kill = &outcome.kills[0];
    assert_eq!(kill.node, 3);
    assert!(
        kill.detection_ns.is_some(),
        "kill was never detected: {outcome:?}"
    );
    assert!(
        outcome.completed == outcome.expected_complete,
        "survivors did not all complete: {}/{} — the NACK repair path \
         failed: {outcome:?}",
        outcome.completed,
        outcome.expected_complete
    );
    assert!(kill.repair_ns.is_some(), "repair wall-clock missing");
    assert!(kill.detection_ms().unwrap() >= 0.0);
    assert!(kill.repair_ms().unwrap() >= 0.0);
    // The victim is absent from the reports; survivors are all there.
    assert!(outcome.reports.iter().all(|r| r.node != 3));
    // Someone chased the gap: the repair path really ran (the victim had
    // downstream responsibilities in every lowered family we use here).
    let nacks: u64 = outcome.reports.iter().map(|r| r.nacks_sent).sum();
    let served: u64 = outcome.reports.iter().map(|r| r.retransmits_served).sum();
    assert!(nacks > 0, "no NACKs despite a killed interior node");
    assert!(served > 0, "no retransmissions served");
    for pid in &outcome.child_pids {
        assert!(
            !std::path::Path::new(&format!("/proc/{pid}")).exists(),
            "node process {pid} leaked"
        );
    }
}

#[test]
fn trace_json_survives_a_disk_roundtrip() {
    let mut opts = base_options(4, 8);
    opts.transport = Transport::Uds;
    let outcome = run_cluster(&opts).expect("cluster run");
    let json = outcome.trace.to_json();
    let back = clustream_net::RunTrace::from_json(&json).expect("parse");
    assert_eq!(back, outcome.trace);
}

#[test]
fn spawn_failure_reports_cleanly() {
    let mut opts = base_options(2, 4);
    opts.node_bin = PathBuf::from("/nonexistent/clustream-node");
    let err = run_cluster(&opts).unwrap_err();
    assert!(err.contains("spawn"), "{err}");
}
