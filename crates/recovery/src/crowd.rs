//! The flash-crowd scheme: online forest growth replayed identically by
//! every engine.
//!
//! [`FlashCrowdScheme`] wraps a [`DynamicForest`] like
//! [`crate::SelfHealingMultiTree`], but instead of reacting to engine
//! [`clustream_core::Scheme::membership_event`] callbacks it carries its
//! own script: a slot-sorted list of resolved churn events (joins from
//! a scenario's join curves, leaves from its regional failures). At the
//! top of each [`Scheme::transmissions`] call it applies every event
//! due at or before the current slot — appendix `add` dynamics for
//! joins, `delete` for failures — and re-derives the round-robin
//! schedule **once** per eventful slot. Because every engine (reference,
//! fast, mega, slot-faithful DES) asks for transmissions exactly once
//! per slot in increasing order, the growth replays bit-identically
//! with no engine-loop support at all; the differential oracles close
//! the loop in `tests/scenario.rs`.
//!
//! Identity bookkeeping: the engines' node ids are the *resolved* ids —
//! `1..=N₀` for initial members, then fresh monotone ids per join,
//! exactly the ids [`clustream_workloads::ChurnTrace::resolve`] hands
//! out. The engine id space is sized for the final population up front
//! ([`Scheme::num_receivers`] returns the largest id ever used), so
//! state tables never resize mid-run; nodes simply receive nothing
//! before they join. Runs are therefore *lossy by design* (joiners miss
//! every pre-join packet) and should run under a zero-rate fault plan,
//! the established fault-tolerant-regime idiom.

use clustream_core::{CoreError, NodeId, Scheme, Slot, StateView, Transmission, SOURCE};
use clustream_multitree::dynamics::{DynamicForest, ExtId};
use clustream_multitree::{Construction, MultiTreeScheme, StreamMode};
use clustream_workloads::scenario::ScenarioPlan;
use clustream_workloads::{ResolvedChurnAction, ResolvedChurnEvent};
use std::collections::BTreeMap;

/// A multi-tree overlay that grows (and shrinks) itself from a scripted
/// churn-event list as the run advances.
#[derive(Debug, Clone)]
pub struct FlashCrowdScheme {
    forest: DynamicForest,
    inner: MultiTreeScheme,
    mode: StreamMode,
    name: String,
    /// Largest resolved id that ever becomes a member (= engine
    /// receiver count).
    max_id: u64,
    /// Slot-sorted resolved events; `cursor` marks the first unapplied.
    events: Vec<ResolvedChurnEvent>,
    cursor: usize,
    /// Resolved id → slot it joined (0 for initial members).
    join_slots: Vec<u64>,
    /// Forest external id → resolved id.
    ext_to_orig: BTreeMap<ExtId, u64>,
    /// Resolved id → forest external id; absent = not currently a member.
    orig_to_ext: BTreeMap<u64, ExtId>,
    /// Snapshot node id (1..=members) → resolved id; index 0 unused.
    snap_to_orig: Vec<u64>,
    scratch: Vec<Transmission>,
    joins_applied: u64,
    leaves_applied: u64,
    rebuilds: u64,
    total_swaps: usize,
}

impl FlashCrowdScheme {
    /// Build over `n0` initial receivers (ids `1..=n0`) with degree `d`,
    /// scripted by `events` (sorted by slot; ties keep list order, the
    /// order [`clustream_workloads::ChurnTrace::resolve`] produced).
    pub fn new(
        n0: usize,
        d: usize,
        mode: StreamMode,
        construction: Construction,
        mut events: Vec<ResolvedChurnEvent>,
    ) -> Result<Self, CoreError> {
        events.sort_by_key(|e| e.slot);
        let mut max_id = n0 as u64;
        let mut joins = 0u64;
        let mut fails = 0u64;
        for e in &events {
            match e.action {
                ResolvedChurnAction::Join { ext } | ResolvedChurnAction::Rejoin { ext } => {
                    max_id = max_id.max(ext);
                    joins += 1;
                }
                ResolvedChurnAction::Leave { ext } => {
                    if ext > max_id {
                        return Err(CoreError::InvalidConfig(format!(
                            "leave event names id {ext} before any join created it"
                        )));
                    }
                    fails += 1;
                }
            }
        }
        let mut join_slots = vec![0u64; max_id as usize + 1];
        for e in &events {
            if let ResolvedChurnAction::Join { ext } = e.action {
                join_slots[ext as usize] = e.slot;
            }
        }
        let forest = DynamicForest::new(n0, d, construction, true)?;
        let ext_to_orig: BTreeMap<ExtId, u64> = (1..=n0 as u64).map(|i| (i, i)).collect();
        let orig_to_ext: BTreeMap<u64, ExtId> = (1..=n0 as u64).map(|i| (i, i)).collect();
        let mut s = FlashCrowdScheme {
            forest,
            inner: MultiTreeScheme::new(
                clustream_multitree::build_forest(n0, d, construction)?,
                mode,
            ),
            mode,
            name: format!("flash-crowd(n0={n0},d={d},joins={joins},fails={fails})"),
            max_id,
            events,
            cursor: 0,
            join_slots,
            ext_to_orig,
            orig_to_ext,
            snap_to_orig: Vec::new(),
            scratch: Vec::new(),
            joins_applied: 0,
            leaves_applied: 0,
            rebuilds: 0,
            total_swaps: 0,
        };
        s.rebuild()?;
        s.rebuilds = 0;
        Ok(s)
    }

    /// Build from a [`ScenarioPlan`]: compile against `n0` initial
    /// members and resolve with no protected nodes — the configuration
    /// the differential and DES oracles replay.
    pub fn from_plan(
        n0: usize,
        d: usize,
        mode: StreamMode,
        construction: Construction,
        plan: &ScenarioPlan,
    ) -> Result<Self, CoreError> {
        let trace = plan.compile(n0);
        let initial: Vec<u64> = (1..=n0 as u64).collect();
        let resolved = trace.resolve(&initial, &[]);
        Self::new(n0, d, mode, construction, resolved)
    }

    /// Re-derive the compact snapshot, its id translation and the
    /// round-robin schedule from the current forest.
    fn rebuild(&mut self) -> Result<(), CoreError> {
        let (trees, ext_to_snap) = self.forest.snapshot()?;
        let mut snap_to_orig = vec![0u64; self.forest.n_real() + 1];
        for (ext, snap) in &ext_to_snap {
            snap_to_orig[*snap as usize] = *self
                .ext_to_orig
                .get(ext)
                .expect("every forest member has a resolved identity");
        }
        self.snap_to_orig = snap_to_orig;
        self.inner = MultiTreeScheme::new(trees, self.mode);
        self.rebuilds += 1;
        Ok(())
    }

    /// Apply every scripted event due at or before slot `t`; rebuild
    /// the schedule once if anything changed.
    fn apply_due(&mut self, t: u64) {
        let before = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].slot <= t {
            let ev = self.events[self.cursor];
            self.cursor += 1;
            match ev.action {
                ResolvedChurnAction::Join { ext } | ResolvedChurnAction::Rejoin { ext } => {
                    if self.orig_to_ext.contains_key(&ext) {
                        continue;
                    }
                    let (fext, report) = self.forest.add();
                    self.ext_to_orig.insert(fext, ext);
                    self.orig_to_ext.insert(ext, fext);
                    self.joins_applied += 1;
                    self.total_swaps += report.swaps;
                }
                ResolvedChurnAction::Leave { ext } => {
                    let Some(&fext) = self.orig_to_ext.get(&ext) else {
                        continue;
                    };
                    // The dynamics refuse to empty the forest; an
                    // unremovable victim stays fail-silent like the
                    // healing wrapper's.
                    let Ok(report) = self.forest.remove(fext) else {
                        continue;
                    };
                    self.orig_to_ext.remove(&ext);
                    self.ext_to_orig.remove(&fext);
                    self.leaves_applied += 1;
                    self.total_swaps += report.swaps;
                }
            }
        }
        if self.cursor != before {
            self.rebuild()
                .expect("snapshot of a non-empty valid forest cannot fail");
        }
    }

    /// Whether resolved id `node` is currently a member.
    pub fn is_member(&self, node: NodeId) -> bool {
        self.orig_to_ext.contains_key(&(node.0 as u64))
    }

    /// The tree degree `d`.
    pub fn d(&self) -> usize {
        self.forest.d()
    }

    /// Per-id join slots, indexed by resolved id (0 for the source and
    /// for initial members). Feeds the QoE timelines.
    pub fn join_slots(&self) -> &[u64] {
        &self.join_slots
    }

    /// Joins applied so far.
    pub fn joins_applied(&self) -> u64 {
        self.joins_applied
    }

    /// Scripted failures applied so far.
    pub fn leaves_applied(&self) -> u64 {
        self.leaves_applied
    }

    /// Schedule rebuilds performed (once per eventful slot).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Total forest label swaps across all applied events.
    pub fn total_swaps(&self) -> usize {
        self.total_swaps
    }

    /// Slot of the last scripted event (the crowd is settled after it).
    pub fn settled_slot(&self) -> u64 {
        self.events.last().map(|e| e.slot).unwrap_or(0)
    }

    /// The forest driving the schedule (tests validate its invariants).
    pub fn forest(&self) -> &DynamicForest {
        &self.forest
    }

    fn translate(&self, id: u32) -> NodeId {
        if id == 0 {
            SOURCE
        } else {
            NodeId(self.snap_to_orig[id as usize] as u32)
        }
    }
}

impl Scheme for FlashCrowdScheme {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn num_receivers(&self) -> usize {
        self.max_id as usize
    }

    fn send_capacity(&self, node: NodeId) -> usize {
        if node.is_source() {
            self.forest.d()
        } else {
            1
        }
    }

    fn availability(&self) -> clustream_core::Availability {
        self.mode.availability()
    }

    fn transmissions(&mut self, slot: Slot, view: &dyn StateView, out: &mut Vec<Transmission>) {
        self.apply_due(slot.t());
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.inner.transmissions(slot, view, &mut scratch);
        for tx in &scratch {
            out.push(Transmission {
                from: self.translate(tx.from.0),
                to: self.translate(tx.to.0),
                packet: tx.packet,
                latency: tx.latency,
            });
        }
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_sim::{FaultPlan, SimConfig, Simulator};

    fn step_plan(joins: u64, at: u64) -> ScenarioPlan {
        ScenarioPlan::parse(&format!("step:{joins}@{at}")).unwrap()
    }

    /// The established fault-tolerant-regime idiom: zero-rate loss so
    /// joiner gaps are reported instead of erroring the run.
    fn lossy_cfg(track: u64, slots: u64) -> SimConfig {
        SimConfig::with_faults(track, slots, FaultPlan::loss(0.0, 1))
    }

    #[test]
    fn no_events_matches_static_multitree() {
        let mut crowd = FlashCrowdScheme::from_plan(
            27,
            3,
            StreamMode::PreRecorded,
            Construction::Greedy,
            &ScenarioPlan::default(),
        )
        .unwrap();
        let mut fixed = MultiTreeScheme::new(
            clustream_multitree::build_forest(27, 3, Construction::Greedy).unwrap(),
            StreamMode::PreRecorded,
        );
        let cfg = SimConfig::until_complete(24, 10_000);
        let a = Simulator::run(&mut crowd, &cfg).unwrap();
        let b = Simulator::run(&mut fixed, &cfg).unwrap();
        assert_eq!(a.qos.max_delay(), b.qos.max_delay());
        assert_eq!(a.qos.max_buffer(), b.qos.max_buffer());
        assert_eq!(a.arrivals, b.arrivals);
    }

    #[test]
    fn joiners_become_members_and_receive() {
        let plan = step_plan(6, 4);
        let mut crowd =
            FlashCrowdScheme::from_plan(8, 2, StreamMode::PreRecorded, Construction::Greedy, &plan)
                .unwrap();
        assert_eq!(crowd.num_receivers(), 14);
        let r = Simulator::run(&mut crowd, &lossy_cfg(24, 200)).unwrap();
        assert_eq!(crowd.joins_applied(), 6);
        assert!(crowd.is_member(NodeId(14)));
        // Every joiner eventually holds late-window packets.
        for node in 9..=14u32 {
            assert!(
                r.arrivals.usable_slot(NodeId(node), 23.into()).is_some(),
                "joiner {node} missing packet 23"
            );
        }
        crowd.forest().validate().unwrap();
    }

    #[test]
    fn regional_failure_silences_the_region() {
        let plan = ScenarioPlan::parse("fail:3-5@6").unwrap();
        let mut crowd =
            FlashCrowdScheme::from_plan(9, 3, StreamMode::PreRecorded, Construction::Greedy, &plan)
                .unwrap();
        let _ = Simulator::run(&mut crowd, &lossy_cfg(16, 120)).unwrap();
        assert_eq!(crowd.leaves_applied(), 3);
        for dead in 3..=5u32 {
            assert!(!crowd.is_member(NodeId(dead)));
        }
        // The dead ids never appear in the schedule again.
        struct NoView;
        impl StateView for NoView {
            fn holds(&self, _: NodeId, _: clustream_core::PacketId) -> bool {
                false
            }
            fn newest(&self, _: NodeId) -> Option<clustream_core::PacketId> {
                None
            }
            fn slot(&self) -> Slot {
                Slot(0)
            }
        }
        let mut out = Vec::new();
        for t in 120..180 {
            out.clear();
            crowd.transmissions(Slot(t), &NoView, &mut out);
            for tx in &out {
                assert!(
                    !(3..=5).contains(&tx.to.0),
                    "dead node {} scheduled",
                    tx.to.0
                );
                assert!(
                    !(3..=5).contains(&tx.from.0),
                    "dead node {} sending",
                    tx.from.0
                );
            }
        }
    }

    #[test]
    fn eventful_slots_rebuild_once() {
        let plan = ScenarioPlan::parse("step:10@3,step:5@7").unwrap();
        let mut crowd =
            FlashCrowdScheme::from_plan(6, 2, StreamMode::PreRecorded, Construction::Greedy, &plan)
                .unwrap();
        let _ = Simulator::run(&mut crowd, &lossy_cfg(12, 100)).unwrap();
        assert_eq!(crowd.rebuilds(), 2, "one rebuild per eventful slot");
        assert_eq!(crowd.settled_slot(), 7);
    }

    #[test]
    fn join_slots_index_resolved_ids() {
        let plan = step_plan(3, 9);
        let crowd =
            FlashCrowdScheme::from_plan(4, 2, StreamMode::PreRecorded, Construction::Greedy, &plan)
                .unwrap();
        let js = crowd.join_slots();
        assert_eq!(js.len(), 8);
        assert!(js[..5].iter().all(|&s| s == 0));
        assert!(js[5..].iter().all(|&s| s == 9));
    }
}
