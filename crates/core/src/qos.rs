//! Quality-of-service measurements: playback delay, buffer space, neighbors.
//!
//! These are exactly the three axes of the paper's Table 1. The simulator
//! produces one [`NodeQos`] per receiver and aggregates them into a
//! [`QosReport`].

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// QoS observed for one receiver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeQos {
    /// The receiver this record describes.
    pub node: NodeId,
    /// Minimal safe playback start `a(i)`: the earliest slot at which the
    /// node can begin consuming one packet per slot and never hiccup.
    /// Packet `j` is played during slot `a(i) + j`, so this equals the
    /// paper's *playback delay* in time slots.
    pub playback_delay: u64,
    /// Maximum number of packets simultaneously buffered (arrived but not
    /// yet played) when playback starts at `playback_delay`.
    pub max_buffer: usize,
    /// Distinct nodes this receiver sent packets to.
    pub out_neighbors: usize,
    /// Distinct nodes this receiver received packets from.
    pub in_neighbors: usize,
    /// Distinct nodes communicated with in either direction (the paper's
    /// "number of neighbors with which a node needs to communicate").
    pub neighbors: usize,
}

/// Aggregate QoS over all receivers of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosReport {
    /// Scheme identifier (from [`crate::Scheme::name`]).
    pub scheme: String,
    /// Number of receivers measured.
    pub n: usize,
    /// Per-node records, sorted by node id.
    pub nodes: Vec<NodeQos>,
}

impl QosReport {
    /// Build a report, sorting records by node id.
    pub fn new(scheme: String, mut nodes: Vec<NodeQos>) -> Self {
        nodes.sort_by_key(|q| q.node);
        let n = nodes.len();
        QosReport { scheme, n, nodes }
    }

    /// Worst-case playback delay over all receivers (paper: "Max Delay").
    pub fn max_delay(&self) -> u64 {
        self.nodes
            .iter()
            .map(|q| q.playback_delay)
            .max()
            .unwrap_or(0)
    }

    /// Average playback delay (paper: "Ave Delay", `Σ a(i) / N`).
    pub fn avg_delay(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|q| q.playback_delay as f64)
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Worst-case buffer occupancy over all receivers (paper: "Buffer
    /// Size", in packets).
    pub fn max_buffer(&self) -> usize {
        self.nodes.iter().map(|q| q.max_buffer).max().unwrap_or(0)
    }

    /// Average buffer occupancy over receivers.
    pub fn avg_buffer(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|q| q.max_buffer as f64).sum::<f64>() / self.nodes.len() as f64
    }

    /// Worst-case neighbor count (paper: "Num of Neighbors").
    pub fn max_neighbors(&self) -> usize {
        self.nodes.iter().map(|q| q.neighbors).max().unwrap_or(0)
    }

    /// Average neighbor count over receivers.
    pub fn avg_neighbors(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|q| q.neighbors as f64).sum::<f64>() / self.nodes.len() as f64
    }

    /// Record for one node, if present.
    pub fn node(&self, node: NodeId) -> Option<&NodeQos> {
        self.nodes.iter().find(|q| q.node == node)
    }

    /// Playback-delay percentile (nearest-rank; `p ∈ (0, 100]`). The 50th
    /// percentile is the median startup experience, the 95th the tail the
    /// paper's worst-case bounds guard.
    pub fn delay_percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        if self.nodes.is_empty() {
            return 0;
        }
        let mut delays: Vec<u64> = self.nodes.iter().map(|q| q.playback_delay).collect();
        delays.sort_unstable();
        let rank = ((p / 100.0) * delays.len() as f64).ceil() as usize;
        delays[rank.clamp(1, delays.len()) - 1]
    }

    /// Histogram of playback delays: `(delay, node count)` ascending.
    pub fn delay_histogram(&self) -> Vec<(u64, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for q in &self.nodes {
            *map.entry(q.playback_delay).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u32, delay: u64, buf: usize, nbrs: usize) -> NodeQos {
        NodeQos {
            node: NodeId(id),
            playback_delay: delay,
            max_buffer: buf,
            out_neighbors: nbrs,
            in_neighbors: nbrs,
            neighbors: nbrs,
        }
    }

    #[test]
    fn aggregates() {
        let r = QosReport::new(
            "test".into(),
            vec![q(2, 4, 2, 3), q(1, 6, 1, 2), q(3, 2, 5, 1)],
        );
        assert_eq!(r.n, 3);
        assert_eq!(r.max_delay(), 6);
        assert!((r.avg_delay() - 4.0).abs() < 1e-12);
        assert_eq!(r.max_buffer(), 5);
        assert!((r.avg_buffer() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_neighbors(), 3);
        assert!((r.avg_neighbors() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nodes_sorted_and_lookup_works() {
        let r = QosReport::new("test".into(), vec![q(2, 4, 2, 3), q(1, 6, 1, 2)]);
        assert_eq!(r.nodes[0].node, NodeId(1));
        assert_eq!(r.node(NodeId(2)).unwrap().playback_delay, 4);
        assert!(r.node(NodeId(9)).is_none());
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = QosReport::new("empty".into(), vec![]);
        assert_eq!(r.max_delay(), 0);
        assert_eq!(r.avg_delay(), 0.0);
        assert_eq!(r.max_buffer(), 0);
        assert_eq!(r.avg_neighbors(), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = QosReport::new("p".into(), (1..=10).map(|i| q(i, i as u64, 1, 1)).collect());
        assert_eq!(r.delay_percentile(50.0), 5);
        assert_eq!(r.delay_percentile(95.0), 10);
        assert_eq!(r.delay_percentile(10.0), 1);
        assert_eq!(r.delay_percentile(100.0), 10);
    }

    #[test]
    fn histogram_counts_nodes_per_delay() {
        let r = QosReport::new(
            "h".into(),
            vec![q(1, 3, 1, 1), q(2, 3, 1, 1), q(3, 7, 1, 1)],
        );
        assert_eq!(r.delay_histogram(), vec![(3, 2), (7, 1)]);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_zero_rejected() {
        let r = QosReport::new("x".into(), vec![q(1, 1, 1, 1)]);
        r.delay_percentile(0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = QosReport::new("rt".into(), vec![q(1, 6, 1, 2)]);
        let s = serde_json::to_string(&r).unwrap();
        let back: QosReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
