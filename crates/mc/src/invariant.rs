//! The invariant registry: the paper's theorems as pluggable checks.
//!
//! Each [`Invariant`] inspects one finished [`RunResult`] (plus the
//! genome that produced it and the family's closed-form [`Bounds`]) and
//! reports a human-readable violation when the run contradicts the
//! paper's guarantees:
//!
//! * `CollisionFree` — ≤ 1 arrival per node per slot, re-derived from the
//!   transmission trace independently of the engine's own collision
//!   check;
//! * `DelayBound` — worst-case playback delay within the family's bound
//!   (Theorem 2 `h·d` for multi-trees, the chained-cube prediction for
//!   hypercubes, `N` for the chain, BFS depth for the single tree);
//! * `BufferBound` — buffer occupancy within the family's bound (`h·d+1`
//!   for multi-trees, 3 for hypercubes, 2 for the chains);
//! * `InOrderPlayback` — every tracked packet arrives (or is accounted as
//!   a fault loss), per-packet usable slots are consistent with the
//!   reported delay, and nothing is delivered twice;
//! * `NeighborDegree` — `O(d)` neighbors for trees, `O(log N)` for
//!   hypercubes.
//!
//! Engine hard errors (`ReceiveCollision`, `Hiccup`, …) are mapped onto
//! the same invariant names by [`violation_from_error`], so a sabotaged
//! schedule the engine rejects outright and one that merely degrades QoS
//! surface through one reporting channel.

use crate::genome::{Family, Genome, ModeChoice};
use clustream_analysis::{thm2_worst_delay_bound, tree_height};
use clustream_baselines::SingleTreeScheme;
use clustream_core::CoreError;
use clustream_hypercube::HypercubeStream;
use clustream_sim::RunResult;
use std::collections::HashMap;

/// Closed-form per-family QoS bounds for one genome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Worst-case playback delay (slots).
    pub delay: u64,
    /// Worst-case resident buffer (packets).
    pub buffer: u64,
    /// Worst-case neighbor count.
    pub neighbors: u64,
}

/// Compute the family's closed-form bounds for `g`.
///
/// Errors only when the genome is outside the scheme's domain (the same
/// configurations whose schemes fail to build).
pub fn bounds_for(g: &Genome) -> Result<Bounds, CoreError> {
    if g.n == 0 || g.d == 0 {
        return Err(CoreError::InvalidConfig(format!(
            "n = {} and d = {} must both be ≥ 1",
            g.n, g.d
        )));
    }
    Ok(match g.family {
        Family::MultiTree => {
            let hd = thm2_worst_delay_bound(g.n, g.d);
            // Live modes shift the schedule: prebuffered by exactly d,
            // pipelined by at most 2d (pinned by tests/properties.rs).
            let mode_extra = match g.mode {
                ModeChoice::Pre => 0,
                ModeChoice::Buffered => g.d as u64,
                ModeChoice::Pipelined => 2 * g.d as u64,
            };
            Bounds {
                delay: hd + mode_extra,
                buffer: tree_height(g.n, g.d) * g.d as u64 + 1 + mode_extra,
                neighbors: 2 * g.d as u64,
            }
        }
        Family::Hypercube => {
            let s = HypercubeStream::with_groups(g.n, g.d.min(g.n))?;
            let delay = s.cubes().map(|c| c.predicted_delay()).max().unwrap_or(1);
            let max_cube = s.cubes().map(|c| c.size()).max().unwrap_or(1);
            // A node in a cube of size 2^k − 1 exchanges with ≤ k cube
            // partners plus the inter-cube chain links.
            let k = (usize::BITS - (max_cube + 1).leading_zeros()) as u64;
            Bounds {
                delay,
                buffer: 3,
                neighbors: 3 * k + 4,
            }
        }
        Family::Chain => Bounds {
            delay: g.n as u64,
            buffer: 2,
            neighbors: 2,
        },
        Family::SingleTree => {
            let s = SingleTreeScheme::new(g.n, g.d);
            Bounds {
                // BFS layout: the last node is deepest.
                delay: s.depth(g.n as u32).max(1),
                buffer: 2,
                neighbors: g.d as u64 + 1,
            }
        }
    })
}

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated invariant (e.g. `"DelayBound"`).
    pub invariant: String,
    /// Engine label the violation was observed on.
    pub engine: String,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.engine, self.invariant, self.detail)
    }
}

/// Everything an invariant may inspect about one finished run.
pub struct CheckContext<'a> {
    /// The genome that produced the run.
    pub genome: &'a Genome,
    /// Closed-form bounds for the genome's family.
    pub bounds: &'a Bounds,
    /// Engine label (`"reference"`, `"fast"`, `"des"`).
    pub engine: &'a str,
    /// The finished run.
    pub result: &'a RunResult,
}

/// A pluggable per-run invariant.
pub trait Invariant {
    /// Stable name used in violation reports and corpus entries.
    fn name(&self) -> &'static str;
    /// Check one finished run; `Err` carries the violation detail.
    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String>;
}

/// ≤ 1 arrival per node per slot, re-derived from the trace.
pub struct CollisionFree;

impl Invariant for CollisionFree {
    fn name(&self) -> &'static str {
        "CollisionFree"
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let Some(trace) = &ctx.result.trace else {
            return Ok(()); // nothing to re-validate without a trace
        };
        let mut arrivals: HashMap<(u64, u32), u64> = HashMap::new();
        for ev in &trace.events {
            let arrival = ev.slot + ev.latency as u64 - 1;
            let c = arrivals.entry((arrival, ev.to)).or_insert(0);
            *c += 1;
            if *c > 1 {
                return Err(format!(
                    "node {} receives {} packets in arrival slot {arrival}",
                    ev.to, *c
                ));
            }
        }
        Ok(())
    }
}

/// Worst-case playback delay within the family bound.
pub struct DelayBound;

impl Invariant for DelayBound {
    fn name(&self) -> &'static str {
        "DelayBound"
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let measured = ctx.result.qos.max_delay();
        if measured > ctx.bounds.delay {
            return Err(format!(
                "max playback delay {measured} exceeds bound {}",
                ctx.bounds.delay
            ));
        }
        Ok(())
    }
}

/// Buffer occupancy within the family bound.
pub struct BufferBound;

impl Invariant for BufferBound {
    fn name(&self) -> &'static str {
        "BufferBound"
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let measured = ctx.result.qos.max_buffer() as u64;
        if measured > ctx.bounds.buffer {
            return Err(format!(
                "max buffer {measured} exceeds bound {}",
                ctx.bounds.buffer
            ));
        }
        Ok(())
    }
}

/// Strictly in-order playback: completeness (or fault-accounted losses),
/// per-packet consistency with the reported delay, no duplicates.
pub struct InOrderPlayback;

impl Invariant for InOrderPlayback {
    fn name(&self) -> &'static str {
        "InOrderPlayback"
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let r = ctx.result;
        if r.duplicate_deliveries > 0 {
            return Err(format!("{} duplicate deliveries", r.duplicate_deliveries));
        }
        for q in &r.qos.nodes {
            let mut missing = 0usize;
            for j in 0..r.arrivals.track_packets() {
                match r.arrivals.usable_slot(q.node, clustream_core::PacketId(j)) {
                    Some(s) => {
                        // a(i) = max_j (usable(i,j) − j): no packet may be
                        // later than the node's reported delay admits.
                        if s.t() > q.playback_delay + j {
                            return Err(format!(
                                "node {} packet {j} usable at {} > delay {} + {j}",
                                q.node,
                                s.t(),
                                q.playback_delay
                            ));
                        }
                    }
                    None => missing += 1,
                }
            }
            match &r.loss {
                None => {
                    if missing > 0 {
                        return Err(format!(
                            "node {} missing {missing} tracked packets in a fault-free run",
                            q.node
                        ));
                    }
                }
                Some(loss) => {
                    let reported = loss
                        .missing
                        .iter()
                        .find(|(n, _)| *n == q.node)
                        .map_or(0, |(_, m)| *m);
                    if reported != missing {
                        return Err(format!(
                            "node {} loss report claims {reported} missing, arrivals show {missing}",
                            q.node
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Neighbor count within the family bound (footnote 2: `O(d)` for trees).
pub struct NeighborDegree;

impl Invariant for NeighborDegree {
    fn name(&self) -> &'static str {
        "NeighborDegree"
    }

    fn check(&self, ctx: &CheckContext<'_>) -> Result<(), String> {
        let measured = ctx.result.qos.max_neighbors() as u64;
        if measured > ctx.bounds.neighbors {
            return Err(format!(
                "max neighbor count {measured} exceeds bound {}",
                ctx.bounds.neighbors
            ));
        }
        Ok(())
    }
}

/// The default registry: every per-run invariant the checker knows.
pub fn registry() -> Vec<Box<dyn Invariant>> {
    vec![
        Box::new(CollisionFree),
        Box::new(DelayBound),
        Box::new(BufferBound),
        Box::new(InOrderPlayback),
        Box::new(NeighborDegree),
    ]
}

/// Run every registry invariant against one finished run.
pub fn check_result(
    g: &Genome,
    bounds: &Bounds,
    engine: &str,
    result: &RunResult,
) -> Vec<Violation> {
    let ctx = CheckContext {
        genome: g,
        bounds,
        engine,
        result,
    };
    registry()
        .iter()
        .filter_map(|inv| {
            inv.check(&ctx).err().map(|detail| Violation {
                invariant: inv.name().to_string(),
                engine: engine.to_string(),
                detail,
            })
        })
        .collect()
}

/// Map an engine hard error onto the invariant it contradicts.
pub fn violation_from_error(e: &CoreError, engine: &str) -> Violation {
    let invariant = match e {
        CoreError::ReceiveCollision { .. } | CoreError::SendCapacityExceeded { .. } => {
            "CollisionFree"
        }
        CoreError::Hiccup { .. } => "InOrderPlayback",
        _ => "ModelValidity",
    };
    Violation {
        invariant: invariant.to_string(),
        engine: engine.to_string(),
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::ConstructionChoice;

    #[test]
    fn multitree_bounds_match_theorem2() {
        let g = Genome::clean(Family::MultiTree, 40, 3, ConstructionChoice::Greedy);
        let b = bounds_for(&g).unwrap();
        assert_eq!(b.delay, thm2_worst_delay_bound(40, 3));
        assert_eq!(b.buffer, tree_height(40, 3) * 3 + 1);
        assert_eq!(b.neighbors, 6);
    }

    #[test]
    fn live_modes_widen_the_delay_bound() {
        let mut g = Genome::clean(Family::MultiTree, 40, 3, ConstructionChoice::Greedy);
        let pre = bounds_for(&g).unwrap().delay;
        g.mode = ModeChoice::Buffered;
        assert_eq!(bounds_for(&g).unwrap().delay, pre + 3);
        g.mode = ModeChoice::Pipelined;
        assert_eq!(bounds_for(&g).unwrap().delay, pre + 6);
    }

    #[test]
    fn chain_bounds_are_tight() {
        let g = Genome::clean(Family::Chain, 12, 2, ConstructionChoice::Greedy);
        let b = bounds_for(&g).unwrap();
        assert_eq!((b.delay, b.buffer, b.neighbors), (12, 2, 2));
    }
}
