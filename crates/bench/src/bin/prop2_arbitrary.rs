//! Proposition 2 and Theorem 4: chained hypercubes for arbitrary N —
//! O(log²N) worst delay, O(1) buffers, O(logN) neighbors, average delay
//! ≤ 2·log₂N.

use clustream_bench::{prop2_thm4, render_table};
use clustream_workloads::geometric_grid;

fn main() {
    let ns = geometric_grid(2, 2000, 14);
    let rows = prop2_thm4(&ns);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.cubes.to_string(),
                r.measured_max_delay.to_string(),
                r.predicted_max_delay.to_string(),
                format!("{:.2}", r.measured_avg_delay),
                format!("{:.2}", r.thm4_bound),
                r.measured_buffer.to_string(),
                r.measured_neighbors.to_string(),
            ]
        })
        .collect();
    println!("Proposition 2 / Theorem 4 — arbitrary N hypercube chains\n");
    println!(
        "{}",
        render_table(
            &[
                "N",
                "cubes",
                "max",
                "predicted",
                "avg",
                "2log₂N",
                "buffer",
                "nbrs"
            ],
            &table
        )
    );
}
