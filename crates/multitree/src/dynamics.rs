//! Node addition and deletion under churn (paper appendix).
//!
//! The appendix maintains the multi-tree invariants "on the fly": departing
//! nodes are replaced by *all-leaf* nodes (nodes that are leaves in every
//! tree, the `G_d` group), and arriving nodes join as all-leaf nodes,
//! occasionally promoting an all-leaf node to interior when a tree level
//! fills up. We represent the paper's bookkeeping with explicit **dummy
//! slots**: the population is always padded to a multiple of `d`, the tail
//! `d` positions of every tree hold the same set of `d` all-leaf nodes, and
//! dummies are a subset of that set. Then:
//!
//! * **addition** with a dummy available is a pure relabel (the paper's
//!   "replace the deleted node with the newly added one" — zero swaps);
//! * **addition** with no dummy grows every tree by `d` positions; first,
//!   per tree, the position `p* = N_pad/d` about to become interior is
//!   swapped with the same-residue tail position (the paper's Step 1,
//!   "swap the node in position ⌊N/d⌋ with … position N−d+(r₂−1)"), then
//!   the new node and `d−1` fresh dummies fill the new tail so that the
//!   new node's positions cover all residues (the paper's Step 2 layout
//!   "position N+1 in T_0, N+2 in T_1, …");
//! * **deletion** of a non-all-leaf node swaps it with a real all-leaf
//!   node `x` in all `d` trees (the paper's "find replacement") and then
//!   relabels the departed node's slot as a dummy;
//! * **eager** mode shrinks the forest by `d` positions as soon as all `d`
//!   tail nodes are dummies; **lazy** mode defers the shrink until a
//!   further deletion forces it, so a deletion followed by an addition
//!   costs zero swaps — exactly the optimization the paper's "lazy"
//!   variants target.
//!
//! Every operation reports the number of per-tree position swaps and the
//! set of *displaced* receivers (nodes whose positions changed and may
//! therefore suffer transient hiccups — the paper bounds these by `d²`).
//!
//! # A note on the paper's "restore property" step
//!
//! Because every receiver appears once in each of the `d` trees and its
//! position residues mod `d` must be pairwise distinct, **every node uses
//! every residue exactly once**. Consequently the only churn moves that
//! provably preserve the no-collision invariant are (a) swapping two
//! same-residue positions within one tree and (b) exchanging the *entire
//! position vectors* of two nodes. The paper's deletion Step 2 ("swap the
//! nodes in `P(i)` with the nodes in positions `N−d` to `N−1` in each
//! tree", up to `d²` swaps) is neither, and one can construct states where
//! no assignment of the demoted interior nodes to tail positions keeps all
//! residues distinct — i.e. the literal step can introduce receive
//! collisions. We therefore implement the boundary-crossing case (the
//! interior level shrinking by one) as a **rebuild** of the forest over the
//! surviving members, report it honestly as displacing everyone, and rely
//! on the lazy variant to make it rare — which is precisely the
//! optimization the paper's lazy algorithms target ("these swaps are not
//! really necessary if the next event is an addition").

use crate::groups::Groups;
use crate::tree::DisjointTrees;
use crate::Construction;
use clustream_core::CoreError;
use std::collections::BTreeMap;

/// External, stable identity of a receiver across churn.
pub type ExtId = u64;

/// Report of one churn operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnReport {
    /// Per-tree position swaps performed.
    pub swaps: usize,
    /// External ids of real receivers whose position changed in at least
    /// one tree (candidates for transient hiccups).
    pub displaced: Vec<ExtId>,
    /// Whether the forest grew (`+d` positions) or shrank (`−d`).
    pub resized: Option<isize>,
}

/// A churn-capable multi-tree forest.
///
/// ```
/// use clustream_multitree::{Construction, DynamicForest};
///
/// let mut forest = DynamicForest::new(15, 3, Construction::Greedy, /*lazy=*/ true)?;
/// let (newcomer, report) = forest.add();
/// assert_eq!(report.swaps <= 3, true); // paper: at most d swaps per join
/// forest.remove(newcomer)?;
/// forest.validate()?;                  // all §2.2 invariants still hold
/// assert_eq!(forest.n_real(), 15);
/// # Ok::<(), clustream_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicForest {
    d: usize,
    /// `labels[h−1]`: external id of internal handle `h`, `None` = dummy.
    labels: Vec<Option<ExtId>>,
    /// `trees[k][p−1]` = handle at position `p` of tree `k`.
    trees: Vec<Vec<u32>>,
    /// `pos_of[k][h−1]` = position of handle `h` in tree `k`.
    pos_of: Vec<Vec<u32>>,
    next_ext: ExtId,
    lazy: bool,
    total_swaps: u64,
    /// Scan hint: no dummy slot sits at a `labels` index below this, so
    /// `add` finds its reuse slot in amortised O(1) instead of O(N_pad)
    /// — the difference between O(N) and O(N²) for a flash crowd of N
    /// joins.
    first_free: usize,
}

impl DynamicForest {
    /// Build from a static construction with `n` initial receivers
    /// (external ids `1..=n`). `lazy` selects the deferred-swap variants.
    pub fn new(
        n: usize,
        d: usize,
        construction: Construction,
        lazy: bool,
    ) -> Result<Self, CoreError> {
        let f = crate::build_forest(n, d, construction)?;
        let n_pad = f.n_pad();
        let labels = (1..=n_pad as u32)
            .map(|h| {
                if h as usize <= n {
                    Some(h as ExtId)
                } else {
                    None
                }
            })
            .collect();
        let trees: Vec<Vec<u32>> = (0..d).map(|k| f.tree(k).to_vec()).collect();
        let mut pos_of = vec![vec![0u32; n_pad]; d];
        for (k, t) in trees.iter().enumerate() {
            for (i, &h) in t.iter().enumerate() {
                pos_of[k][h as usize - 1] = (i + 1) as u32;
            }
        }
        Ok(DynamicForest {
            d,
            labels,
            trees,
            pos_of,
            next_ext: n as ExtId + 1,
            lazy,
            total_swaps: 0,
            first_free: n,
        })
    }

    /// Tree degree.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Current number of real receivers.
    pub fn n_real(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Current padded population (positions per tree).
    pub fn n_pad(&self) -> usize {
        self.labels.len()
    }

    /// Number of dummy slots.
    pub fn dummies(&self) -> usize {
        self.n_pad() - self.n_real()
    }

    /// Total per-tree position swaps performed so far.
    pub fn total_swaps(&self) -> u64 {
        self.total_swaps
    }

    /// External ids of current receivers, ascending.
    pub fn members(&self) -> Vec<ExtId> {
        let mut m: Vec<ExtId> = self.labels.iter().flatten().copied().collect();
        m.sort_unstable();
        m
    }

    /// Internal handle at position `pos ∈ 1..=n_pad` of tree `k`.
    pub fn handle_at(&self, k: usize, pos: usize) -> Option<u32> {
        self.trees.get(k).and_then(|t| t.get(pos - 1)).copied()
    }

    /// External id of internal handle `h` (`None` for dummies).
    pub fn ext_of(&self, h: u32) -> Option<ExtId> {
        self.labels.get(h as usize - 1).copied().flatten()
    }

    fn interior_positions(&self) -> usize {
        self.n_pad() / self.d - 1
    }

    fn handle_of(&self, ext: ExtId) -> Option<u32> {
        self.labels
            .iter()
            .position(|l| *l == Some(ext))
            .map(|i| (i + 1) as u32)
    }

    /// Whether handle `h` sits in the tail-`d` positions of every tree
    /// (the all-leaf set).
    fn is_all_leaf(&self, h: u32) -> bool {
        let tail_from = self.n_pad() - self.d + 1;
        (0..self.d).all(|k| (self.pos_of[k][h as usize - 1] as usize) >= tail_from)
    }

    /// Turn handle `h`'s slot into a dummy, keeping the `first_free`
    /// scan hint sound (no dummy below the hint).
    fn clear_label(&mut self, h: u32) {
        self.labels[h as usize - 1] = None;
        self.first_free = self.first_free.min(h as usize - 1);
    }

    /// Swap the occupants of positions `pa` and `pb` in tree `k`.
    fn swap_positions(&mut self, k: usize, pa: usize, pb: usize) {
        if pa == pb {
            return;
        }
        let ha = self.trees[k][pa - 1];
        let hb = self.trees[k][pb - 1];
        self.trees[k].swap(pa - 1, pb - 1);
        self.pos_of[k][ha as usize - 1] = pb as u32;
        self.pos_of[k][hb as usize - 1] = pa as u32;
        self.total_swaps += 1;
    }

    /// Add a receiver; returns its external id and the churn report.
    pub fn add(&mut self) -> (ExtId, ChurnReport) {
        let ext = self.next_ext;
        self.next_ext += 1;

        // Reuse a dummy slot when available: zero swaps, nobody displaced.
        let start = self.first_free.min(self.labels.len());
        if let Some(off) = self.labels[start..].iter().position(|l| l.is_none()) {
            let i = start + off;
            self.labels[i] = Some(ext);
            self.first_free = i + 1;
            return (
                ext,
                ChurnReport {
                    swaps: 0,
                    displaced: vec![],
                    resized: None,
                },
            );
        }

        // Grow: every tree gains d positions; position p* = N_pad/d becomes
        // interior and must hold a (distinct per tree) all-leaf node.
        let n_pad = self.n_pad();
        let d = self.d;
        let p_star = n_pad / d;
        let tail_from = n_pad - d + 1;
        let mut displaced = Vec::new();
        let mut swaps = 0usize;
        for k in 0..d {
            // Tail position with the same residue as p*.
            let q_star = (tail_from..=n_pad)
                .find(|q| (q - 1) % d == (p_star - 1) % d)
                .expect("tail spans all residues");
            if q_star != p_star {
                for &p in &[p_star, q_star] {
                    if let Some(ext) = self.labels[self.trees[k][p - 1] as usize - 1] {
                        displaced.push(ext);
                    }
                }
                self.swap_positions(k, p_star, q_star);
                swaps += 1;
            }
        }

        // Extend: new handles n_pad+1 (the new receiver) and n_pad+2..+d
        // (fresh dummies); handle n_pad+1+j goes to position
        // n_pad+1+((j+k) mod d) in tree k, covering all residues.
        self.labels.push(Some(ext));
        for _ in 1..d {
            self.labels.push(None);
        }
        self.first_free = n_pad + 1;
        for k in 0..d {
            for j in 0..d {
                let h = (n_pad + 1 + j) as u32;
                let p = n_pad + 1 + ((j + k) % d);
                if self.trees[k].len() < n_pad + d {
                    self.trees[k].resize(n_pad + d, 0);
                }
                self.trees[k][p - 1] = h;
            }
            self.pos_of[k].resize(n_pad + d, 0);
            for p in n_pad + 1..=n_pad + d {
                let h = self.trees[k][p - 1];
                self.pos_of[k][h as usize - 1] = p as u32;
            }
        }

        displaced.sort_unstable();
        displaced.dedup();
        (
            ext,
            ChurnReport {
                swaps,
                displaced,
                resized: Some(d as isize),
            },
        )
    }

    /// Remove the receiver with external id `ext`.
    pub fn remove(&mut self, ext: ExtId) -> Result<ChurnReport, CoreError> {
        let h = self
            .handle_of(ext)
            .ok_or(CoreError::InvalidConfig(format!("no member with id {ext}")))?;
        if self.n_real() == 1 {
            return Err(CoreError::InvalidConfig(
                "cannot remove the last receiver".into(),
            ));
        }

        let mut swaps = 0usize;
        let mut displaced = Vec::new();
        let mut resized = None;
        let mut h = h;

        if !self.is_all_leaf(h) {
            // Find replacement x: the real all-leaf node at the highest
            // position of T_0 (the paper's "last all leaf node in tree
            // T_0"). In lazy mode the whole tail may be dummies, in which
            // case the deferred shrink is forced now.
            let find_x = |s: &DynamicForest| {
                (s.n_pad() - s.d + 1..=s.n_pad())
                    .rev()
                    .map(|p| s.trees[0][p - 1])
                    .find(|&cand| s.labels[cand as usize - 1].is_some())
            };
            let x = match find_x(self) {
                Some(x) => x,
                None => {
                    let rep = self.shrink_rebuild();
                    swaps += rep.swaps;
                    displaced.extend(rep.displaced);
                    resized = rep.resized;
                    h = self.handle_of(ext).expect("member survives rebuild");
                    if self.is_all_leaf(h) {
                        // The rebuild may have demoted the victim to the
                        // all-leaf set; no replacement needed.
                        self.clear_label(h);
                        displaced.sort_unstable();
                        displaced.dedup();
                        return Ok(ChurnReport {
                            swaps,
                            displaced,
                            resized,
                        });
                    }
                    find_x(self).ok_or(CoreError::InvalidConfig(
                        "no real all-leaf replacement after rebuild".into(),
                    ))?
                }
            };
            // Swap i with x in all d trees (a full-vector exchange, which
            // provably preserves every invariant).
            for k in 0..self.d {
                let pi = self.pos_of[k][h as usize - 1] as usize;
                let px = self.pos_of[k][x as usize - 1] as usize;
                self.swap_positions(k, pi, px);
                swaps += 1;
            }
            displaced.push(self.labels[x as usize - 1].expect("x is real"));
        }

        // The departed node now sits in the all-leaf tail: make its slot a
        // dummy.
        self.clear_label(h);

        // Eager mode restores the "fewer than d dummies" property
        // immediately; lazy mode defers until a later event forces it.
        if !self.lazy && self.dummies() >= self.d {
            let rep = self.shrink_rebuild();
            swaps += rep.swaps;
            displaced.extend(rep.displaced);
            resized = rep.resized;
        }

        displaced.sort_unstable();
        displaced.dedup();
        Ok(ChurnReport {
            swaps,
            displaced,
            resized,
        })
    }

    /// Shrink by rebuilding the forest over the surviving members (the
    /// interior level boundary moved; see the module docs for why a local
    /// `d²`-swap restore is unsound). External ids are preserved; the swap
    /// count is reported as the new `N_pad` (every slot is re-placed).
    fn shrink_rebuild(&mut self) -> ChurnReport {
        let members = self.members();
        let n = members.len();
        debug_assert!(n >= 1);
        let fresh = crate::greedy::greedy_forest(n, self.d).expect("rebuild parameters are valid");
        let n_pad = fresh.n_pad();
        let old_pad = self.n_pad();
        self.labels = (1..=n_pad as u32)
            .map(|h| (h as usize <= n).then(|| members[h as usize - 1]))
            .collect();
        self.first_free = n;
        self.trees = (0..self.d).map(|k| fresh.tree(k).to_vec()).collect();
        self.pos_of = vec![vec![0u32; n_pad]; self.d];
        for k in 0..self.d {
            for p in 1..=n_pad {
                let h = self.trees[k][p - 1];
                self.pos_of[k][h as usize - 1] = p as u32;
            }
        }
        self.total_swaps += n_pad as u64;
        ChurnReport {
            swaps: n_pad,
            displaced: members,
            resized: Some(n_pad as isize - old_pad as isize),
        }
    }

    /// Verify every structural invariant; used by tests after each op.
    pub fn validate(&self) -> Result<(), CoreError> {
        let d = self.d;
        let n_pad = self.n_pad();
        if !n_pad.is_multiple_of(d) {
            return Err(CoreError::InvalidConfig("n_pad not a multiple of d".into()));
        }
        let i_count = self.interior_positions();
        let tail_from = n_pad - d + 1;

        // Permutations + pos_of consistency.
        for k in 0..d {
            let mut seen = vec![false; n_pad + 1];
            for p in 1..=n_pad {
                let h = self.trees[k][p - 1];
                if h == 0 || h as usize > n_pad || seen[h as usize] {
                    return Err(CoreError::InvalidConfig(format!(
                        "tree {k} not a permutation at position {p}"
                    )));
                }
                seen[h as usize] = true;
                if self.pos_of[k][h as usize - 1] as usize != p {
                    return Err(CoreError::InvalidConfig("pos_of out of sync".into()));
                }
            }
        }

        // The tail-d positions hold the same node set in every tree.
        let tail_set = |k: usize| {
            let mut s: Vec<u32> = (tail_from..=n_pad).map(|p| self.trees[k][p - 1]).collect();
            s.sort_unstable();
            s
        };
        let t0 = tail_set(0);
        for k in 1..d {
            if tail_set(k) != t0 {
                return Err(CoreError::InvalidConfig(format!(
                    "all-leaf sets differ between trees 0 and {k}"
                )));
            }
        }

        for h in 1..=n_pad as u32 {
            // Dummies must be all-leaf.
            if self.labels[h as usize - 1].is_none() && !self.is_all_leaf(h) {
                return Err(CoreError::InvalidConfig(format!(
                    "dummy handle {h} is not all-leaf"
                )));
            }
            // Interior-disjoint.
            let interior_in = (0..d)
                .filter(|&k| (self.pos_of[k][h as usize - 1] as usize) <= i_count)
                .count();
            if interior_in > 1 {
                return Err(CoreError::InvalidConfig(format!(
                    "handle {h} interior in {interior_in} trees"
                )));
            }
            // No-collision residues.
            let mut residues = vec![false; d];
            for k in 0..d {
                let r = (self.pos_of[k][h as usize - 1] as usize - 1) % d;
                if residues[r] {
                    return Err(CoreError::InvalidConfig(format!(
                        "handle {h} repeats residue {r}"
                    )));
                }
                residues[r] = true;
            }
        }
        Ok(())
    }

    /// Current playback delay of every member (external id → `a(i)` under
    /// the pre-recorded schedule of a compacted snapshot).
    ///
    /// Comparing this map across a churn operation estimates **hiccups**:
    /// a displaced member whose delay grows by `Δ` must either stall
    /// playback for `Δ` slots or have pre-buffered `Δ` extra packets —
    /// the effect the paper's appendix discusses qualitatively ("nodes
    /// participating in the swapping process may suffer from hiccups").
    pub fn member_delays(&self) -> Result<BTreeMap<ExtId, u64>, CoreError> {
        let (snapshot, map) = self.snapshot()?;
        let scheme = crate::schedule::MultiTreeScheme::new(
            snapshot,
            crate::schedule::StreamMode::PreRecorded,
        );
        let profile = crate::delay::DelayProfile::compute(&scheme)?;
        Ok(map
            .into_iter()
            .map(|(ext, id)| {
                let q = profile
                    .qos()
                    .node(clustream_core::NodeId(id))
                    .expect("snapshot covers every member");
                (ext, q.playback_delay)
            })
            .collect())
    }

    /// Estimated hiccup slots caused by the last operation: for each
    /// member in `displaced`, the growth of its playback delay from
    /// `before` (a [`DynamicForest::member_delays`] map taken before the
    /// operation) to now.
    pub fn hiccup_estimate(
        &self,
        before: &BTreeMap<ExtId, u64>,
        displaced: &[ExtId],
    ) -> Result<u64, CoreError> {
        let after = self.member_delays()?;
        Ok(displaced
            .iter()
            .filter_map(|ext| match (before.get(ext), after.get(ext)) {
                (Some(&b), Some(&a)) => Some(a.saturating_sub(b)),
                _ => None, // joined or departed during the op
            })
            .sum())
    }

    /// Compact to a static [`DisjointTrees`] snapshot (real receivers get
    /// contiguous ids `1..=N` in ascending external-id order; dummies take
    /// the top ids), suitable for [`crate::MultiTreeScheme`]. Also returns
    /// the external-id ↦ snapshot-id mapping.
    pub fn snapshot(&self) -> Result<(DisjointTrees, BTreeMap<ExtId, u32>), CoreError> {
        let mut work = self.clone();
        // A deferred shrink (lazy mode) would leave d dummies; compact it
        // away so Groups::new sees dummies < d.
        if work.dummies() >= work.d {
            work.shrink_rebuild();
        }
        let n_pad = work.n_pad();
        let n_real = work.n_real();
        // handle → snapshot id
        let mut ext_sorted: Vec<(ExtId, u32)> = work
            .labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|e| (e, (i + 1) as u32)))
            .collect();
        ext_sorted.sort_unstable();
        let mut id_of_handle = vec![0u32; n_pad];
        let mut ext_to_id = BTreeMap::new();
        for (rank, &(ext, h)) in ext_sorted.iter().enumerate() {
            id_of_handle[h as usize - 1] = (rank + 1) as u32;
            ext_to_id.insert(ext, (rank + 1) as u32);
        }
        let mut next_dummy = n_real as u32;
        for (i, l) in work.labels.iter().enumerate() {
            if l.is_none() {
                next_dummy += 1;
                id_of_handle[i] = next_dummy;
            }
        }
        let groups = Groups::new(n_real, work.d)?;
        let positions: Vec<Vec<u32>> = (0..work.d)
            .map(|k| {
                (1..=n_pad)
                    .map(|p| id_of_handle[work.trees[k][p - 1] as usize - 1])
                    .collect()
            })
            .collect();
        let f = DisjointTrees::from_positions(groups, positions)?;
        Ok((f, ext_to_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn forest(n: usize, d: usize, lazy: bool) -> DynamicForest {
        DynamicForest::new(n, d, Construction::Greedy, lazy).unwrap()
    }

    #[test]
    fn fresh_forest_validates() {
        for (n, d) in [(15, 3), (14, 3), (8, 2), (25, 5)] {
            forest(n, d, false).validate().unwrap();
        }
    }

    #[test]
    fn add_into_dummy_slot_is_free() {
        // N = 14, d = 3 ⇒ one dummy; the first addition must be a relabel.
        let mut f = forest(14, 3, false);
        assert_eq!(f.dummies(), 1);
        let (ext, rep) = f.add();
        assert_eq!(ext, 15);
        assert_eq!(rep.swaps, 0);
        assert!(rep.displaced.is_empty());
        assert_eq!(rep.resized, None);
        assert_eq!(f.n_real(), 15);
        f.validate().unwrap();
    }

    #[test]
    fn add_when_full_grows_by_d() {
        // N = 15, d = 3 (d | N): growth with at most d swaps.
        let mut f = forest(15, 3, false);
        assert_eq!(f.dummies(), 0);
        let (ext, rep) = f.add();
        assert_eq!(ext, 16);
        assert!(
            rep.swaps <= 3,
            "paper: between 0 and d swaps, got {}",
            rep.swaps
        );
        assert_eq!(rep.resized, Some(3));
        assert_eq!(f.n_pad(), 18);
        assert_eq!(f.n_real(), 16);
        assert_eq!(f.dummies(), 2);
        f.validate().unwrap();
    }

    #[test]
    fn remove_all_leaf_node_is_free() {
        let mut f = forest(15, 3, false);
        // Node 14 is in G_d (ids 13..15) — all-leaf initially.
        let rep = f.remove(14).unwrap();
        assert_eq!(rep.swaps, 0);
        assert!(rep.displaced.is_empty());
        assert_eq!(f.n_real(), 14);
        f.validate().unwrap();
    }

    #[test]
    fn remove_interior_node_swaps_d_times() {
        let mut f = forest(15, 3, false);
        // Node 1 is interior in T_0.
        let rep = f.remove(1).unwrap();
        assert_eq!(rep.swaps, 3, "one position swap per tree");
        assert_eq!(rep.displaced.len(), 1, "the replacement x is displaced");
        assert!(!f.members().contains(&1));
        f.validate().unwrap();
    }

    #[test]
    fn eager_shrinks_when_dummies_reach_d() {
        let mut f = forest(15, 3, false);
        f.remove(13).unwrap();
        f.remove(14).unwrap();
        let rep = f.remove(15).unwrap();
        assert_eq!(rep.resized, Some(-3));
        assert_eq!(f.n_pad(), 12);
        assert_eq!(f.dummies(), 0);
        f.validate().unwrap();
    }

    #[test]
    fn lazy_defers_shrink_and_saves_swaps_on_readd() {
        let mut lazy = forest(15, 3, true);
        lazy.remove(13).unwrap();
        lazy.remove(14).unwrap();
        let rep = lazy.remove(15).unwrap();
        assert_eq!(rep.resized, None, "lazy defers the shrink");
        assert_eq!(lazy.dummies(), 3);
        let before = lazy.total_swaps();
        let (_, rep) = lazy.add();
        assert_eq!(rep.swaps, 0, "lazy re-add reuses a dummy slot");
        assert_eq!(lazy.total_swaps(), before);
        lazy.validate().unwrap();

        // Eager pays: shrink at the third removal, then growth swaps on
        // the re-add.
        let mut eager = forest(15, 3, false);
        eager.remove(13).unwrap();
        eager.remove(14).unwrap();
        eager.remove(15).unwrap();
        let (_, rep) = eager.add();
        assert_eq!(rep.resized, Some(3), "eager must regrow");
        eager.validate().unwrap();
    }

    #[test]
    fn lazy_shrinks_when_forced() {
        let mut f = forest(15, 3, true);
        f.remove(13).unwrap();
        f.remove(14).unwrap();
        f.remove(15).unwrap();
        assert_eq!(f.dummies(), 3);
        // A fourth removal would push dummies past d: shrink must fire.
        let rep = f.remove(12).unwrap();
        assert_eq!(rep.resized, Some(-3));
        assert!(f.dummies() < 3);
        f.validate().unwrap();
    }

    #[test]
    fn cannot_remove_unknown_or_last() {
        let mut f = forest(2, 2, false);
        assert!(f.remove(99).is_err());
        f.remove(1).unwrap();
        assert!(f.remove(2).is_err(), "refuse to empty the forest");
    }

    #[test]
    fn snapshot_roundtrips_to_valid_static_forest() {
        let mut f = forest(15, 3, false);
        f.remove(1).unwrap();
        f.add();
        f.remove(7).unwrap();
        let (s, map) = f.snapshot().unwrap();
        s.validate().unwrap();
        assert_eq!(s.n(), 14);
        assert_eq!(map.len(), 14);
        // Mapping covers exactly the members.
        for m in f.members() {
            assert!(map.contains_key(&m));
        }
    }

    #[test]
    fn snapshot_compacts_lazy_dummies() {
        let mut f = forest(15, 3, true);
        f.remove(13).unwrap();
        f.remove(14).unwrap();
        f.remove(15).unwrap();
        assert_eq!(f.dummies(), 3);
        let (s, _) = f.snapshot().unwrap();
        s.validate().unwrap();
        assert_eq!(s.n(), 12);
        assert_eq!(s.n_pad(), 12);
    }

    #[test]
    fn random_churn_preserves_invariants() {
        for seed in 0..8u64 {
            for &(n, d) in &[(12usize, 3usize), (16, 4), (10, 2)] {
                for &lazy in &[false, true] {
                    let mut rng = ChaCha8Rng::seed_from_u64(seed * 31 + d as u64);
                    let mut f = forest(n, d, lazy);
                    for step in 0..120 {
                        if rng.gen_bool(0.5) && f.n_real() > 1 {
                            let members = f.members();
                            let victim = members[rng.gen_range(0..members.len())];
                            f.remove(victim).unwrap();
                        } else {
                            f.add();
                        }
                        f.validate().unwrap_or_else(|e| {
                            panic!("seed {seed} N={n} d={d} lazy={lazy} step {step}: {e}")
                        });
                    }
                    // Snapshot still schedulable.
                    let (s, _) = f.snapshot().unwrap();
                    s.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn member_delays_cover_all_members_and_respect_thm2() {
        let mut f = forest(15, 3, false);
        f.remove(1).unwrap();
        f.add();
        let delays = f.member_delays().unwrap();
        assert_eq!(delays.len(), f.n_real());
        let h = 3u64; // N = 15, d = 3
        for (&ext, &a) in &delays {
            assert!(a <= h * 3, "member {ext}: delay {a}");
        }
    }

    #[test]
    fn hiccup_estimate_is_zero_for_free_operations() {
        // Adding into a dummy slot displaces nobody.
        let mut f = forest(14, 3, false);
        let before = f.member_delays().unwrap();
        let (_, rep) = f.add();
        assert!(rep.displaced.is_empty());
        let hiccup = f.hiccup_estimate(&before, &rep.displaced).unwrap();
        assert_eq!(hiccup, 0);
    }

    #[test]
    fn hiccup_estimate_counts_delay_growth_for_swaps() {
        // Removing an interior node swaps in a tail node, whose delay can
        // only move; the estimate is finite and bounded by h·d per node.
        let mut f = forest(15, 3, false);
        let before = f.member_delays().unwrap();
        let rep = f.remove(1).unwrap();
        assert_eq!(rep.displaced.len(), 1);
        let hiccup = f.hiccup_estimate(&before, &rep.displaced).unwrap();
        assert!(hiccup <= 9, "hiccup {hiccup} exceeds h·d");
    }

    #[test]
    fn displaced_counts_stay_within_paper_bound() {
        // The paper bounds hiccup-affected nodes by d² per event.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let d = 4;
        let mut f = forest(32, d, false);
        for _ in 0..200 {
            let rep = if rng.gen_bool(0.5) && f.n_real() > 1 {
                let members = f.members();
                let victim = members[rng.gen_range(0..members.len())];
                f.remove(victim).unwrap()
            } else {
                f.add().1
            };
            // The paper's d² bound applies to the incremental operations;
            // a shrink (negative resize) is a rebuild and displaces
            // everyone by design.
            if !matches!(rep.resized, Some(r) if r < 0) {
                assert!(
                    rep.displaced.len() <= d * d,
                    "{} displaced > d² = {}",
                    rep.displaced.len(),
                    d * d
                );
            }
        }
    }
}
