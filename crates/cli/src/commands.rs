//! The CLI subcommands.

use crate::args::{ArgMap, CliError};
use clustream_baselines::{ChainScheme, SingleTreeScheme};
use clustream_core::{NodeId, PacketId, Scheme};
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{greedy_forest, node_calendar, MultiTreeScheme, StreamMode};
use clustream_overlay::{plan_session, ClusterRequirement, IntraScheme};
use clustream_sim::{DiffHarness, FastSimulator, RunResult, SimConfig, Simulator};
use std::fmt::Write as _;

fn parse_mode(args: &ArgMap) -> Result<StreamMode, CliError> {
    match args.optional("mode").unwrap_or("pre") {
        "pre" => Ok(StreamMode::PreRecorded),
        "buffered" => Ok(StreamMode::LivePrebuffered),
        "pipelined" => Ok(StreamMode::LivePipelined),
        other => Err(CliError::Usage(format!(
            "--mode must be pre|buffered|pipelined, got `{other}`"
        ))),
    }
}

/// Which slot engine executes the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    /// The readable reference engine.
    Reference,
    /// The allocation-light fast engine (bit-identical results).
    Fast,
    /// Both engines, with a field-by-field equality check.
    Checked,
}

fn parse_engine(args: &ArgMap) -> Result<EngineChoice, CliError> {
    match args.optional("engine").unwrap_or("fast") {
        "reference" => Ok(EngineChoice::Reference),
        "fast" => Ok(EngineChoice::Fast),
        "checked" => Ok(EngineChoice::Checked),
        other => Err(CliError::Usage(format!(
            "--engine must be reference|fast|checked, got `{other}`"
        ))),
    }
}

fn build_scheme(args: &ArgMap) -> Result<Box<dyn Scheme>, CliError> {
    let n = args.required_usize("n")?;
    Ok(match args.required("scheme")? {
        "multitree" => {
            let d = args.usize_or("d", 2)?;
            Box::new(MultiTreeScheme::new(
                greedy_forest(n, d)?,
                parse_mode(args)?,
            ))
        }
        // Hypercubes default to a single chain (d = 1 source split).
        "hypercube" => {
            let d = args.usize_or("d", 1)?;
            Box::new(HypercubeStream::with_groups(n, d.min(n))?)
        }
        "chain" => Box::new(ChainScheme::new(n)),
        "singletree" => Box::new(SingleTreeScheme::new(n, args.usize_or("d", 2)?)),
        other => {
            return Err(CliError::Usage(format!(
                "--scheme must be multitree|hypercube|chain|singletree, got `{other}`"
            )))
        }
    })
}

fn run_scheme(scheme: &mut dyn Scheme, track: u64, traced: bool) -> Result<RunResult, CliError> {
    let mut cfg = SimConfig::until_complete(track, 1_000_000);
    if traced {
        cfg = cfg.traced();
    }
    Ok(Simulator::run(scheme, &cfg)?)
}

/// `clustream simulate`.
pub fn simulate(args: &ArgMap) -> Result<String, CliError> {
    // Validate the scheme parameters once up front, so the factory used
    // by the checked engine cannot fail.
    let _ = build_scheme(args)?;
    let track = args.usize_or("track", 48)? as u64;
    let engine = parse_engine(args)?;
    let cfg = SimConfig::until_complete(track, 1_000_000);
    let (engine_name, r) = match engine {
        EngineChoice::Reference => (
            "reference",
            Simulator::run(build_scheme(args)?.as_mut(), &cfg)?,
        ),
        EngineChoice::Fast => (
            "fast",
            FastSimulator::run(build_scheme(args)?.as_mut(), &cfg)?,
        ),
        EngineChoice::Checked => {
            let r = match DiffHarness::check(|| build_scheme(args).expect("validated above"), &cfg)
            {
                Ok(r) => r,
                Err(Some(divergence)) => {
                    return Err(CliError::Model(format!(
                        "differential check failed: {divergence}"
                    )))
                }
                // Both engines rejected the run identically: surface the
                // actual model error.
                Err(None) => {
                    let err = Simulator::run(build_scheme(args)?.as_mut(), &cfg)
                        .expect_err("both engines failed");
                    return Err(err.into());
                }
            };
            ("checked (reference ≡ fast)", r)
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "scheme      : {}", r.scheme);
    let _ = writeln!(out, "engine      : {engine_name}");
    let _ = writeln!(out, "receivers   : {}", r.qos.n);
    let _ = writeln!(out, "slots run   : {}", r.slots_run);
    let _ = writeln!(out, "max delay   : {} slots", r.qos.max_delay());
    let _ = writeln!(out, "avg delay   : {:.2} slots", r.qos.avg_delay());
    let _ = writeln!(out, "max buffer  : {} packets", r.qos.max_buffer());
    let _ = writeln!(out, "max peers   : {}", r.qos.max_neighbors());
    let _ = writeln!(out, "transmissions: {}", r.total_transmissions);
    Ok(out)
}

/// `clustream analyze`.
pub fn analyze(args: &ArgMap) -> Result<String, CliError> {
    let n = args.required_usize("n")?;
    let max_d = args.usize_or("max-d", 5)?.max(2);
    let mut out = String::new();
    let _ = writeln!(out, "population N = {n}\n");
    let _ = writeln!(
        out,
        "optimal tree degree (Theorem 2 argmin): d = {}",
        clustream_analysis::optimal_degree(n.max(2), max_d.max(3))
    );
    let _ = writeln!(
        out,
        "multi-tree bound (d=2): delay ≤ {}, buffer ≤ {}",
        clustream_analysis::thm2_worst_delay_bound(n, 2),
        clustream_analysis::multitree::buffer_bound(n, 2)
    );
    let _ = writeln!(
        out,
        "hypercube chain: delay ≤ {}, avg ≤ {:.2}, buffer 2 resident",
        clustream_analysis::chained_worst_delay(n),
        clustream_analysis::chained_avg_delay(n)
    );
    let _ = writeln!(out, "\nPareto frontier (delay, buffer):");
    for p in clustream_analysis::pareto_frontier(&clustream_analysis::candidates(n, max_d)) {
        let _ = writeln!(
            out,
            "  {:<18} delay {:>4}  buffer {:>4}  peers ≤ {}",
            p.scheme, p.delay, p.buffer, p.neighbors
        );
    }
    Ok(out)
}

/// `clustream plan`.
pub fn plan(args: &ArgMap) -> Result<String, CliError> {
    let spec = args.required("clusters")?;
    let t_c = args.usize_or("tc", 5)? as u32;
    let big_d = args.usize_or("bigd", 3)?;
    let requirements: Vec<ClusterRequirement> = spec
        .split(',')
        .map(|part| {
            let (size, budget) = match part.split_once(':') {
                Some((s, b)) => (s, Some(b)),
                None => (part, None),
            };
            let size = size
                .parse()
                .map_err(|_| CliError::Usage(format!("bad cluster size `{size}`")))?;
            let buffer_budget = match budget {
                None => None,
                Some("none") => None,
                Some(b) => Some(
                    b.parse()
                        .map_err(|_| CliError::Usage(format!("bad buffer budget `{b}`")))?,
                ),
            };
            Ok(ClusterRequirement {
                size,
                buffer_budget,
            })
        })
        .collect::<Result<_, CliError>>()?;

    let (mut session, plans) = plan_session(&requirements, big_d, t_c)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "planned session: K = {}, D = {big_d}, T_c = {t_c}\n",
        plans.len()
    );
    for (i, p) in plans.iter().enumerate() {
        let scheme = match p.scheme {
            IntraScheme::MultiTree { d, .. } => format!("multi-tree d={d}"),
            IntraScheme::Hypercube { .. } => "hypercube".into(),
        };
        let _ = writeln!(
            out,
            "  cluster {i}: {} members, budget {:?} → {scheme} (intra delay ≤ {}, buffer {})",
            p.requirement.size,
            p.requirement.buffer_budget,
            p.predicted_intra_delay,
            p.predicted_buffer
        );
    }
    let r = Simulator::run(&mut session, &SimConfig::until_complete(24, 1_000_000))?;
    let _ = writeln!(
        out,
        "\nsimulated: worst startup {} slots, max buffer {} packets, 0 hiccups",
        r.qos.max_delay(),
        r.qos.max_buffer()
    );
    Ok(out)
}

/// `clustream trace`.
pub fn trace(args: &ArgMap) -> Result<String, CliError> {
    let mut scheme = build_scheme(args)?;
    let node = args.required_usize("node")? as u32;
    let packet = args.usize_or("packet", 0)? as u64;
    if node as usize > scheme.num_receivers() || node == 0 {
        return Err(CliError::Usage(format!(
            "--node must be in 1..={}",
            scheme.num_receivers()
        )));
    }
    let track = (packet + 16).max(48);
    let r = run_scheme(scheme.as_mut(), track, true)?;
    let tr = r.trace.as_ref().expect("trace requested");

    let mut out = String::new();
    match tr.path_to(NodeId(node), PacketId(packet)) {
        Some(path) => {
            let names: Vec<String> = path
                .iter()
                .map(|&id| {
                    if id == 0 {
                        "S".into()
                    } else {
                        format!("n{id}")
                    }
                })
                .collect();
            let _ = writeln!(out, "packet {packet} → node {node}: {}", names.join(" → "));
        }
        None => {
            let _ = writeln!(out, "packet {packet} never reached node {node}");
        }
    }
    if let Some(usable) = r.arrivals.usable_slot(NodeId(node), PacketId(packet)) {
        let _ = writeln!(out, "usable from slot {}", usable.t());
    }
    // For multi-trees, print the node's Figure-2 style calendar.
    if args.required("scheme")? == "multitree" {
        let n = args.required_usize("n")?;
        let d = args.usize_or("d", 2)?;
        let s = MultiTreeScheme::new(greedy_forest(n, d)?, parse_mode(args)?);
        let _ = writeln!(out, "\n{}", node_calendar(&s, node).render());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {

    use crate::run;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn simulate_multitree() {
        let out = run(&argv(&[
            "simulate",
            "--scheme",
            "multitree",
            "--n",
            "30",
            "--d",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("multi-tree(d=3"));
        assert!(out.contains("max delay"));
    }

    #[test]
    fn simulate_all_schemes() {
        for s in ["multitree", "hypercube", "chain", "singletree"] {
            let out = run(&argv(&["simulate", "--scheme", s, "--n", "12"])).unwrap();
            assert!(out.contains("receivers   : 12"), "{s}: {out}");
        }
    }

    #[test]
    fn engine_flag_selects_engine() {
        for (flag, label) in [
            ("fast", "engine      : fast"),
            ("reference", "engine      : reference"),
            ("checked", "engine      : checked (reference ≡ fast)"),
        ] {
            let out = run(&argv(&[
                "simulate",
                "--scheme",
                "hypercube",
                "--n",
                "25",
                "--engine",
                flag,
            ]))
            .unwrap();
            assert!(out.contains(label), "{flag}: {out}");
        }
        // All three engines agree on the QoS numbers.
        let runs: Vec<String> = ["fast", "reference", "checked"]
            .iter()
            .map(|f| {
                let out = run(&argv(&[
                    "simulate",
                    "--scheme",
                    "multitree",
                    "--n",
                    "30",
                    "--engine",
                    f,
                ]))
                .unwrap();
                out.lines()
                    .filter(|l| !l.starts_with("engine"))
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        // Unknown engine is a usage error.
        assert!(run(&argv(&[
            "simulate", "--scheme", "chain", "--n", "5", "--engine", "warp"
        ]))
        .is_err());
    }

    #[test]
    fn analyze_prints_frontier() {
        let out = run(&argv(&["analyze", "--n", "500"])).unwrap();
        assert!(out.contains("Pareto frontier"));
        assert!(out.contains("optimal tree degree"));
        assert!(out.contains("hypercube"));
    }

    #[test]
    fn plan_parses_cluster_specs() {
        let out = run(&argv(&[
            "plan",
            "--clusters",
            "20,15:2,25:none",
            "--tc",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("cluster 0"));
        assert!(out.contains("hypercube"), "{out}");
        assert!(out.contains("multi-tree"), "{out}");
        assert!(out.contains("simulated"));
    }

    #[test]
    fn trace_follows_packets() {
        let out = run(&argv(&[
            "trace",
            "--scheme",
            "multitree",
            "--n",
            "15",
            "--d",
            "3",
            "--node",
            "6",
        ]))
        .unwrap();
        assert!(out.contains("packet 0 → node 6"));
        assert!(out.contains("recv"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv(&["simulate", "--scheme", "warp", "--n", "5"])).is_err());
        assert!(run(&argv(&["simulate", "--n", "5"])).is_err());
        assert!(run(&argv(&["nope"])).is_err());
        assert!(run(&argv(&[
            "trace", "--scheme", "chain", "--n", "5", "--node", "9"
        ]))
        .is_err());
        let help = run(&argv(&["help"])).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn mode_flag_selects_live_variants() {
        let pre = run(&argv(&[
            "simulate",
            "--scheme",
            "multitree",
            "--n",
            "20",
            "--d",
            "2",
        ]))
        .unwrap();
        let buffered = run(&argv(&[
            "simulate",
            "--scheme",
            "multitree",
            "--n",
            "20",
            "--d",
            "2",
            "--mode",
            "buffered",
        ]))
        .unwrap();
        assert!(pre.contains("prerecorded"));
        assert!(buffered.contains("live-prebuffered"));
    }
}
