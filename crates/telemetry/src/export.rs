//! JSONL export and import of a [`MetricsSnapshot`].
//!
//! One metric per line, self-describing via a `"kind"` field:
//!
//! ```text
//! {"kind":"counter","name":"engine.deliveries","value":96000}
//! {"kind":"gauge","name":"des.queue_depth_max","value":4096}
//! {"kind":"histogram","name":"engine.buffer_occupancy","count":…,"sum":…,"min":…,"max":…,"buckets":[[lo,hi,c],…]}
//! {"kind":"span","name":"engine.run","count":1,"total_ns":…,"min_ns":…,"max_ns":…}
//! ```
//!
//! Lines are emitted in kind order (counters, gauges, histograms, spans)
//! and name order within a kind, so exports of the same run are
//! byte-identical. Unknown kinds are skipped on import so newer files
//! stay readable by older readers.

use crate::histogram::HistogramSnapshot;
use crate::recorder::{MetricsSnapshot, SpanStats};
use serde::{DeError, Deserialize, Serialize, Value};

#[derive(Serialize, Deserialize)]
struct CounterLine {
    kind: String,
    name: String,
    value: u64,
}

#[derive(Serialize, Deserialize)]
struct GaugeLine {
    kind: String,
    name: String,
    value: u64,
}

#[derive(Serialize, Deserialize)]
struct HistogramLine {
    kind: String,
    name: String,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<(u64, u64, u64)>,
}

#[derive(Serialize, Deserialize)]
struct SpanLine {
    kind: String,
    name: String,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// The shim's `Value` does not itself implement the serde traits; this
/// wrapper lets a line be parsed once and then dispatched on its `kind`.
struct Raw(Value);

impl Deserialize for Raw {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Raw(v.clone()))
    }
}

/// Render a snapshot as JSONL (one metric per line, trailing newline).
pub fn to_jsonl(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut push = |line: Result<String, serde_json::Error>| {
        out.push_str(&line.expect("metric line is serializable"));
        out.push('\n');
    };
    for (name, &value) in &snapshot.counters {
        push(serde_json::to_string(&CounterLine {
            kind: "counter".into(),
            name: name.clone(),
            value,
        }));
    }
    for (name, &value) in &snapshot.gauges {
        push(serde_json::to_string(&GaugeLine {
            kind: "gauge".into(),
            name: name.clone(),
            value,
        }));
    }
    for (name, h) in &snapshot.histograms {
        push(serde_json::to_string(&HistogramLine {
            kind: "histogram".into(),
            name: name.clone(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h.buckets.clone(),
        }));
    }
    for (name, s) in &snapshot.spans {
        push(serde_json::to_string(&SpanLine {
            kind: "span".into(),
            name: name.clone(),
            count: s.count,
            total_ns: s.total_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
        }));
    }
    out
}

/// Parse a JSONL metrics file back into a snapshot.
///
/// Blank lines and lines with an unrecognized `kind` are skipped;
/// malformed JSON or a known kind with missing fields is an error naming
/// the offending line number.
pub fn from_jsonl(text: &str) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let at = |e: &dyn std::fmt::Display| format!("line {}: {e}", lineno + 1);
        let raw: Raw = serde_json::from_str(line).map_err(|e| at(&e))?;
        let kind = match raw.0.field("kind").map_err(|e| at(&e))? {
            Value::Str(s) => s.clone(),
            _ => return Err(at(&"metric line has no string \"kind\" field")),
        };
        match kind.as_str() {
            "counter" => {
                let l = CounterLine::from_value(&raw.0).map_err(|e| at(&e))?;
                *snap.counters.entry(l.name).or_insert(0) += l.value;
            }
            "gauge" => {
                let l = GaugeLine::from_value(&raw.0).map_err(|e| at(&e))?;
                snap.gauges.insert(l.name, l.value);
            }
            "histogram" => {
                let l = HistogramLine::from_value(&raw.0).map_err(|e| at(&e))?;
                // Duplicate lines (concatenated per-worker exports) merge
                // like counters do, keeping the exact min/max rather than
                // letting the last line win.
                snap.histograms
                    .entry(l.name)
                    .or_default()
                    .merge(&HistogramSnapshot {
                        count: l.count,
                        sum: l.sum,
                        min: l.min,
                        max: l.max,
                        buckets: l.buckets,
                    });
            }
            "span" => {
                let l = SpanLine::from_value(&raw.0).map_err(|e| at(&e))?;
                snap.spans.insert(
                    l.name,
                    SpanStats {
                        count: l.count,
                        total_ns: l.total_ns,
                        min_ns: l.min_ns,
                        max_ns: l.max_ns,
                    },
                );
            }
            _ => {} // forward compatibility: ignore unknown kinds
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    fn sample() -> MetricsSnapshot {
        let (rec, tel) = MemoryRecorder::handle();
        tel.counter("b.count", 3);
        tel.counter("a.count", 7);
        tel.gauge_max("q.depth", 12);
        tel.observe("h.delay", 1);
        tel.observe("h.delay", 40);
        tel.span_ns("run", 1_000);
        tel.span_ns("run", 3_000);
        rec.snapshot()
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample();
        let text = to_jsonl(&snap);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn export_is_deterministic_and_sorted() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        // Counters first, name-sorted, then gauges, histograms, spans.
        assert!(lines[0].contains("\"a.count\""), "{}", lines[0]);
        assert!(lines[1].contains("\"b.count\""), "{}", lines[1]);
        assert!(lines[2].contains("\"gauge\""), "{}", lines[2]);
        assert!(lines[3].contains("\"histogram\""), "{}", lines[3]);
        assert!(lines[4].contains("\"span\""), "{}", lines[4]);
        assert_eq!(text, to_jsonl(&sample()));
    }

    #[test]
    fn unknown_kinds_and_blank_lines_skipped() {
        let text = "\n{\"kind\":\"frobnicator\",\"name\":\"x\"}\n{\"kind\":\"counter\",\"name\":\"c\",\"value\":2}\n";
        let snap = from_jsonl(text).unwrap();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.counters.len(), 1);
    }

    #[test]
    fn malformed_line_is_an_error_with_line_number() {
        let err = from_jsonl("{\"kind\":\"counter\"\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err =
            from_jsonl("{\"kind\":\"counter\",\"name\":\"c\",\"value\":2}\nnope\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn repeated_counter_lines_accumulate() {
        // Sweep workers may export per-worker files that get concatenated.
        let text = "{\"kind\":\"counter\",\"name\":\"c\",\"value\":2}\n{\"kind\":\"counter\",\"name\":\"c\",\"value\":3}\n";
        assert_eq!(from_jsonl(text).unwrap().counter("c"), 5);
    }

    #[test]
    fn repeated_histogram_lines_merge_and_keep_exact_max() {
        // Two workers observed the same histogram; worker A saw the true
        // maximum 33 — one past the [32, 36) octave boundary, so bucket
        // edges cannot reconstruct it. The import used to keep only the
        // last line, silently dropping A's data and its exact max.
        let (rec_a, tel_a) = MemoryRecorder::handle();
        tel_a.observe("h.delay", 33);
        tel_a.observe("h.delay", 4);
        let (rec_b, tel_b) = MemoryRecorder::handle();
        tel_b.observe("h.delay", 9);
        let text = format!(
            "{}{}",
            to_jsonl(&rec_a.snapshot()),
            to_jsonl(&rec_b.snapshot())
        );
        let merged = from_jsonl(&text).unwrap();
        let h = &merged.histograms["h.delay"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 46);
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 33, "exact max, not the bucket edge 35 or B's 9");
        assert_eq!(h.buckets, vec![(4, 5, 1), (9, 10, 1), (32, 36, 1)]);
    }
}
