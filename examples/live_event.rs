//! A live broadcast across geographic clusters: the paper's full §2.1
//! architecture. A source streams a live event to K = 9 clusters (e.g.
//! continents/regions); inter-cluster hops cost T_c slots, intra-cluster
//! hops cost 1. Super nodes form the backbone tree τ; each cluster
//! distributes over interior-disjoint multi-trees.
//!
//! ```sh
//! cargo run --example live_event
//! ```

use clustream::prelude::*;
use clustream::NodeId;

fn main() -> Result<(), CoreError> {
    let cluster_sizes = [40, 40, 40, 25, 25, 25, 25, 25, 25];
    let big_d = 3; // source capacity D
    let t_c = 12; // one inter-cluster hop = 12 slots
    let d = 2; // intra-cluster tree degree

    let mut session = ClusterSession::new(
        &cluster_sizes,
        big_d,
        t_c,
        IntraScheme::MultiTree {
            d,
            construction: Construction::Greedy,
        },
    )?;

    println!(
        "live event: K = {} clusters, {} viewers total, D = {big_d}, T_c = {t_c}, d = {d}",
        session.k(),
        cluster_sizes.iter().sum::<usize>()
    );

    let run = Simulator::run(&mut session, &SimConfig::until_complete(48, 100_000))?;

    // Per-cluster startup latency: Theorem 1's T_c·depth + intra terms.
    for i in 0..session.k() {
        let members: Vec<NodeId> = session.members_of(i).map(NodeId).collect();
        let worst = members
            .iter()
            .map(|m| run.qos.node(*m).unwrap().playback_delay)
            .max()
            .unwrap();
        println!(
            "  cluster {i}: {} viewers, intra scheme starts at slot {:>3}, worst startup {:>3} slots",
            members.len(),
            session.sigma(i),
            worst
        );
    }

    let bound = thm1_delay_bound(
        session.k(),
        big_d,
        t_c,
        d,
        *cluster_sizes.iter().max().unwrap(),
    );
    println!(
        "overall worst startup: {} slots (Theorem 1 bound: {bound})",
        run.qos.max_delay()
    );
    assert!(run.qos.max_delay() <= bound);
    Ok(())
}
