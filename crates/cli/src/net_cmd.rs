//! The networked subcommands: `clustream cluster` (spawn a local process
//! cluster, stream, optionally kill nodes) and `clustream replay`
//! (re-run a recorded cluster trace through the DES and score
//! delivery-order concordance).

use crate::args::{ArgMap, CliError};
use clustream_net::{
    compare_delivery_order, parse_chaos_spec, parse_kill_spec, replay_in_des, run_cluster,
    ClusterOptions, RunTrace, SchemeParams, Transport,
};
use clustream_telemetry::{to_jsonl, MemoryRecorder};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Where the `clustream-node` binary lives: `--node-bin` if given, else
/// a sibling of the running `clustream` binary (the cargo layout).
fn node_bin(args: &ArgMap) -> Result<PathBuf, CliError> {
    if let Some(p) = args.optional("node-bin") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Usage(format!("cannot locate the running binary: {e}")))?;
    Ok(exe.with_file_name("clustream-node"))
}

/// `clustream cluster`: run a real networked cluster over loopback.
pub fn cluster(args: &ArgMap) -> Result<String, CliError> {
    let nodes = args.required_usize("nodes")? as u64;
    let mut opts = ClusterOptions::new(nodes, node_bin(args)?);
    opts.transport =
        Transport::parse(args.optional("transport").unwrap_or("tcp")).map_err(CliError::Usage)?;
    let family = args.optional("scheme").unwrap_or("multitree");
    opts.params = SchemeParams {
        family: family.to_string(),
        n: nodes,
        d: args.u64_or("d", 2)?,
    };
    opts.track = args.u64_or("track", 24)?;
    opts.slot_micros = args.u64_or("slot-us", 5_000)?;
    opts.suspect_timeout_slots = args.u64_or("suspect-timeout-slots", 8)?;
    opts.suspect_threshold = args.u64_or("suspect-threshold", 1)?;
    opts.horizon_slack = args.u64_or("horizon-slack", 64)?;
    if let Some(spec) = args.optional("kill") {
        opts.kills = parse_kill_spec(spec).map_err(CliError::Usage)?;
    }
    if let Some(spec) = args.optional("chaos") {
        opts.chaos = parse_chaos_spec(spec).map_err(CliError::Usage)?;
    }
    opts.chaos_seed = args.u64_or("chaos-seed", 0)?;
    opts.repair = args.bool_or("repair", false)?;
    opts.retransmit_budget_per_slot = args.u64_or("retransmit-budget", 64)?;
    opts.splice_margin_slots = args.u64_or("splice-margin-slots", 8)?;
    let metrics = args
        .optional("metrics-out")
        .map(|p| (p.to_string(), MemoryRecorder::handle()));
    if let Some((_, (_, tel))) = &metrics {
        opts.telemetry = tel.clone();
    }

    let outcome = run_cluster(&opts).map_err(CliError::Model)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster     : {} receivers + source over {} ({})",
        nodes,
        opts.transport.label(),
        family
    );
    let _ = writeln!(
        out,
        "stream      : {} tracked packets, {} µs slots, wall {:.1} ms",
        opts.track,
        opts.slot_micros,
        outcome.wall_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "complete    : {}/{} expected survivors",
        outcome.completed, outcome.expected_complete
    );
    for k in &outcome.kills {
        let detect = k
            .detection_ms()
            .map(|ms| format!("{ms:.1} ms"))
            .unwrap_or_else(|| "not detected".into());
        let repair = k
            .repair_ms()
            .map(|ms| format!("{ms:.1} ms"))
            .unwrap_or_else(|| "not repaired".into());
        let _ = writeln!(
            out,
            "kill        : node {} at slot {} — detected {detect}, repaired {repair}",
            k.node, k.slot
        );
    }
    if !opts.chaos.is_empty() {
        let mut drops = 0u64;
        let mut dups = 0u64;
        let mut reorders = 0u64;
        let mut delays = 0u64;
        let mut pdrops = 0u64;
        for r in &outcome.reports {
            drops += r.chaos_drops;
            dups += r.chaos_dups;
            reorders += r.chaos_reorders;
            delays += r.chaos_delays;
            pdrops += r.chaos_partition_drops;
        }
        let _ = writeln!(
            out,
            "chaos       : seed {} — {drops} drops, {dups} dups, {reorders} reorders, \
             {delays} delays, {pdrops} partition drops injected",
            opts.chaos_seed
        );
    }
    for rp in &outcome.repairs {
        let healed = rp
            .first_healed_ms()
            .map(|ms| format!("first healed delivery {ms:.1} ms"))
            .unwrap_or_else(|| "no gap needed healing".into());
        let _ = writeln!(
            out,
            "repair      : node {} epoch {} — {} survivors spliced at slot {}, \
             dispatched {:.1} ms, {healed}",
            rp.subject,
            rp.epoch,
            rp.survivors_updated,
            rp.barrier_slot,
            rp.dispatch_ms()
        );
    }
    if outcome.completed < outcome.expected_complete {
        return Err(CliError::Model(format!(
            "{}only {}/{} survivors completed the stream",
            out, outcome.completed, outcome.expected_complete
        )));
    }
    if let Some(path) = args.optional("trace-out") {
        std::fs::write(path, outcome.trace.to_json())
            .map_err(|e| CliError::Usage(format!("cannot write --trace-out `{path}`: {e}")))?;
        let _ = writeln!(out, "trace       : {path}");
    }
    if let Some((path, (rec, _))) = &metrics {
        std::fs::write(path, to_jsonl(&rec.snapshot()))
            .map_err(|e| CliError::Usage(format!("cannot write --metrics-out `{path}`: {e}")))?;
        let _ = writeln!(out, "metrics     : {path}");
    }
    Ok(out)
}

/// `clustream replay`: DES replay oracle over a recorded cluster trace.
pub fn replay(args: &ArgMap) -> Result<String, CliError> {
    let path = args.required("trace")?;
    let min = args.f64_or("min-concordance", 0.9)?;
    let json = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read --trace `{path}`: {e}")))?;
    let trace = RunTrace::from_json(&json).map_err(CliError::Model)?;
    let result = replay_in_des(&trace).map_err(CliError::Model)?;
    let cmp = compare_delivery_order(&trace, &result);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replay      : {} ({} links, {} samples, {} kills)",
        trace.params.family,
        trace.recorded_latencies().link_count(),
        trace.recorded_latencies().len(),
        trace.kills.len()
    );
    for c in &cmp.per_node {
        let _ = writeln!(
            out,
            "node {:>4}   : concordance {:.3} over {} packets ({} inversions)",
            c.node, c.concordance, c.common, c.inversions
        );
    }
    let _ = writeln!(out, "min / mean  : {:.3} / {:.3}", cmp.min, cmp.mean);
    if cmp.min < min {
        return Err(CliError::Model(format!(
            "{}concordance {:.3} is below --min-concordance {min}",
            out, cmp.min
        )));
    }
    let _ = writeln!(out, "oracle      : delivery order concordant (>= {min})");
    Ok(out)
}
