//! ext-C: the NP-completeness substrate — reduce E-4 Set Splitting
//! instances to Two Interior-Disjoint Trees and solve both sides exactly.

use clustream_npc::{find_two_interior_disjoint_trees, reduce, E4SetSplitting};

fn main() {
    let instances = vec![
        (
            "single set",
            E4SetSplitting::new(4, vec![[0, 1, 2, 3]]).unwrap(),
        ),
        (
            "overlapping sets",
            E4SetSplitting::new(6, vec![[0, 1, 2, 3], [2, 3, 4, 5], [0, 2, 4, 5]]).unwrap(),
        ),
        (
            "all 4-subsets of 5",
            E4SetSplitting::new(
                5,
                vec![
                    [0, 1, 2, 3],
                    [0, 1, 2, 4],
                    [0, 1, 3, 4],
                    [0, 2, 3, 4],
                    [1, 2, 3, 4],
                ],
            )
            .unwrap(),
        ),
    ];
    for (name, inst) in instances {
        let split = inst.solve_brute();
        let (g, layout) = reduce(&inst);
        let trees = find_two_interior_disjoint_trees(&g, layout.root);
        println!(
            "{name}: splittable = {}, reduction has two interior-disjoint trees = {}",
            split.is_some(),
            trees.is_some()
        );
        assert_eq!(
            split.is_some(),
            trees.is_some(),
            "reduction must preserve the answer"
        );
        if let (Some(v1), Some((t1, t2))) = (split, trees) {
            println!("  V₁ mask = {v1:#b}");
            println!("  T₁ interior mask = {:#b}", t1.interior());
            println!("  T₂ interior mask = {:#b}", t2.interior());
        }
    }
    println!("\nThe decision problem is NP-complete (reduction from E-4 Set Splitting).");
}
