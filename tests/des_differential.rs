//! Differential-testing suite for the discrete-event runtime: in the
//! slot-faithful configuration (fixed unit intra-cluster latency, fixed
//! `T_c`, unconstrained uplinks, no churn) a DES run must reproduce the
//! fast slot engine's [`RunResult`] **field for field** — arrivals, QoS,
//! traffic stats, loss reports, traces — for every scheme family:
//! multi-tree forests (both constructions), chained hypercubes, the
//! baselines, and composed multi-cluster overlay sessions, clean and
//! under arbitrary loss/crash plans. Two engines failing with
//! identically-rendered errors also count as agreement.
//!
//! This is the correctness anchor that licenses the *relaxed* DES modes
//! (jitter, heavy tails, uplink serialization, churn): any measured
//! deviation from the slot model is then attributable to the network
//! model, not engine drift.
//!
//! Every case here runs the DES on [`QueueKind::Checked`] — the heap and
//! timing-wheel event queues in lockstep, panicking on the first pop
//! where they disagree — so the whole suite doubles as the wheel's
//! queue-equivalence harness without running each scheme twice.

use clustream::prelude::*;
use clustream::sim::FaultPlan;
use proptest::prelude::*;

/// Assertion-friendly wrapper: `None` = slot and DES engines agree (and,
/// via the checked queue, the wheel agrees with the heap pop for pop).
fn divergence(factory: impl FnMut() -> Box<dyn Scheme>, cfg: &SimConfig) -> Option<String> {
    match DesOracle::check_with_queue(factory, cfg, QueueKind::Checked) {
        Ok(_) | Err(None) => None,
        Err(Some(d)) => Some(d),
    }
}

/// Build the fault plan for a sampled case. `crash_sel` picks none /
/// a source-adjacent node from slot 0 / a mid-population node later /
/// the fail-stop (deaf *and* mute) variants of the same two shapes.
fn fault_plan(n: usize, loss_permille: u32, seed: u64, crash_sel: usize) -> FaultPlan {
    let mut plan = FaultPlan::loss(loss_permille as f64 / 1000.0, seed);
    match crash_sel {
        1 => plan.crashes.push((NodeId(1), 0)),
        2 => plan.crashes.push((NodeId((n / 2).max(1) as u32), 6)),
        3 => plan.stop_crashes.push((NodeId(1), 0)),
        4 => plan.stop_crashes.push((NodeId((n / 2).max(1) as u32), 6)),
        _ => {}
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Multi-tree forests, both constructions, clean and traced runs.
    #[test]
    fn multitree_des_agrees(
        n in 1usize..120,
        d in 1usize..6,
        structured in any::<bool>(),
        traced in any::<bool>(),
    ) {
        let c = if structured { Construction::Structured } else { Construction::Greedy };
        let mut cfg = SimConfig::until_complete(24, 100_000);
        if traced { cfg = cfg.traced(); }
        let div = divergence(
            || Box::new(MultiTreeScheme::new(build_forest(n, d, c).unwrap(), StreamMode::PreRecorded)),
            &cfg,
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Multi-tree forests under arbitrary loss and crash plans: the DES
    /// must consume the loss RNG in the slot engines' draw order.
    #[test]
    fn multitree_fault_des_agrees(
        n in 2usize..80,
        d in 1usize..5,
        loss_permille in 0u32..400,
        seed in any::<u64>(),
        crash_sel in 0usize..5,
    ) {
        let plan = fault_plan(n, loss_permille, seed, crash_sel);
        let cfg = SimConfig::with_faults(16, 400, plan).traced();
        let div = divergence(
            || Box::new(MultiTreeScheme::new(greedy_forest(n, d).unwrap(), StreamMode::PreRecorded)),
            &cfg,
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Hypercubes: special sizes, arbitrary sizes, grouped splits.
    #[test]
    fn hypercube_des_agrees(
        n in 1usize..200,
        groups in 1usize..5,
        traced in any::<bool>(),
    ) {
        let groups = groups.min(n);
        let mut cfg = SimConfig::until_complete(24, 100_000);
        if traced { cfg = cfg.traced(); }
        let div = divergence(
            || Box::new(HypercubeStream::with_groups(n, groups).unwrap()),
            &cfg,
        );
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Hypercubes under loss and crashes.
    #[test]
    fn hypercube_fault_des_agrees(
        n in 2usize..120,
        loss_permille in 0u32..400,
        seed in any::<u64>(),
        crash_sel in 0usize..5,
    ) {
        let plan = fault_plan(n, loss_permille, seed, crash_sel);
        let cfg = SimConfig::with_faults(16, 400, plan);
        let div = divergence(|| Box::new(HypercubeStream::new(n).unwrap()), &cfg);
        prop_assert!(div.is_none(), "{div:?}");
    }

    /// Baselines (chain and elevated-capacity single tree), clean and
    /// lossy.
    #[test]
    fn baseline_des_agrees(
        n in 1usize..60,
        d in 2usize..5,
        single_tree in any::<bool>(),
        loss_permille in 0u32..300,
        seed in any::<u64>(),
    ) {
        let mk = move || -> Box<dyn Scheme> {
            if single_tree {
                Box::new(SingleTreeScheme::new(n, d))
            } else {
                Box::new(ChainScheme::new(n))
            }
        };
        let clean = SimConfig::until_complete(12, 100_000);
        let div = divergence(mk, &clean);
        prop_assert!(div.is_none(), "clean: {div:?}");
        let lossy = SimConfig::with_faults(
            12,
            300,
            FaultPlan::loss(loss_permille as f64 / 1000.0, seed),
        );
        let div = divergence(mk, &lossy);
        prop_assert!(div.is_none(), "lossy: {div:?}");
    }

    /// Composed multi-cluster sessions: fixed `T_c` latencies land many
    /// slots ahead, exercising the DES heap's cross-slot delivery order
    /// against the slot engines' pending-queue order.
    #[test]
    fn overlay_session_des_agrees(
        k in 1usize..4,
        cluster_size in 2usize..10,
        t_c in 2u32..30,
        big_d in 3usize..6,
        d in 1usize..4,
    ) {
        let sizes = vec![cluster_size; k];
        let div = divergence(
            || Box::new(ClusterSession::new(
                &sizes,
                big_d,
                t_c,
                IntraScheme::MultiTree { d, construction: Construction::Greedy },
            ).unwrap()),
            &SimConfig::until_complete(16, 100_000),
        );
        prop_assert!(div.is_none(), "{div:?}");
    }
}

// ---------------------------------------------------------------------
// Named regression shapes mirrored from tests/differential.rs, plus
// DES-specific ones.

/// Inter-cluster latency far beyond one slot: a `Deliver` scheduled
/// hundreds of slots ahead must interleave correctly with the local
/// traffic queued meanwhile.
#[test]
fn regression_des_large_latency_agrees() {
    for t_c in [70u32, 150, 400] {
        let sizes = [6usize, 6, 6];
        let div = divergence(
            || {
                Box::new(
                    ClusterSession::new(
                        &sizes,
                        3,
                        t_c,
                        IntraScheme::MultiTree {
                            d: 2,
                            construction: Construction::Greedy,
                        },
                    )
                    .unwrap(),
                )
            },
            &SimConfig::until_complete(12, 100_000),
        );
        assert!(div.is_none(), "t_c={t_c}: {div:?}");
    }
}

/// Total loss: every transmission is dropped; both engines must report
/// the identical degenerate result.
#[test]
fn regression_des_total_loss_agrees() {
    let cfg = SimConfig::with_faults(8, 120, FaultPlan::loss(1.0, 3));
    let div = divergence(
        || {
            Box::new(MultiTreeScheme::new(
                greedy_forest(20, 2).unwrap(),
                StreamMode::PreRecorded,
            ))
        },
        &cfg,
    );
    assert!(div.is_none(), "{div:?}");
}

/// Crash of the source-adjacent node from slot 0.
#[test]
fn regression_des_crash_at_slot_zero_agrees() {
    for n in [7usize, 15, 40] {
        let cfg = SimConfig::with_faults(12, 300, FaultPlan::crash(NodeId(1), 0));
        let div = divergence(|| Box::new(HypercubeStream::new(n).unwrap()), &cfg);
        assert!(div.is_none(), "n={n}: {div:?}");
    }
}

/// Degenerate populations and windows, including `track_packets = 0`
/// (the empty heap edge: the run must stop at slot 0 in both engines).
#[test]
fn regression_des_tiny_populations_agree() {
    for (n, track) in [(1usize, 1u64), (1, 8), (2, 1), (3, 0)] {
        let div = divergence(
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, 1).unwrap(),
                    StreamMode::PreRecorded,
                ))
            },
            &SimConfig::until_complete(track, 10_000),
        );
        assert!(div.is_none(), "n={n} track={track}: {div:?}");
    }
}

/// Live-mode multi-trees: the `Availability::Live` production check runs
/// at `PlaybackTick` time in the DES and must gate identically.
#[test]
fn regression_des_live_modes_agree() {
    for mode in [StreamMode::LivePrebuffered, StreamMode::LivePipelined] {
        let div = divergence(
            || Box::new(MultiTreeScheme::new(greedy_forest(30, 3).unwrap(), mode)),
            &SimConfig::until_complete(24, 100_000).traced(),
        );
        assert!(div.is_none(), "{mode:?}: {div:?}");
    }
}

/// A fixed-horizon run (no early stop): transmissions queued in the final
/// slots land past the horizon and must be flushed in the slot engines'
/// pending-queue order.
#[test]
fn regression_des_horizon_flush_agrees() {
    for max_slots in [5u64, 17, 64] {
        let cfg = SimConfig {
            max_slots,
            track_packets: 8,
            stop_when_complete: false,
            ..SimConfig::default()
        };
        let div = divergence(
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(24, 3).unwrap(),
                    StreamMode::PreRecorded,
                ))
            },
            &cfg,
        );
        assert!(div.is_none(), "max_slots={max_slots}: {div:?}");
    }
}

/// Fixed fault seeds kept as regressions, matching the slot-engine suite.
#[test]
fn regression_des_fixed_fault_seeds_agree() {
    for (n, d, seed, permille) in [
        (33usize, 3usize, 0u64, 100u32),
        (64, 2, u64::MAX, 250),
        (17, 4, 0xDEAD_BEEF, 399),
        (50, 2, 42, 1000),
    ] {
        let plan = FaultPlan::loss(permille as f64 / 1000.0, seed);
        let cfg = SimConfig::with_faults(16, 400, plan).traced();
        let div = divergence(
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, d).unwrap(),
                    StreamMode::PreRecorded,
                ))
            },
            &cfg,
        );
        assert!(div.is_none(), "n={n} d={d} seed={seed}: {div:?}");
    }
}

/// Fail-stop (deaf and mute) crashes: the DES must drop arrivals at a
/// stopped receiver in exactly the slot engines' order, including the
/// post-horizon flush, and report the identical `stopped_receives`.
#[test]
fn regression_des_fail_stop_agrees() {
    for (n, stop_at) in [(20usize, 0u64), (30, 4), (40, 11)] {
        let mut plan = FaultPlan::fail_stop(NodeId(1), stop_at);
        plan.loss_rate = 0.05;
        let cfg = SimConfig::with_faults(16, 300, plan).traced();
        let div = divergence(
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, 3).unwrap(),
                    StreamMode::PreRecorded,
                ))
            },
            &cfg,
        );
        assert!(div.is_none(), "n={n} stop_at={stop_at}: {div:?}");
    }
}

/// The recovery layer in mode Off is inert: the slot-faithful oracle must
/// keep passing with the recovery-enabled engine build (the new event
/// classes exist but are never scheduled). The relaxed-regime analogue
/// lives in tests/recovery.rs (`recovery_off_knobs_are_inert`).
#[test]
fn regression_des_recovery_off_stays_slot_faithful() {
    let cfg = DesConfig::slot_faithful(SimConfig::until_complete(16, 100_000));
    assert!(cfg.is_slot_faithful());
    let plan = FaultPlan::loss(0.15, 21);
    let div = divergence(
        || {
            Box::new(MultiTreeScheme::new(
                greedy_forest(35, 3).unwrap(),
                StreamMode::PreRecorded,
            ))
        },
        &SimConfig::with_faults(16, 400, plan),
    );
    assert!(div.is_none(), "{div:?}");
}
