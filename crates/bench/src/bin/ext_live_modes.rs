//! Live-streaming ablation (§2.2.3): pre-recorded vs pre-buffered vs
//! pipelined injection.

use clustream_bench::{ext_live_modes, render_table};

fn main() {
    let rows = ext_live_modes(&[15, 63, 255, 1023], 3);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.mode.clone(),
                r.max_delay.to_string(),
                format!("{:.2}", r.avg_delay),
                r.max_buffer.to_string(),
            ]
        })
        .collect();
    println!("Live-mode ablation, d = 3\n");
    println!(
        "{}",
        render_table(&["N", "mode", "max delay", "avg delay", "buffer"], &table)
    );
}
