//! Dependency-free timing harness used by the `benches/` binaries and the
//! engine-comparison benchmark (criterion is unavailable offline).

use std::time::{Duration, Instant};

/// One benchmark measurement: per-iteration wall times over `samples`
/// runs after a warmup iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Per-iteration wall time, one entry per sample.
    pub times: Vec<Duration>,
}

impl Measurement {
    /// Fastest observed iteration — the least noisy single-thread
    /// estimator of the true cost.
    pub fn min(&self) -> Duration {
        self.times.iter().copied().min().unwrap_or(Duration::ZERO)
    }

    /// Mean iteration time.
    pub fn mean(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        self.times.iter().sum::<Duration>() / self.times.len() as u32
    }
}

/// Time `f` over `samples` iterations (plus one untimed warmup), print a
/// one-line summary, and return the measurement.
///
/// The closure's return value is passed through `std::hint::black_box` so
/// the computation cannot be optimized away.
pub fn bench<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> Measurement {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    let m = Measurement {
        name: name.to_string(),
        times,
    };
    println!(
        "{:<44} min {:>12?}   mean {:>12?}   ({} samples)",
        m.name,
        m.min(),
        m.mean(),
        m.times.len()
    );
    m
}

/// Like [`bench()`], but each iteration first runs `setup` *untimed* and
/// only `run` is measured. Used when per-iteration state construction
/// (e.g. building a fresh scheme) would otherwise dominate the timed
/// region.
pub fn bench_prepared<S, R>(
    name: &str,
    samples: usize,
    mut setup: impl FnMut() -> S,
    mut run: impl FnMut(S) -> R,
) -> Measurement {
    std::hint::black_box(run(setup()));
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let state = setup();
        let start = Instant::now();
        std::hint::black_box(run(state));
        times.push(start.elapsed());
    }
    let m = Measurement {
        name: name.to_string(),
        times,
    };
    println!(
        "{:<44} min {:>12?}   mean {:>12?}   ({} samples)",
        m.name,
        m.min(),
        m.mean(),
        m.times.len()
    );
    m
}

/// Process-wide peak resident set size (`VmHWM` from
/// `/proc/self/status`), in bytes. `None` off Linux or when the file is
/// unreadable. A high-water mark: run workloads in increasing size
/// order for per-workload readings to be meaningful.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_samples() {
        let m = bench("noop", 3, || 1 + 1);
        assert_eq!(m.times.len(), 3);
        assert!(m.min() <= m.mean() || m.times.len() == 1);
    }

    #[test]
    fn bench_prepared_times_only_the_run_closure() {
        let mut setups = 0u32;
        let m = bench_prepared("prepared", 2, || setups += 1, |_| 7u32);
        assert_eq!(m.times.len(), 2);
        // Warmup + two samples each call setup once.
        assert_eq!(setups, 3);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
