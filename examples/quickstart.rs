//! Quickstart: stream to one cluster with both of the paper's schemes and
//! compare the delay/buffer/neighbor tradeoff.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use clustream::prelude::*;

fn main() -> Result<(), CoreError> {
    let n = 100;

    // --- Multi-tree (§2): d interior-disjoint d-ary trees. -------------
    let d = optimal_degree(n, 8); // the paper proves this is 2 or 3
    println!("optimal tree degree for N = {n}: d = {d}");

    let forest = greedy_forest(n, d)?;
    let mut multitree = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
    let run = Simulator::run(&mut multitree, &SimConfig::until_complete(64, 10_000))?;
    println!(
        "multi-tree : max delay {:>3} slots (bound h·d = {}), avg {:>5.1}, \
         buffer {:>2} packets, ≤ {} neighbors",
        run.qos.max_delay(),
        thm2_worst_delay_bound(n, d),
        run.qos.avg_delay(),
        run.qos.max_buffer(),
        run.qos.max_neighbors(),
    );

    // --- Hypercube (§3): chained cubes, O(1) buffers. -------------------
    let mut cube = HypercubeStream::new(n)?;
    let run = Simulator::run(&mut cube, &SimConfig::until_complete(64, 10_000))?;
    println!(
        "hypercube  : max delay {:>3} slots (predicted {}), avg {:>5.1}, \
         buffer {:>2} packets, ≤ {} neighbors",
        run.qos.max_delay(),
        chained_worst_delay(n),
        run.qos.avg_delay(),
        run.qos.max_buffer(),
        run.qos.max_neighbors(),
    );

    // --- The baseline the paper opens with. -----------------------------
    let mut chain = ChainScheme::new(n);
    let run = Simulator::run(&mut chain, &SimConfig::until_complete(16, 10_000))?;
    println!(
        "chain      : max delay {:>3} slots — why structure matters",
        run.qos.max_delay()
    );

    Ok(())
}
