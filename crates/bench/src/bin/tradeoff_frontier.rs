//! The title tradeoff, quantified: predicted Pareto frontiers
//! (delay × buffer) across populations, plus the multi-tree/hypercube
//! crossover.

use clustream_analysis::tradeoff::{candidates, multitree_beats_hypercube_from, pareto_frontier};
use clustream_bench::render_table;

fn main() {
    for n in [63usize, 250, 1000, 10_000, 100_000] {
        let frontier = pareto_frontier(&candidates(n, 5));
        let rows: Vec<Vec<String>> = frontier
            .iter()
            .map(|p| {
                vec![
                    p.scheme.clone(),
                    p.delay.to_string(),
                    p.buffer.to_string(),
                    p.neighbors.to_string(),
                ]
            })
            .collect();
        println!("Pareto frontier at N = {n}\n");
        println!(
            "{}",
            render_table(&["scheme", "delay ≤", "buffer", "peers ≤"], &rows)
        );
    }
    match multitree_beats_hypercube_from(5000) {
        Some(x) => println!(
            "degree-2 multi-trees dominate the single hypercube chain on worst-case \
             delay from N ≈ {x} onward"
        ),
        None => println!("no stable crossover below N = 5000"),
    }
}
