//! Hypercube pairing structure (§3.1, Figure 7).
//!
//! The `N + 1 = 2^k` participants are the vertices of a `k`-cube; in slot
//! `t` communication runs along dimension `t mod k`, pairing every vertex
//! `x` with `x ⊕ 2^(t mod k)`. (The paper's running example phases the
//! dimensions slightly differently across its two descriptions — slot
//! `kn+j` uses bit `j` in §3.1 but bit `j−1` in the Figure 7 caption; we
//! adopt the §3.1/§3.2 convention `dim(t) = t mod k`, which only relabels
//! slots.)

/// Dimension used in slot `t` for a `k`-cube: `t mod k`.
#[inline]
pub fn dimension_at(k: usize, t: u64) -> usize {
    debug_assert!(k > 0);
    (t % k as u64) as usize
}

/// All pairs `(x, x ⊕ 2^j)` of the `k`-cube along dimension `j`, with the
/// lower id first; `2^(k−1)` pairs in ascending order of the lower id.
/// Vertex `0` is the source.
pub fn pairs_at(k: usize, j: usize) -> Vec<(u32, u32)> {
    assert!(j < k, "dimension {j} out of range for a {k}-cube");
    let bit = 1u32 << j;
    (0..1u32 << k)
        .filter(|x| x & bit == 0)
        .map(|x| (x, x | bit))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 7 / §3.1 example: the three pairings of the 3-cube with
    /// 7 nodes plus the source.
    #[test]
    fn figure7_pairings_pinned() {
        // Dimension 0: (xx0) ↔ (xx1): 0-1, 2-3, 4-5, 6-7.
        assert_eq!(pairs_at(3, 0), vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
        // Dimension 1: (x0x) ↔ (x1x): 0-2, 1-3, 4-6, 5-7.
        assert_eq!(pairs_at(3, 1), vec![(0, 2), (1, 3), (4, 6), (5, 7)]);
        // Dimension 2: (0xx) ↔ (1xx): 0-4, 1-5, 2-6, 3-7.
        assert_eq!(pairs_at(3, 2), vec![(0, 4), (1, 5), (2, 6), (3, 7)]);
    }

    #[test]
    fn dimensions_cycle() {
        assert_eq!(dimension_at(3, 0), 0);
        assert_eq!(dimension_at(3, 4), 1);
        assert_eq!(dimension_at(3, 5), 2);
        assert_eq!(dimension_at(1, 17), 0);
    }

    #[test]
    fn pairs_partition_the_cube() {
        for k in 1..=6 {
            for j in 0..k {
                let pairs = pairs_at(k, j);
                assert_eq!(pairs.len(), 1 << (k - 1));
                let mut seen = vec![false; 1 << k];
                for (a, b) in pairs {
                    assert!(a < b);
                    assert_eq!(a ^ b, 1 << j);
                    for v in [a, b] {
                        assert!(!seen[v as usize], "vertex {v} paired twice");
                        seen[v as usize] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn each_vertex_meets_every_neighbor_over_k_slots() {
        let k = 4;
        for x in 0u32..16 {
            let mut partners: Vec<u32> = (0..k).map(|j| x ^ (1u32 << j)).collect();
            partners.sort_unstable();
            let mut met: Vec<u32> = (0..k)
                .flat_map(|j| {
                    pairs_at(k, j)
                        .into_iter()
                        .filter(move |&(a, b)| a == x || b == x)
                        .map(move |(a, b)| if a == x { b } else { a })
                })
                .collect();
            met.sort_unstable();
            assert_eq!(met, partners);
        }
    }
}
