//! The structured disjoint-tree construction (§2.2.1).
//!
//! Trees are built by concatenating the groups `G_0 … G_{d−1}` (in a
//! rotating order) followed by `G_d`, filling positions in breadth-first
//! order. Between trees the group order rotates left; after every
//! `P = d / gcd(I, d)` rotations the *elements* of each interior group
//! rotate right; and `G_d` rotates right before every new tree. The
//! appendix proves the resulting per-node positions are pairwise distinct
//! mod `d` (no receive collisions); [`crate::tree::DisjointTrees::validate`]
//! re-checks this for every instance we construct.

use crate::groups::Groups;
use crate::tree::DisjointTrees;
use clustream_core::CoreError;

fn gcd(a: usize, b: usize) -> usize {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

/// Build the `d` interior-disjoint trees for `n` receivers using the
/// structured (group-rotation) construction.
pub fn structured_forest(n: usize, d: usize) -> Result<DisjointTrees, CoreError> {
    let groups = Groups::new(n, d)?;
    let i_count = groups.interior_count();
    let n_pad = groups.n_pad();

    // Mutable working copies of the groups.
    let mut gs: Vec<Vec<u32>> = (0..d).map(|i| groups.g(i).collect()).collect();
    let mut gd: Vec<u32> = groups.g(d).collect();
    // P = d / gcd(I, d); for I = 0, gcd(0, d) = d so P = 1.
    let p = d / gcd(i_count, d);

    let mut order: Vec<usize> = (0..d).collect();
    let build = |order: &[usize], gs: &[Vec<u32>], gd: &[u32]| -> Vec<u32> {
        let mut t = Vec::with_capacity(n_pad);
        for &gi in order {
            t.extend_from_slice(&gs[gi]);
        }
        t.extend_from_slice(gd);
        t
    };

    let mut trees = Vec::with_capacity(d);
    // Step 1: T_0 = G_0 ⊕ G_1 ⊕ … ⊕ G_{d−1} ⊕ G_d.
    trees.push(build(&order, &gs, &gd));
    for k in 1..d {
        // Step 2: rotate the group order left.
        order.rotate_left(1);
        // Step 3 (every P rotations): rotate each G_i's elements right.
        // (No-op for empty interior groups, i.e. N ≤ d.)
        if k % p == 0 {
            for gi in gs.iter_mut().filter(|g| !g.is_empty()) {
                gi.rotate_right(1);
            }
        }
        // Step 4: rotate G_d right, then construct T_k.
        gd.rotate_right(1);
        trees.push(build(&order, &gs, &gd));
    }

    DisjointTrees::from_positions(groups, trees)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3(a): the structured construction for N = 15, d = 3.
    #[test]
    fn figure3a_pinned() {
        let f = structured_forest(15, 3).unwrap();
        assert_eq!(
            f.tree(0),
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
        );
        assert_eq!(
            f.tree(1),
            &[5, 6, 7, 8, 9, 10, 11, 12, 1, 2, 3, 4, 15, 13, 14]
        );
        assert_eq!(
            f.tree(2),
            &[9, 10, 11, 12, 1, 2, 3, 4, 5, 6, 7, 8, 14, 15, 13]
        );
        f.validate().unwrap();
    }

    #[test]
    fn interior_nodes_come_from_g_k() {
        let f = structured_forest(24, 4).unwrap();
        let g = *f.groups();
        for k in 0..4 {
            for p in 1..=f.interior_count() {
                let id = f.node_at(k, p);
                assert_eq!(
                    g.group_of(id),
                    k,
                    "tree {k} position {p} holds {id} from wrong group"
                );
            }
        }
    }

    #[test]
    fn validates_across_parameter_grid() {
        for n in 1..=40 {
            for d in 1..=6 {
                let f = structured_forest(n, d)
                    .unwrap_or_else(|e| panic!("construct N={n} d={d}: {e}"));
                f.validate()
                    .unwrap_or_else(|e| panic!("validate N={n} d={d}: {e}"));
            }
        }
    }

    #[test]
    fn larger_instances_validate() {
        for (n, d) in [(100, 3), (255, 2), (500, 5), (1000, 4), (2000, 2)] {
            structured_forest(n, d).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn step3_fires_when_p_divides_k() {
        // Choose I and d with gcd > 1 so P < d and the within-group
        // rotation actually happens: N = 24, d = 4 ⇒ I = 5, gcd(5,4) = 1,
        // P = 4 (no step 3). N = 32, d = 4 ⇒ I = 7, P = 4. For P < d we
        // need gcd(I, d) > 1: N = 40, d = 4 ⇒ I = 9... gcd 1. N = 24,
        // d = 6 ⇒ I = 3, gcd(3,6) = 3, P = 2: step 3 fires at k = 2, 4.
        let f = structured_forest(24, 6).unwrap();
        f.validate().unwrap();
        // Spot-check that tree 2's interior is an element-rotated G_2.
        let g = *f.groups();
        let g2: Vec<u32> = g.g(2).collect();
        let interior2: Vec<u32> = (1..=f.interior_count()).map(|p| f.node_at(2, p)).collect();
        let mut rot = g2.clone();
        rot.rotate_right(1);
        assert_eq!(interior2, rot, "expected element rotation at k = P");
    }

    #[test]
    fn all_leaf_group_occupies_tail_positions() {
        let f = structured_forest(15, 3).unwrap();
        let g = *f.groups();
        for k in 0..3 {
            for p in (f.n_pad() - 3 + 1)..=f.n_pad() {
                let id = f.node_at(k, p);
                assert_eq!(g.group_of(id), 3, "tail of tree {k} must be G_d");
            }
        }
    }
}
