//! Construction ablation: do the structured and greedy constructions
//! deliver different QoS? (Same guarantees; node placement differs.)

use clustream_bench::{ext_constructions, render_table};

fn main() {
    let rows = ext_constructions(&[15, 100, 500, 2000], 3);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.construction.clone(),
                r.max_delay.to_string(),
                format!("{:.2}", r.avg_delay),
                r.max_buffer.to_string(),
            ]
        })
        .collect();
    println!("Construction ablation, d = 3\n");
    println!(
        "{}",
        render_table(
            &["N", "construction", "max delay", "avg delay", "buffer"],
            &table
        )
    );
}
