//! Pick a scheme from QoS constraints, then verify the choice by
//! simulation: Table 1 as a decision procedure.
//!
//! ```sh
//! cargo run --example scheme_picker
//! ```

use clustream::prelude::*;
use clustream::{recommend_scheme, SchemeChoice};

fn verify(n: usize, choice: SchemeChoice) -> Result<(u64, usize), CoreError> {
    let run = match choice {
        SchemeChoice::MultiTree { d } => {
            let mut s = MultiTreeScheme::new(greedy_forest(n, d)?, StreamMode::PreRecorded);
            Simulator::run(&mut s, &SimConfig::until_complete(64, 100_000))?
        }
        SchemeChoice::Hypercube => {
            let mut s = HypercubeStream::new(n)?;
            Simulator::run(&mut s, &SimConfig::until_complete(64, 100_000))?
        }
    };
    Ok((run.qos.max_delay(), run.qos.max_buffer()))
}

fn main() -> Result<(), CoreError> {
    println!(
        "{:>6}  {:>14}  {:>18}  {:>9}  {:>6}",
        "N", "buffer budget", "recommendation", "max delay", "buffer"
    );
    for &(n, budget) in &[
        (500usize, None),    // desktop players: memory is cheap
        (500, Some(4usize)), // embedded set-top boxes: 4-packet buffers
        (2000, None),
        (2000, Some(8)),
        (50, Some(2)),
    ] {
        let choice = recommend_scheme(n, budget);
        let (delay, buffer) = verify(n, choice)?;
        let label = match choice {
            SchemeChoice::MultiTree { d } => format!("multi-tree (d={d})"),
            SchemeChoice::Hypercube => "hypercube".to_string(),
        };
        let budget_s = budget.map_or("unlimited".to_string(), |b| format!("{b} packets"));
        println!("{n:>6}  {budget_s:>14}  {label:>18}  {delay:>9}  {buffer:>6}");
        if let Some(b) = budget {
            // Budgets are in *resident* packets; the measured high-water
            // mark additionally counts the packet received in the same
            // slot it is played (+1 transient, see clustream-sim docs).
            assert!(buffer <= b + 1, "recommendation violated the buffer budget");
        }
    }
    Ok(())
}
