//! Recovery benchmark: what failure detection, online tree repair and
//! NACK retransmission buy under membership churn.
//!
//! For each churn rate, the same seeded crash trace is replayed through
//! the DES three times — fail-silent (`off`), detection + repair
//! (`repair`), and repair + retransmission (`repair+nack`) — and the
//! table reports delivered fraction, recovery latency and control
//! overhead per tier. A machine-readable summary is written to
//! `BENCH_recovery.json`.

use clustream_bench::render_table;
use clustream_des::{DesConfig, DesEngine, TICKS_PER_SLOT};
use clustream_multitree::{Construction, StreamMode};
use clustream_recovery::{RecoveryConfig, SelfHealingMultiTree};
use clustream_workloads::{ChurnTrace, ChurnTraceConfig};
use serde::Serialize;
use std::time::Instant;

const N: usize = 60;
const D: usize = 3;
const TRACK: u64 = 48;
const HORIZON: u64 = 240;
const SEED: u64 = 11;

#[derive(Serialize)]
struct RecoveryRow {
    churn_rate: f64,
    mode: String,
    departures: usize,
    /// Fraction of the N·track tracked packets that reached their node.
    delivered_fraction: f64,
    missing_packets: u64,
    failures_detected: u64,
    repairs_committed: u64,
    displaced_total: u64,
    recovery_latency_avg_slots: f64,
    recovery_latency_max_slots: f64,
    nacks_sent: u64,
    retransmissions: u64,
    repaired_packets: u64,
    abandoned_packets: u64,
    control_messages: u64,
    /// Control messages per data transmission (the overhead the
    /// recovery layer adds to the stream).
    control_overhead: f64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct RecoveryReport {
    build: String,
    n: usize,
    d: usize,
    track: u64,
    horizon: u64,
    rows: Vec<RecoveryRow>,
}

fn trace_for(rate: f64) -> ChurnTrace {
    ChurnTrace::generate(ChurnTraceConfig {
        initial_members: N,
        slots: HORIZON,
        join_rate: 0.0,
        leave_rate: rate,
        rejoin_rate: rate / 2.0,
        seed: SEED,
    })
}

fn run_tier(trace: &ChurnTrace, rate: f64, mode: &str, rec: RecoveryConfig) -> RecoveryRow {
    let mut scheme =
        SelfHealingMultiTree::new(N, D, StreamMode::PreRecorded, Construction::Greedy).unwrap();
    let cfg = DesConfig::slot_faithful(clustream_sim::SimConfig::until_complete(TRACK, HORIZON))
        .with_churn(trace.clone())
        .with_recovery(rec);
    let start = Instant::now();
    let r = DesEngine::new().run(&mut scheme, &cfg).unwrap();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let missing = r.loss.as_ref().map_or(0, |l| l.total_missing()) as u64;
    let expected = (N as u64) * TRACK;
    let res = r.resilience.unwrap_or_default();
    let departures = trace
        .events
        .iter()
        .filter(|e| matches!(e.action, clustream_workloads::ChurnAction::Leave { .. }))
        .count();
    RecoveryRow {
        churn_rate: rate,
        mode: mode.to_string(),
        departures,
        delivered_fraction: 1.0 - missing as f64 / expected as f64,
        missing_packets: missing,
        failures_detected: res.failures_detected,
        repairs_committed: res.repairs_committed,
        displaced_total: res.displaced_total,
        recovery_latency_avg_slots: res
            .avg_recovery_latency_slots(TICKS_PER_SLOT)
            .unwrap_or(0.0),
        recovery_latency_max_slots: res.recovery_latency_max_ticks as f64 / TICKS_PER_SLOT as f64,
        nacks_sent: res.nacks_sent,
        retransmissions: res.retransmissions,
        repaired_packets: res.repaired_packets,
        abandoned_packets: res.abandoned_packets,
        control_messages: res.control_messages,
        control_overhead: res.control_messages as f64 / r.total_transmissions.max(1) as f64,
        wall_ms,
    }
}

fn main() {
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    if build == "debug" {
        eprintln!("warning: debug build — wall times are not representative");
    }

    let tiers = [
        ("off", RecoveryConfig::default()),
        ("repair", RecoveryConfig::repair()),
        ("repair+nack", RecoveryConfig::repair_nack()),
    ];
    let mut rows = Vec::new();
    for &rate in &[0.0005, 0.002, 0.005] {
        let trace = trace_for(rate);
        for (mode, rec) in tiers {
            rows.push(run_tier(&trace, rate, mode, rec));
        }
        // Tier monotonicity (repair ≥ off ≥ …) is only a theorem for
        // interior crashes without rejoins (see tests/recovery.rs); with
        // rejoins a leaf departure can make the tiers trade places by a
        // few packets, so the bench reports rather than asserts.
    }

    println!(
        "\n{}",
        render_table(
            &[
                "churn",
                "mode",
                "leaves",
                "delivered",
                "repairs",
                "lat avg",
                "nacks",
                "ctl ovhd"
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.4}", r.churn_rate),
                        r.mode.clone(),
                        r.departures.to_string(),
                        format!("{:.4}", r.delivered_fraction),
                        r.repairs_committed.to_string(),
                        format!("{:.1}", r.recovery_latency_avg_slots),
                        r.nacks_sent.to_string(),
                        format!("{:.4}", r.control_overhead),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );

    let report = RecoveryReport {
        build: build.to_string(),
        n: N,
        d: D,
        track: TRACK,
        horizon: HORIZON,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_recovery.json", json + "\n").expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
}
