//! ext-D/ext-E: fault injection — link-loss sweeps and single-crash blast
//! radius, quantifying the §1 resilience arguments.

use clustream_bench::{ext_crash, ext_loss, render_table};

fn main() {
    println!("ext-D — link loss (N = 200, d = 2, 48 tracked packets)\n");
    let rows = ext_loss(200, 2, &[0.001, 0.01, 0.05], 48);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                format!("{:.3}", r.loss_rate),
                format!("{:.1}%", 100.0 * r.affected_frac),
                format!("{:.2}", r.avg_missing),
                r.lost_in_flight.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "loss rate",
                "affected nodes",
                "avg missing",
                "lost links"
            ],
            &table
        )
    );

    println!("ext-E — crash of node 1 at slot 4 (N = 200, d = 2, 48 packets)\n");
    let rows = ext_crash(200, 2, 4, 48);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.clone(),
                r.starved_nodes.to_string(),
                format!("{:.0}%", 100.0 * r.worst_loss_frac),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["scheme", "starved nodes", "worst stream loss"], &table)
    );
    println!("single tree: the crashed subtree loses ~the whole stream;");
    println!("multi-tree: the same subtree loses ~1/d of packets (one tree of d).");
}
