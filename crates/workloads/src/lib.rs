//! Deterministic workload generation for `clustream` experiments.
//!
//! * [`churn`] — churn traces (Poisson arrivals, exponential lifetimes)
//!   driving the multi-tree dynamics experiments; fully seeded and
//!   serde-serializable so runs are replayable;
//! * [`scenario`] — scripted flash crowds (step/ramp/spike-train join
//!   curves) and correlated regional failures, compiled to `ChurnTrace`
//!   events replayable by every engine;
//! * [`qoe`] — quality-of-experience metrics over per-node arrival
//!   timelines: interruption probability, initial-buffering tradeoff
//!   curves, throughput–smoothness frontiers;
//! * [`sweep`] — population grids for the Figure 4 / Table 1 sweeps.

#![warn(missing_docs)]

pub mod churn;
pub mod populations;
pub mod qoe;
pub mod scenario;
pub mod sweep;

pub use churn::{
    ChurnAction, ChurnEvent, ChurnTrace, ChurnTraceConfig, ResolvedChurnAction, ResolvedChurnEvent,
};
pub use populations::{adversarial_ns, boundary_ns, complete_ns, special_ns};
pub use qoe::{
    initial_buffering_frontier, play, summarize, throughput_smoothness_frontier, NodeQoe,
    NodeTimeline, PlayPolicy, QoeSummary,
};
pub use scenario::{JoinCurve, RegionalFailure, ScenarioPlan};
pub use sweep::{geometric_grid, linear_grid};
