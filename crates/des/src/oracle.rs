//! Differential oracle: DES (slot-faithful) vs the fast slot engine.
//!
//! The same contract [`clustream_sim::DiffHarness`] enforces between the
//! two slot engines, extended to the third: in the degenerate
//! configuration ([`DesConfig::slot_faithful`]) a DES run must reproduce
//! the fast engine's [`RunResult`] **field for field**, or fail with an
//! identically-rendered error. `tests/des_differential.rs` drives this
//! over all four scheme families; the CLI's `--runtime des-checked` and
//! `ci.sh` run it on every gate.

use crate::config::{DesConfig, QueueKind};
use crate::engine::DesEngine;
use clustream_core::Scheme;
use clustream_sim::{diff_fields, FastEngine, RunResult, SimConfig};

/// The DES-vs-slot differential harness. Stateless; see
/// [`DesOracle::check`].
pub struct DesOracle;

impl DesOracle {
    /// Run one fresh scheme from `factory` through the fast slot engine
    /// and through the DES in slot-faithful mode, demanding identical
    /// outcomes.
    ///
    /// * Both succeed with equal results → `Ok(result)`.
    /// * Both fail with identically-rendered errors → `Err(None)`.
    /// * Any divergence → `Err(Some(description))`.
    #[allow(clippy::type_complexity)]
    pub fn check<F>(factory: F, cfg: &SimConfig) -> Result<RunResult, Option<String>>
    where
        F: FnMut() -> Box<dyn Scheme>,
    {
        Self::check_with_queue(factory, cfg, QueueKind::Heap)
    }

    /// [`DesOracle::check`] with an explicit event-queue choice for the
    /// DES side. `QueueKind::Checked` composes both oracles in one run:
    /// the queue lockstep asserts wheel ≡ heap pop for pop, and the field
    /// diff asserts DES ≡ slot engine — which is how the differential
    /// suite covers the wheel without running every scheme twice.
    #[allow(clippy::type_complexity)]
    pub fn check_with_queue<F>(
        mut factory: F,
        cfg: &SimConfig,
        queue: QueueKind,
    ) -> Result<RunResult, Option<String>>
    where
        F: FnMut() -> Box<dyn Scheme>,
    {
        // Strip telemetry from the oracle-side run: a checked run should
        // record its metrics once, not once per engine.
        let slot = FastEngine::new().run(factory().as_mut(), &cfg.without_telemetry());
        let des = DesEngine::new().run(
            factory().as_mut(),
            &DesConfig::slot_faithful(cfg.clone()).with_queue(queue),
        );
        match (slot, des) {
            (Ok(s), Ok(d)) => {
                let diffs = diff_fields(&s, &d);
                if diffs.is_empty() {
                    Ok(d)
                } else {
                    Err(Some(format!(
                        "slot and DES engines diverge on {} fields {:?} for scheme {} \
                         (slots {} vs {}, delay {} vs {}, buffer {} vs {})",
                        diffs.len(),
                        diffs,
                        s.scheme,
                        s.slots_run,
                        d.slots_run,
                        s.qos.max_delay(),
                        d.qos.max_delay(),
                        s.qos.max_buffer(),
                        d.qos.max_buffer(),
                    )))
                }
            }
            (Err(se), Err(de)) => {
                let (ss, ds) = (se.to_string(), de.to_string());
                if ss == ds {
                    Err(None)
                } else {
                    Err(Some(format!(
                        "engines fail differently: slot `{ss}` vs DES `{ds}`"
                    )))
                }
            }
            (Ok(s), Err(de)) => Err(Some(format!(
                "slot engine succeeds ({}) but DES errors: {de}",
                s.scheme
            ))),
            (Err(se), Ok(d)) => Err(Some(format!(
                "DES succeeds ({}) but slot engine errors: {se}",
                d.scheme
            ))),
        }
    }

    /// Like [`DesOracle::check`] but panics on divergence: the assertion
    /// form used by tests and the CLI's checked runtime.
    pub fn run_checked<F>(factory: F, cfg: &SimConfig) -> Result<RunResult, String>
    where
        F: FnMut() -> Box<dyn Scheme>,
    {
        Self::run_checked_with_queue(factory, cfg, QueueKind::Heap)
    }

    /// [`DesOracle::run_checked`] with an explicit event-queue choice
    /// (`--runtime des-checked --queue …` on the CLI).
    pub fn run_checked_with_queue<F>(
        factory: F,
        cfg: &SimConfig,
        queue: QueueKind,
    ) -> Result<RunResult, String>
    where
        F: FnMut() -> Box<dyn Scheme>,
    {
        match Self::check_with_queue(factory, cfg, queue) {
            Ok(r) => Ok(r),
            Err(None) => Err("both engines failed identically".into()),
            Err(Some(divergence)) => panic!("DES differential oracle: {divergence}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_core::{NodeId, PacketId, Slot, StateView, Transmission, SOURCE};

    struct Chain {
        n: usize,
    }
    impl Scheme for Chain {
        fn name(&self) -> String {
            format!("chain({})", self.n)
        }
        fn num_receivers(&self) -> usize {
            self.n
        }
        fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
            let t = slot.t();
            out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
            for i in 1..self.n as u64 {
                if t >= i {
                    out.push(Transmission::local(
                        NodeId(i as u32),
                        NodeId(i as u32 + 1),
                        PacketId(t - i),
                    ));
                }
            }
        }
    }

    #[test]
    fn chain_clean_runs_agree() {
        let r = DesOracle::check(
            || Box::new(Chain { n: 6 }),
            &SimConfig::until_complete(16, 200),
        )
        .expect("engines must agree");
        assert_eq!(r.qos.max_delay(), 6);
    }

    #[test]
    fn every_queue_kind_passes_the_oracle() {
        let cfg = SimConfig::with_faults(24, 80, clustream_sim::FaultPlan::loss(0.25, 42));
        for queue in [QueueKind::Heap, QueueKind::Wheel, QueueKind::Checked] {
            let r = DesOracle::check_with_queue(|| Box::new(Chain { n: 6 }), &cfg, queue)
                .unwrap_or_else(|d| panic!("{queue:?}: {d:?}"));
            assert!(r.loss.as_ref().unwrap().lost_in_flight > 0);
        }
    }

    #[test]
    fn chain_traced_and_lossy_runs_agree() {
        let cfg = SimConfig::until_complete(10, 200).traced();
        let r = DesOracle::check(|| Box::new(Chain { n: 4 }), &cfg).expect("engines must agree");
        assert_eq!(
            r.trace.as_ref().unwrap().events.len() as u64,
            r.total_transmissions
        );
        let cfg = SimConfig::with_faults(24, 80, clustream_sim::FaultPlan::loss(0.25, 42));
        let r = DesOracle::check(|| Box::new(Chain { n: 6 }), &cfg).expect("engines must agree");
        assert!(r.loss.as_ref().unwrap().lost_in_flight > 0);
    }

    #[test]
    fn identical_errors_are_not_a_divergence() {
        let cfg = SimConfig {
            max_slots: 2,
            track_packets: 4,
            ..SimConfig::default()
        };
        match DesOracle::check(|| Box::new(Chain { n: 5 }), &cfg) {
            Err(None) => {}
            other => panic!("expected identical failures, got {other:?}"),
        }
    }
}
