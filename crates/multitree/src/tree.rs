//! Position tables for the `d` interior-disjoint trees and their invariants.
//!
//! Positions in each tree are numbered in breadth-first order with the
//! source `S` at position `0` and receivers at `1..=N_pad`; the children of
//! position `q` are positions `q·d+1 ..= q·d+d`, so position `p`'s parent is
//! `(p−1)/d` and its **child index** is `(p−1) mod d`. Because the
//! round-robin schedule sends to child index `r` in slots `t ≡ r (mod d)`,
//! a node at position `p` receives its tree-`k` packets in slots
//! `≡ (p−1) (mod d)` — which is why the no-collision invariant below is
//! "the positions of a node across trees are pairwise distinct mod `d`".

use crate::groups::Groups;
use clustream_core::CoreError;
use serde::{Deserialize, Serialize};

/// The `d` interior-disjoint trees over a (padded) receiver population.
///
/// Serializable for persistence; a deserialized forest should be
/// re-checked with [`DisjointTrees::validate`] before use, since serde
/// bypasses the [`DisjointTrees::from_positions`] permutation checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisjointTrees {
    groups: Groups,
    /// `positions[k][p−1]` = node id at position `p` of tree `T_k`.
    positions: Vec<Vec<u32>>,
    /// `pos_of[k][id−1]` = position of node `id` in tree `T_k`.
    pos_of: Vec<Vec<u32>>,
}

impl DisjointTrees {
    /// Wrap raw position tables, checking that each tree is a permutation
    /// of `1..=N_pad`. Structural invariants are *not* checked here; call
    /// [`DisjointTrees::validate`] (done by both constructions' tests and
    /// by `dynamics` after every mutation).
    pub fn from_positions(groups: Groups, positions: Vec<Vec<u32>>) -> Result<Self, CoreError> {
        let d = groups.d();
        let n_pad = groups.n_pad();
        if positions.len() != d {
            return Err(CoreError::InvalidConfig(format!(
                "expected {d} trees, got {}",
                positions.len()
            )));
        }
        let mut pos_of = vec![vec![0u32; n_pad]; d];
        for (k, tree) in positions.iter().enumerate() {
            if tree.len() != n_pad {
                return Err(CoreError::InvalidConfig(format!(
                    "tree {k} has {} positions, expected {n_pad}",
                    tree.len()
                )));
            }
            let mut seen = vec![false; n_pad + 1];
            for (i, &id) in tree.iter().enumerate() {
                if id == 0 || id as usize > n_pad || seen[id as usize] {
                    return Err(CoreError::InvalidConfig(format!(
                        "tree {k} is not a permutation (id {id} at position {})",
                        i + 1
                    )));
                }
                seen[id as usize] = true;
                pos_of[k][id as usize - 1] = (i + 1) as u32;
            }
        }
        Ok(DisjointTrees {
            groups,
            positions,
            pos_of,
        })
    }

    /// The underlying group partition.
    pub fn groups(&self) -> &Groups {
        &self.groups
    }

    /// Tree degree `d`.
    pub fn d(&self) -> usize {
        self.groups.d()
    }

    /// Real receiver count `N`.
    pub fn n(&self) -> usize {
        self.groups.n()
    }

    /// Padded population `N_pad` (positions per tree).
    pub fn n_pad(&self) -> usize {
        self.groups.n_pad()
    }

    /// `I`: interior positions per tree (positions `1..=I`).
    pub fn interior_count(&self) -> usize {
        self.groups.interior_count()
    }

    /// Node id at position `p ∈ 1..=N_pad` of tree `k`.
    pub fn node_at(&self, k: usize, p: usize) -> u32 {
        self.positions[k][p - 1]
    }

    /// Position of node `id` in tree `k`.
    pub fn position(&self, k: usize, id: u32) -> usize {
        self.pos_of[k][id as usize - 1] as usize
    }

    /// Raw position table of tree `k` (ids in BFS order).
    pub fn tree(&self, k: usize) -> &[u32] {
        &self.positions[k]
    }

    /// Parent position of `p` (`0` = the source).
    pub fn parent_pos(&self, p: usize) -> usize {
        debug_assert!(p >= 1);
        (p - 1) / self.d()
    }

    /// Child index of position `p`: which of its parent's `d` child slots
    /// it occupies (`0..d`), hence the slot residue in which it receives.
    pub fn child_index(&self, p: usize) -> usize {
        (p - 1) % self.d()
    }

    /// Child positions of position `p` that exist (`≤ N_pad`).
    pub fn children_pos(&self, p: usize) -> impl Iterator<Item = usize> {
        let d = self.d();
        let n_pad = self.n_pad();
        (p * d + 1..=p * d + d).filter(move |&c| c <= n_pad)
    }

    /// Depth of position `p` (root children = depth 1).
    pub fn depth_of(&self, p: usize) -> usize {
        let mut depth = 0;
        let mut q = p;
        while q >= 1 {
            q = self.parent_pos(q);
            depth += 1;
        }
        depth
    }

    /// Tree height `h`: depth of the deepest position. For complete trees
    /// this is the `h` of Theorem 2 (`d + d² + … + d^h = N_pad`).
    pub fn height(&self) -> usize {
        self.depth_of(self.n_pad())
    }

    /// Whether position `p` is interior (has children).
    pub fn is_interior_pos(&self, p: usize) -> bool {
        p <= self.interior_count()
    }

    /// The tree (if any) in which node `id` is interior.
    pub fn interior_tree_of(&self, id: u32) -> Option<usize> {
        (0..self.d()).find(|&k| self.is_interior_pos(self.position(k, id)))
    }

    /// Check every structural invariant of §2.2:
    ///
    /// 1. each tree is a permutation of `1..=N_pad` (guaranteed by
    ///    construction, re-checked);
    /// 2. **interior-disjoint**: every node is interior in at most one tree;
    /// 3. **no-collision**: each node's positions across the `d` trees are
    ///    pairwise distinct mod `d` (so it receives ≤ 1 packet per slot);
    /// 4. dummies appear only in leaf positions.
    pub fn validate(&self) -> Result<(), CoreError> {
        let d = self.d();
        let n_pad = self.n_pad();
        // 1. permutations
        for k in 0..d {
            let mut seen = vec![false; n_pad + 1];
            for p in 1..=n_pad {
                let id = self.node_at(k, p);
                if id == 0 || id as usize > n_pad || seen[id as usize] {
                    return Err(CoreError::InvalidConfig(format!(
                        "tree {k} not a permutation at position {p}"
                    )));
                }
                seen[id as usize] = true;
                if self.position(k, id) != p {
                    return Err(CoreError::InvalidConfig(format!(
                        "pos_of out of sync for id {id} in tree {k}"
                    )));
                }
            }
        }
        for id in 1..=n_pad as u32 {
            // 2. interior-disjoint
            let interior_in = (0..d)
                .filter(|&k| self.is_interior_pos(self.position(k, id)))
                .count();
            if interior_in > 1 {
                return Err(CoreError::InvalidConfig(format!(
                    "node {id} is interior in {interior_in} trees"
                )));
            }
            // 4. dummies are all-leaf
            if self.groups.is_dummy(id) && interior_in != 0 {
                return Err(CoreError::InvalidConfig(format!(
                    "dummy node {id} is interior"
                )));
            }
            // 3. no-collision: positions pairwise distinct mod d
            let mut residues = vec![false; d];
            for k in 0..d {
                let r = (self.position(k, id) - 1) % d;
                if residues[r] {
                    return Err(CoreError::InvalidConfig(format!(
                        "node {id} has two positions ≡ {r} (mod {d}) — receive collision"
                    )));
                }
                residues[r] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_forest(n: usize, d: usize) -> (Groups, Vec<Vec<u32>>) {
        // d trees each the identity permutation — valid shape, but violates
        // interior-disjointness for d > 1.
        let g = Groups::new(n, d).unwrap();
        let tree: Vec<u32> = (1..=g.n_pad() as u32).collect();
        (g, vec![tree; d])
    }

    #[test]
    fn permutation_check_rejects_duplicates() {
        let g = Groups::new(6, 2).unwrap();
        let bad = vec![vec![1, 2, 3, 4, 5, 5], vec![1, 2, 3, 4, 5, 6]];
        assert!(DisjointTrees::from_positions(g, bad).is_err());
    }

    #[test]
    fn wrong_tree_count_rejected() {
        let g = Groups::new(6, 2).unwrap();
        let one = vec![vec![1, 2, 3, 4, 5, 6]];
        assert!(DisjointTrees::from_positions(g, one).is_err());
    }

    #[test]
    fn identity_forest_fails_interior_disjointness() {
        let (g, pos) = identity_forest(6, 2);
        let f = DisjointTrees::from_positions(g, pos).unwrap();
        let err = f.validate().unwrap_err();
        assert!(err.to_string().contains("interior"), "{err}");
    }

    #[test]
    fn bfs_arithmetic() {
        let (g, pos) = identity_forest(15, 3);
        let f = DisjointTrees::from_positions(g, pos).unwrap();
        assert_eq!(f.parent_pos(1), 0);
        assert_eq!(f.parent_pos(3), 0);
        assert_eq!(f.parent_pos(4), 1);
        assert_eq!(f.parent_pos(15), 4);
        assert_eq!(f.child_index(1), 0);
        assert_eq!(f.child_index(3), 2);
        assert_eq!(f.children_pos(1).collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(f.children_pos(4).collect::<Vec<_>>(), vec![13, 14, 15]);
        assert_eq!(f.children_pos(5).count(), 0);
        assert_eq!(f.depth_of(1), 1);
        assert_eq!(f.depth_of(4), 2);
        assert_eq!(f.depth_of(15), 3);
        assert_eq!(f.height(), 3);
        assert_eq!(f.interior_count(), 4);
        assert!(f.is_interior_pos(4));
        assert!(!f.is_interior_pos(5));
    }

    #[test]
    fn collision_residues_detected() {
        // d = 2, N = 4: trees [1,2,3,4] and [3,4,1,2]: node 1 occupies
        // positions 1 and 3 — both ≡ 1 (mod 2) ⇒ collision.
        let g = Groups::new(4, 2).unwrap();
        let f = DisjointTrees::from_positions(g, vec![vec![1, 2, 3, 4], vec![3, 4, 1, 2]]).unwrap();
        let err = f.validate().unwrap_err();
        assert!(err.to_string().contains("collision"), "{err}");
    }

    #[test]
    fn valid_two_tree_example_passes() {
        // d = 2, N = 4, I = 1: interior positions = {1}. Trees
        // T_0 = [1,2,3,4] (interior: 1), T_1 = [2,1,4,3] (interior: 2).
        // Residues: node 1 → pos 1, 2 (0 and 1 mod 2 ✓), node 2 → 2, 1 ✓,
        // node 3 → 3, 4 ✓, node 4 → 4, 3 ✓.
        let g = Groups::new(4, 2).unwrap();
        let f = DisjointTrees::from_positions(g, vec![vec![1, 2, 3, 4], vec![2, 1, 4, 3]]).unwrap();
        f.validate().unwrap();
        assert_eq!(f.interior_tree_of(1), Some(0));
        assert_eq!(f.interior_tree_of(2), Some(1));
        assert_eq!(f.interior_tree_of(3), None);
    }
}
