//! Construction of the backbone tree `τ` over the cluster super nodes
//! (§2.1, Step 1 and Figure 1).
//!
//! The source `S` is the root with degree `D`; every other interior node
//! has degree at most `D − 1` (one unit of each `S_i`'s capacity is
//! reserved for feeding its own cluster through `S'_i`). Clusters are
//! attached in BFS order, which keeps the tree tight: at most one interior
//! node ends up with degree `< D − 1`, and it sits in the next-to-last
//! layer.

use clustream_core::CoreError;

/// The backbone tree over clusters `0..K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backbone {
    big_d: usize,
    /// `parent[i]` = parent cluster of cluster `i`, or `None` if cluster
    /// `i` hangs directly off the source.
    parent: Vec<Option<usize>>,
    /// `depth[i]` = number of inter-cluster hops from `S` to `S_i` (≥ 1).
    depth: Vec<usize>,
}

impl Backbone {
    /// Build the super-tree for `k ≥ 1` clusters with source degree
    /// `d_cap = D ≥ 2`.
    pub fn new(k: usize, d_cap: usize) -> Result<Self, CoreError> {
        if k == 0 {
            return Err(CoreError::InvalidConfig("need at least one cluster".into()));
        }
        if d_cap < 2 {
            return Err(CoreError::InvalidConfig(
                "source degree D must be ≥ 2".into(),
            ));
        }
        let mut parent = vec![None; k];
        let mut depth = vec![0usize; k];
        // First min(D, K) clusters are children of S.
        let direct = k.min(d_cap);
        for d in depth.iter_mut().take(direct) {
            *d = 1;
        }
        // Remaining clusters attach BFS to the earliest cluster with spare
        // backbone capacity (D − 1 children each).
        let mut next_parent = 0usize;
        let mut children = vec![0usize; k];
        for i in direct..k {
            while children[next_parent] == d_cap - 1 {
                next_parent += 1;
            }
            parent[i] = Some(next_parent);
            children[next_parent] += 1;
            depth[i] = depth[next_parent] + 1;
        }
        Ok(Backbone {
            big_d: d_cap,
            parent,
            depth,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.parent.len()
    }

    /// The source degree `D`.
    pub fn degree(&self) -> usize {
        self.big_d
    }

    /// Parent cluster of cluster `i` (`None` = directly under `S`).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Backbone children of cluster `i`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.k())
            .filter(|&c| self.parent[c] == Some(i))
            .collect()
    }

    /// Hops from the source to `S_i`.
    pub fn depth(&self, i: usize) -> usize {
        self.depth[i]
    }

    /// Maximum backbone depth, `≈ 1 + log_{D−1} K`.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1: K = 9 clusters, D = 3 — S feeds S_1..S_3; S_1 feeds
    /// S_4, S_5; S_2 feeds S_6, S_7; S_3 feeds S_8, S_9 (0-indexed here).
    #[test]
    fn figure1_backbone_pinned() {
        let b = Backbone::new(9, 3).unwrap();
        for i in 0..3 {
            assert_eq!(b.parent(i), None);
            assert_eq!(b.depth(i), 1);
        }
        assert_eq!(b.children(0), vec![3, 4]);
        assert_eq!(b.children(1), vec![5, 6]);
        assert_eq!(b.children(2), vec![7, 8]);
        for i in 3..9 {
            assert_eq!(b.depth(i), 2);
        }
        assert_eq!(b.max_depth(), 2);
    }

    #[test]
    fn source_degree_respected() {
        for (k, d_cap) in [(1, 3), (5, 3), (20, 4), (64, 3), (100, 5)] {
            let b = Backbone::new(k, d_cap).unwrap();
            let direct = (0..k).filter(|&i| b.parent(i).is_none()).count();
            assert!(direct <= d_cap, "K={k} D={d_cap}");
            for i in 0..k {
                assert!(
                    b.children(i).len() < d_cap,
                    "cluster {i} exceeds interior degree (K={k}, D={d_cap})"
                );
            }
        }
    }

    #[test]
    fn depth_grows_logarithmically() {
        // max_depth ≤ 1 + ⌈log_{D−1}(K)⌉ for a tight BFS tree.
        for (k, d_cap) in [(9usize, 3usize), (40, 3), (100, 4), (500, 5)] {
            let b = Backbone::new(k, d_cap).unwrap();
            let bound = 1 + ((k as f64).ln() / ((d_cap - 1) as f64).ln()).ceil() as usize;
            assert!(
                b.max_depth() <= bound,
                "K={k} D={d_cap}: depth {} > {bound}",
                b.max_depth()
            );
        }
    }

    #[test]
    fn at_most_one_underfull_interior() {
        let b = Backbone::new(23, 4).unwrap();
        let interior_underfull = (0..23)
            .filter(|&i| {
                let c = b.children(i).len();
                c > 0 && c < 3
            })
            .count();
        assert!(interior_underfull <= 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Backbone::new(0, 3).is_err());
        assert!(Backbone::new(4, 1).is_err());
    }

    #[test]
    fn depths_are_parent_plus_one() {
        let b = Backbone::new(50, 3).unwrap();
        for i in 0..50 {
            match b.parent(i) {
                None => assert_eq!(b.depth(i), 1),
                Some(p) => assert_eq!(b.depth(i), b.depth(p) + 1),
            }
        }
    }
}
