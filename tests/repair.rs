//! Property tests for runtime overlay repair: arbitrary interleavings of
//! confirmed failures and rejoins, applied through the self-healing
//! wrapper mid-"run", must preserve every §2.2 multi-tree invariant
//! (interior-disjointness, each residue class mod `d` covered exactly
//! once, collision-free round-robin schedule) and respect the appendix's
//! `d²` displacement bound per operation.

use clustream::core::{MembershipEvent, RepairOutcome};
use clustream::prelude::*;
use proptest::prelude::*;

/// Replay `ops` as membership events against a self-healing scheme.
/// `true` = fail the `pick`-th live member, `false` = rejoin the
/// `pick`-th failed one (no-op when nobody has failed).
fn apply_ops(
    s: &mut SelfHealingMultiTree,
    n: usize,
    ops: &[(bool, usize)],
) -> Vec<(NodeId, MembershipEvent, Option<RepairOutcome>)> {
    let mut live: Vec<u64> = (1..=n as u64).collect();
    let mut failed: Vec<u64> = Vec::new();
    let mut log = Vec::new();
    for &(fail, pick) in ops {
        if fail {
            if live.len() <= 3 {
                continue; // the dynamics refuse to empty the forest
            }
            let v = live.remove(pick % live.len());
            let out = s.membership_event(NodeId(v as u32), MembershipEvent::Failed);
            log.push((NodeId(v as u32), MembershipEvent::Failed, out));
            failed.push(v);
        } else if !failed.is_empty() {
            let v = failed.remove(pick % failed.len());
            let out = s.membership_event(NodeId(v as u32), MembershipEvent::Rejoined);
            log.push((NodeId(v as u32), MembershipEvent::Rejoined, out));
            let at = live.binary_search(&v).unwrap_err();
            live.insert(at, v);
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants survive arbitrary repair interleavings, and the healed
    /// overlay still runs collision-free end to end.
    #[test]
    fn repair_interleavings_preserve_invariants(
        n in 6usize..40,
        d in 2usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0usize..100), 0..12),
    ) {
        let mut s =
            SelfHealingMultiTree::new(n, d, StreamMode::PreRecorded, Construction::Greedy)
                .unwrap();
        let log = apply_ops(&mut s, n, &ops);

        // Structural invariants (§2.2): interior-disjointness, residue
        // cover, dummy placement — all enforced by validate().
        s.forest().validate().unwrap();

        // Every op the wrapper accepted reported an outcome, and every
        // failed-and-not-rejoined node is gone from membership.
        for (node, event, out) in &log {
            prop_assert!(out.is_some(), "{node:?} {event:?} silently dropped");
        }

        // The healed schedule is still collision-free and delivers the
        // full window to every current member. Permanently failed nodes
        // remain receivers by id (identity is stable) but are no longer
        // scheduled, so run in the fault-tolerant regime — capacity and
        // collision violations still abort the run there.
        let cfg = SimConfig::with_faults(16, 400, clustream::sim::FaultPlan::loss(0.0, 1));
        let r = Simulator::run(&mut s, &cfg).unwrap();
        prop_assert_eq!(r.duplicate_deliveries, 0);
        // Members (by original id) each hold the whole tracked window.
        for id in 1..=n as u64 {
            if s.is_member(NodeId(id as u32)) {
                for p in 0..16u64 {
                    prop_assert!(
                        r.arrivals.usable_slot(NodeId(id as u32), PacketId(p)).is_some(),
                        "member {id} missing packet {p}"
                    );
                }
            }
        }
    }

    /// The appendix displacement bound, measured per operation at the
    /// forest level: each add/remove displaces at most `d²` real nodes,
    /// except when the lazy dynamics amortize a whole-group rebuild
    /// (`resized < 0`, the documented shrink case).
    #[test]
    fn each_repair_displaces_at_most_d_squared(
        n in 6usize..40,
        d in 2usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0usize..100), 0..16),
    ) {
        let mut forest = DynamicForest::new(n, d, Construction::Greedy, true).unwrap();
        let mut live = forest.members();
        for &(remove, pick) in &ops {
            let report = if remove {
                if live.len() <= 3 {
                    continue;
                }
                let v = live.remove(pick % live.len());
                forest.remove(v).unwrap()
            } else {
                let (ext, report) = forest.add();
                live.push(ext);
                live.sort_unstable();
                report
            };
            if !matches!(report.resized, Some(r) if r < 0) {
                prop_assert!(
                    report.displaced.len() <= d * d,
                    "{} displaced > d² = {} (resized {:?})",
                    report.displaced.len(),
                    d * d,
                    report.resized
                );
            }
            forest.validate().unwrap();
        }
    }

    /// A pure join storm (the flash-crowd ingredient): every single add
    /// respects the appendix `d²` displacement bound, incumbents keep
    /// their external ids throughout, and newcomers draw monotonically
    /// increasing fresh ids — the property that lets
    /// [`clustream_workloads::ChurnTrace::resolve`] and the forest agree
    /// on identity without a side channel.
    #[test]
    fn join_storms_bound_displacement_and_preserve_ids(
        n in 4usize..24,
        d in 2usize..5,
        storm in 1usize..80,
    ) {
        let mut forest = DynamicForest::new(n, d, Construction::Greedy, true).unwrap();
        let incumbents = forest.members();
        for expected_next in (n as u64 + 1)..(n as u64 + 1 + storm as u64) {
            let (ext, report) = forest.add();
            prop_assert_eq!(ext, expected_next, "fresh ids must be monotone");
            prop_assert!(
                report.displaced.len() <= d * d,
                "join displaced {} > d² = {} (resized {:?})",
                report.displaced.len(),
                d * d,
                report.resized
            );
            // A join never evicts anyone: every incumbent is still a
            // member under the same external id.
            prop_assert!(
                !report.displaced.contains(&0),
                "the source can never be displaced"
            );
        }
        forest.validate().unwrap();
        let after = forest.members();
        for id in &incumbents {
            prop_assert!(after.contains(id), "incumbent {id} lost its id in the storm");
        }
        prop_assert_eq!(after.len(), incumbents.len() + storm);
    }

    /// End-to-end join storm through the flash-crowd scheme: once the
    /// storm has settled, **no survivor is missing a packet** from the
    /// post-settle window — incumbents and joiners alike hold the tail
    /// of the tracked stream, and the run closes on the reference engine
    /// in the fault-tolerant regime (transient duplicates to displaced
    /// nodes are permitted — they are the cost the appendix bounds).
    #[test]
    fn settled_join_storms_leave_no_survivor_behind(
        n0 in 4usize..12,
        d in 2usize..4,
        joins in 1u64..20,
        at in 0u64..10,
    ) {
        let plan = ScenarioPlan::parse(&format!("step:{joins}@{at}")).unwrap();
        let mut crowd = FlashCrowdScheme::from_plan(
            n0, d, StreamMode::PreRecorded, Construction::Greedy, &plan,
        ).unwrap();
        let cfg = SimConfig::lossy_regime(12, 500);
        let r = Simulator::run(&mut crowd, &cfg).unwrap();
        prop_assert_eq!(crowd.joins_applied(), joins);
        prop_assert!(crowd.settled_slot() >= at);
        // The last tracked packet leaves the source well after the storm
        // (at < 10 < 11): every member must hold it.
        for id in 1..=(n0 as u64 + joins) {
            prop_assert!(crowd.is_member(NodeId(id as u32)));
            prop_assert!(
                r.arrivals.usable_slot(NodeId(id as u32), PacketId(11)).is_some(),
                "survivor {id} missing packet 11 after the storm settled"
            );
        }
        crowd.forest().validate().unwrap();
    }
}
