//! The length-prefixed wire format.
//!
//! Every message on a cluster link — control plane or data plane — is one
//! frame: a 4-byte little-endian body length followed by the body, whose
//! first byte is the frame tag. Integers are little-endian, strings are a
//! `u32` byte length followed by UTF-8. The format is deliberately
//! byte-level (not JSON) on the data path so a `Packet` frame costs a few
//! dozen bytes; the two bulky control messages ([`Frame::Config`] and
//! [`Frame::Report`]) carry a JSON payload as a single string field, so
//! the schedule structs keep their serde derivations.
//!
//! Decoding never panics: truncated, oversized and corrupt inputs all
//! surface as typed [`FrameError`]s (pinned by the unit tests below, and
//! a proptest round-trips every frame shape).

use std::io::{self, Read, Write};

/// Hard ceiling on a frame body, bytes. Large enough for a lowered
/// schedule for thousands of nodes, small enough that a corrupt length
/// prefix cannot ask the reader to allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 22;

/// A decode failure. Distinct from [`io::Error`]: these are protocol
/// violations in bytes that did arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before the fields it promised.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The advertised body length.
        len: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// Structurally invalid: unknown tag, trailing bytes, bad UTF-8.
    Corrupt(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// One wire message. Control-plane frames flow between the orchestrator
/// and nodes; `Packet`/`Nack` flow on the node-to-node data links.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Node → orchestrator, first frame on the control link: identifies
    /// the node and carries the address its own listener bound (the node
    /// binds an ephemeral port, so only it knows).
    Hello {
        /// The sender's node id.
        node: u32,
        /// The address the node's data listener is bound to.
        listen_addr: String,
    },
    /// Orchestrator → node: the node's lowered schedule and parameters,
    /// as a JSON-encoded [`crate::schedule::NodeConfig`].
    Config {
        /// JSON payload.
        payload: String,
    },
    /// Node → orchestrator: schedule installed, peer links connected.
    Ready {
        /// The sender's node id.
        node: u32,
    },
    /// Orchestrator → all nodes: slot 0 begins now.
    Start,
    /// Orchestrator → all nodes: stream over, report and exit.
    Stop,
    /// A stream packet on a data link.
    Packet {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Packet sequence number.
        packet: u64,
        /// The sender's slot when it sent.
        slot: u64,
        /// Sender wall clock, UNIX nanoseconds (same host, so comparable).
        sent_ns: u64,
        /// `true` for a NACK-triggered retransmission.
        retransmit: bool,
    },
    /// A retransmission request on a data link (receiver → source).
    Nack {
        /// The requesting node.
        from: u32,
        /// The missing packet.
        packet: u64,
    },
    /// Node → orchestrator: a watched upstream link has gone silent past
    /// the suspect timeout.
    Suspect {
        /// The node raising the suspicion.
        watcher: u32,
        /// The node suspected dead.
        subject: u32,
        /// Watcher wall clock at suspicion, UNIX nanoseconds.
        at_ns: u64,
    },
    /// Node → orchestrator: every tracked packet has arrived.
    Complete {
        /// The completing node.
        node: u32,
        /// Wall clock at completion, UNIX nanoseconds.
        at_ns: u64,
    },
    /// Node → orchestrator, sent on `Stop` (or at the horizon): final
    /// per-node statistics, as a JSON-encoded
    /// [`crate::schedule::NodeReport`].
    Report {
        /// JSON payload.
        payload: String,
    },
    /// Orchestrator → node after a confirmed failure: a healed calendar
    /// to splice in at a barrier slot, as a JSON-encoded
    /// [`crate::schedule::ScheduleUpdate`].
    ScheduleUpdate {
        /// JSON payload.
        payload: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_CONFIG: u8 = 2;
const TAG_READY: u8 = 3;
const TAG_START: u8 = 4;
const TAG_STOP: u8 = 5;
const TAG_PACKET: u8 = 6;
const TAG_NACK: u8 = 7;
const TAG_SUSPECT: u8 = 8;
const TAG_COMPLETE: u8 = 9;
const TAG_REPORT: u8 = 10;
const TAG_SCHEDULE_UPDATE: u8 = 11;

impl Frame {
    /// Encode the frame body (no length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Frame::Hello { node, listen_addr } => {
                b.push(TAG_HELLO);
                put_u32(&mut b, *node);
                put_str(&mut b, listen_addr);
            }
            Frame::Config { payload } => {
                b.push(TAG_CONFIG);
                put_str(&mut b, payload);
            }
            Frame::Ready { node } => {
                b.push(TAG_READY);
                put_u32(&mut b, *node);
            }
            Frame::Start => b.push(TAG_START),
            Frame::Stop => b.push(TAG_STOP),
            Frame::Packet {
                from,
                to,
                packet,
                slot,
                sent_ns,
                retransmit,
            } => {
                b.push(TAG_PACKET);
                put_u32(&mut b, *from);
                put_u32(&mut b, *to);
                put_u64(&mut b, *packet);
                put_u64(&mut b, *slot);
                put_u64(&mut b, *sent_ns);
                b.push(u8::from(*retransmit));
            }
            Frame::Nack { from, packet } => {
                b.push(TAG_NACK);
                put_u32(&mut b, *from);
                put_u64(&mut b, *packet);
            }
            Frame::Suspect {
                watcher,
                subject,
                at_ns,
            } => {
                b.push(TAG_SUSPECT);
                put_u32(&mut b, *watcher);
                put_u32(&mut b, *subject);
                put_u64(&mut b, *at_ns);
            }
            Frame::Complete { node, at_ns } => {
                b.push(TAG_COMPLETE);
                put_u32(&mut b, *node);
                put_u64(&mut b, *at_ns);
            }
            Frame::Report { payload } => {
                b.push(TAG_REPORT);
                put_str(&mut b, payload);
            }
            Frame::ScheduleUpdate { payload } => {
                b.push(TAG_SCHEDULE_UPDATE);
                put_str(&mut b, payload);
            }
        }
        b
    }

    /// Decode one frame body (the bytes after the length prefix).
    /// Trailing bytes after the last field are corrupt, not ignored —
    /// silent slack would hide framing bugs forever.
    pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let mut cur = Cursor { buf: body, pos: 0 };
        let tag = cur.u8()?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                node: cur.u32()?,
                listen_addr: cur.string()?,
            },
            TAG_CONFIG => Frame::Config {
                payload: cur.string()?,
            },
            TAG_READY => Frame::Ready { node: cur.u32()? },
            TAG_START => Frame::Start,
            TAG_STOP => Frame::Stop,
            TAG_PACKET => Frame::Packet {
                from: cur.u32()?,
                to: cur.u32()?,
                packet: cur.u64()?,
                slot: cur.u64()?,
                sent_ns: cur.u64()?,
                retransmit: match cur.u8()? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(FrameError::Corrupt(format!(
                            "retransmit flag must be 0 or 1, got {other}"
                        )))
                    }
                },
            },
            TAG_NACK => Frame::Nack {
                from: cur.u32()?,
                packet: cur.u64()?,
            },
            TAG_SUSPECT => Frame::Suspect {
                watcher: cur.u32()?,
                subject: cur.u32()?,
                at_ns: cur.u64()?,
            },
            TAG_COMPLETE => Frame::Complete {
                node: cur.u32()?,
                at_ns: cur.u64()?,
            },
            TAG_REPORT => Frame::Report {
                payload: cur.string()?,
            },
            TAG_SCHEDULE_UPDATE => Frame::ScheduleUpdate {
                payload: cur.string()?,
            },
            other => return Err(FrameError::Corrupt(format!("unknown frame tag {other}"))),
        };
        if cur.pos != body.len() {
            return Err(FrameError::Corrupt(format!(
                "{} trailing bytes after a complete frame",
                body.len() - cur.pos
            )));
        }
        Ok(frame)
    }
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated {
            needed: usize::MAX,
            got: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated {
                needed: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| FrameError::Corrupt(format!("string field is not UTF-8: {e}")))
    }
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<usize> {
    let body = frame.encode_body();
    debug_assert!(body.len() <= MAX_FRAME, "encoder produced oversized frame");
    let mut msg = Vec::with_capacity(4 + body.len());
    msg.extend_from_slice(&(body.len() as u32).to_le_bytes());
    msg.extend_from_slice(&body);
    w.write_all(&msg)?;
    Ok(msg.len())
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed between frames); EOF mid-frame is
/// [`FrameError::Truncated`] surfaced as an [`io::ErrorKind::InvalidData`]
/// error. The second tuple element is the bytes consumed.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(Frame, usize)>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(FrameError::Truncated {
                needed: 4,
                got: filled,
            }
            .into());
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        }
        .into());
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = r.read(&mut body[got..])?;
        if n == 0 {
            return Err(FrameError::Truncated { needed: len, got }.into());
        }
        got += n;
    }
    let frame = Frame::decode_body(&body)?;
    Ok(Some((frame, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(f: &Frame) {
        let body = f.encode_body();
        let back = Frame::decode_body(&body).expect("decodes");
        assert_eq!(*f, back);
        // And through the length-prefixed stream path.
        let mut wire = Vec::new();
        let written = write_frame(&mut wire, f).unwrap();
        assert_eq!(written, wire.len());
        let mut r = wire.as_slice();
        let (got, consumed) = read_frame(&mut r).unwrap().expect("one frame");
        assert_eq!(got, *f);
        assert_eq!(consumed, wire.len());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after");
    }

    /// Build an ASCII string from sampled bytes (the wire format allows
    /// any UTF-8; sampling printable ASCII keeps failures readable).
    fn s(bytes: &[u8]) -> String {
        bytes.iter().map(|b| (b'!' + b % 90) as char).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        fn any_frame_roundtrips(
            shape in 0usize..11,
            a in 0u32..u32::MAX,
            b in 0u32..u32::MAX,
            x in 0u64..u64::MAX,
            y in 0u64..u64::MAX,
            z in 0u64..u64::MAX,
            flag in any::<bool>(),
            text in proptest::collection::vec(0u8..255, 0..64),
        ) {
            let frame = match shape {
                0 => Frame::Hello { node: a, listen_addr: s(&text) },
                1 => Frame::Config { payload: s(&text) },
                2 => Frame::Ready { node: a },
                3 => Frame::Start,
                4 => Frame::Stop,
                5 => Frame::Packet {
                    from: a, to: b, packet: x, slot: y, sent_ns: z,
                    retransmit: flag,
                },
                6 => Frame::Nack { from: a, packet: x },
                7 => Frame::Suspect { watcher: a, subject: b, at_ns: x },
                8 => Frame::Complete { node: a, at_ns: x },
                9 => Frame::Report { payload: s(&text) },
                _ => Frame::ScheduleUpdate { payload: s(&text) },
            };
            roundtrip(&frame);
        }

        /// Truncating a valid body anywhere never panics and never
        /// decodes to a frame that re-encodes differently.
        fn truncation_is_detected_or_harmless(
            a in 0u32..u32::MAX,
            x in 0u64..u64::MAX,
            cut in 0usize..64,
        ) {
            let body = Frame::Suspect { watcher: a, subject: a, at_ns: x }
                .encode_body();
            prop_assume!(cut < body.len());
            match Frame::decode_body(&body[..cut]) {
                Err(_) => {}
                Ok(f) => prop_assert_eq!(f.encode_body(), body[..cut].to_vec()),
            }
        }
    }

    #[test]
    fn empty_body_is_truncated_not_panic() {
        assert_eq!(
            Frame::decode_body(&[]),
            Err(FrameError::Truncated { needed: 1, got: 0 })
        );
    }

    #[test]
    fn truncated_fields_report_needed_and_got() {
        // A Ready frame missing its node id: tag present, 4 bytes absent.
        let err = Frame::decode_body(&[TAG_READY, 0, 1]).unwrap_err();
        assert_eq!(err, FrameError::Truncated { needed: 5, got: 3 });
        assert!(err.to_string().contains("needed 5 bytes, got 3"));
    }

    #[test]
    fn string_length_overrunning_body_is_truncated() {
        // Hello claiming a 100-byte address in a 2-byte remainder.
        let mut body = vec![TAG_HELLO];
        body.extend_from_slice(&7u32.to_le_bytes());
        body.extend_from_slice(&100u32.to_le_bytes());
        body.extend_from_slice(b"ab");
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn unknown_tag_is_corrupt() {
        let err = Frame::decode_body(&[200]).unwrap_err();
        assert!(matches!(err, FrameError::Corrupt(_)), "{err:?}");
        assert!(err.to_string().contains("unknown frame tag 200"));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut body = Frame::Start.encode_body();
        body.push(0xAB);
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"), "{err}");
    }

    #[test]
    fn non_utf8_string_is_corrupt() {
        let mut body = vec![TAG_CONFIG];
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&[0xFF, 0xFE]);
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("not UTF-8"), "{err}");
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut body = Frame::Packet {
            from: 1,
            to: 2,
            packet: 3,
            slot: 4,
            sent_ns: 5,
            retransmit: false,
        }
        .encode_body();
        *body.last_mut().unwrap() = 7;
        let err = Frame::decode_body(&body).unwrap_err();
        assert!(err.to_string().contains("retransmit flag"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("oversized frame"), "{err}");
    }

    #[test]
    fn eof_mid_length_prefix_is_truncated() {
        let wire = [3u8, 0]; // half a length prefix, then EOF
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated frame"), "{err}");
    }

    #[test]
    fn eof_mid_body_is_truncated() {
        let mut wire = Vec::new();
        let body = Frame::Ready { node: 9 }.encode_body();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body[..2]); // promise 5 bytes, deliver 2
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("truncated frame"), "{err}");
    }

    #[test]
    fn frames_stream_back_to_back() {
        let frames = [
            Frame::Hello {
                node: 3,
                listen_addr: "127.0.0.1:4000".into(),
            },
            Frame::Start,
            Frame::Nack {
                from: 3,
                packet: 17,
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            let (got, _) = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(got, *f);
        }
        assert!(read_frame(&mut r).unwrap().is_none());
    }
}
