//! The greedy disjoint-tree construction (§2.2.2).
//!
//! Node id `i` has **parity** `p_i = (i − 1) mod d` and occupies child slot
//! `(p_i − k) mod d` in tree `T_k`; equivalently, position `q` of tree `T_k`
//! must be filled by a node of parity `(q + k − 1) mod d`. Because a node's
//! child-slot residues `(p_i − k) mod d` over `k = 0..d` are automatically
//! pairwise distinct, the parity rule *is* the no-collision property.
//!
//! **Generalization note.** The paper draws tree `T_k`'s interior nodes
//! from the fixed consecutive range `G_k = {kI+1 … (k+1)I}`. The parities
//! available in that range match the parities demanded by interior
//! positions `1..=I` only when `I ≡ 1 (mod d)` (which holds for the paper's
//! running example, `N = 15`, `d = 3`, `I = 4`); for other populations the
//! literal Step 2 is infeasible. We therefore generalize the interior
//! selection: positions `1..=I` of `T_k` take the **smallest id of the
//! demanded parity that is not yet interior in any tree**. A counting
//! argument shows this never strands (each parity class has `N_pad/d = I+1`
//! ids while total interior demand per parity across all trees is exactly
//! `I`), it keeps the trees interior-disjoint (an id is consumed by the
//! first tree that makes it interior), dummies are never promoted (they are
//! the largest id of their parity class), and on parameter sets where the
//! paper's rule applies — Figure 3(b) in particular — it selects exactly
//! the same trees.

use crate::groups::Groups;
use crate::tree::DisjointTrees;
use clustream_core::CoreError;
use std::collections::VecDeque;

/// Build the `d` interior-disjoint trees for `n` receivers using the
/// greedy (parity-driven) construction.
pub fn greedy_forest(n: usize, d: usize) -> Result<DisjointTrees, CoreError> {
    let groups = Groups::new(n, d)?;
    let i_count = groups.interior_count();
    let n_pad = groups.n_pad();

    // Ascending ids per parity class; interior selection consumes from the
    // front so each id is interior in at most one tree.
    let mut interior_pool: Vec<VecDeque<u32>> = vec![VecDeque::new(); d];
    for id in 1..=n_pad as u32 {
        interior_pool[groups.parity(id)].push_back(id);
    }

    let mut trees: Vec<Vec<u32>> = Vec::with_capacity(d);
    for k in 0..d {
        let mut tree = Vec::with_capacity(n_pad);
        let mut in_this_tree = vec![false; n_pad + 1];

        // Interior positions 1..=I: smallest not-yet-interior id of the
        // demanded parity (for T_0 this reproduces the identity layout and
        // the paper's "interior = G_0").
        for q in 1..=i_count {
            let want = (q + k - 1) % d;
            let id = interior_pool[want].pop_front().ok_or_else(|| {
                CoreError::InvalidConfig(format!(
                    "greedy: interior parity class {want} exhausted for T_{k} position {q}"
                ))
            })?;
            tree.push(id);
            in_this_tree[id as usize] = true;
        }

        // Leaf positions I+1..=N_pad: smallest id of the demanded parity
        // not already in this tree.
        let mut leaf_buckets: Vec<VecDeque<u32>> = vec![VecDeque::new(); d];
        for id in 1..=n_pad as u32 {
            if !in_this_tree[id as usize] {
                leaf_buckets[groups.parity(id)].push_back(id);
            }
        }
        for q in (i_count + 1)..=n_pad {
            let want = (q + k - 1) % d;
            let id = leaf_buckets[want].pop_front().ok_or_else(|| {
                CoreError::InvalidConfig(format!(
                    "greedy: leaf parity class {want} exhausted for T_{k} position {q}"
                ))
            })?;
            tree.push(id);
        }

        trees.push(tree);
    }

    DisjointTrees::from_positions(groups, trees)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3(b): the greedy construction for N = 15, d = 3.
    #[test]
    fn figure3b_pinned() {
        let f = greedy_forest(15, 3).unwrap();
        assert_eq!(
            f.tree(0),
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
        );
        assert_eq!(
            f.tree(1),
            &[5, 6, 7, 8, 3, 1, 2, 9, 4, 11, 12, 10, 14, 15, 13]
        );
        assert_eq!(
            f.tree(2),
            &[9, 10, 11, 12, 1, 2, 3, 4, 5, 6, 7, 8, 15, 13, 14]
        );
        f.validate().unwrap();
    }

    /// Figure 2: node id 6's positions, hence its receive residues, in the
    /// greedy construction: interior (with children) in T_1, leaf
    /// elsewhere.
    #[test]
    fn figure2_node6_schedule_structure() {
        let f = greedy_forest(15, 3).unwrap();
        // Node 6: position 6 in T_0 (leaf), position 2 in T_1 (interior),
        // position 10 in T_2 (leaf).
        assert_eq!(f.position(0, 6), 6);
        assert_eq!(f.position(1, 6), 2);
        assert_eq!(f.position(2, 6), 10);
        assert_eq!(f.interior_tree_of(6), Some(1));
        // Its children in T_1 are positions 7, 8, 9 = nodes 2, 9, 4, and
        // its parents are S (T_1), node 1 (T_0, parent of position 6) and
        // node 11 (T_2, parent of position 10) — matching Figure 2's
        // neighbor set {2, 9, 4, 1, 11, S} for the greedy construction.
        let kids: Vec<u32> = f.children_pos(2).map(|p| f.node_at(1, p)).collect();
        assert_eq!(kids, vec![2, 9, 4]);
        assert_eq!(f.parent_pos(2), 0); // parent in T_1 is the source
        assert_eq!(f.node_at(0, f.parent_pos(6)), 1);
        assert_eq!(f.node_at(2, f.parent_pos(10)), 11);
    }

    #[test]
    fn parity_rule_holds_everywhere() {
        for (n, d) in [(15, 3), (16, 4), (40, 5), (9, 3), (20, 2), (14, 3)] {
            let f = greedy_forest(n, d).unwrap();
            let g = *f.groups();
            for k in 0..d {
                for q in 1..=f.n_pad() {
                    let id = f.node_at(k, q);
                    assert_eq!(
                        (q + k - 1) % d,
                        g.parity(id),
                        "N={n} d={d} tree {k} position {q} id {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_paper_groups_when_aligned() {
        // When I ≡ 1 (mod d) the generalized selection reduces to the
        // paper's "interior of T_k = G_k" rule. N = 15, d = 3 has I = 4.
        let f = greedy_forest(15, 3).unwrap();
        let g = *f.groups();
        for k in 0..3 {
            for p in 1..=f.interior_count() {
                assert_eq!(g.group_of(f.node_at(k, p)), k);
            }
        }
    }

    #[test]
    fn validates_across_parameter_grid() {
        for n in 1..=40 {
            for d in 1..=6 {
                let f =
                    greedy_forest(n, d).unwrap_or_else(|e| panic!("construct N={n} d={d}: {e}"));
                f.validate()
                    .unwrap_or_else(|e| panic!("validate N={n} d={d}: {e}"));
            }
        }
    }

    #[test]
    fn larger_instances_validate() {
        for (n, d) in [(100, 3), (256, 2), (500, 5), (999, 4), (2000, 3)] {
            greedy_forest(n, d).unwrap().validate().unwrap();
        }
    }

    #[test]
    fn interior_selection_is_globally_disjoint() {
        let f = greedy_forest(21, 3).unwrap();
        let mut interior_of: Vec<Option<usize>> = vec![None; f.n_pad() + 1];
        for k in 0..3 {
            for p in 1..=f.interior_count() {
                let id = f.node_at(k, p) as usize;
                assert!(interior_of[id].is_none(), "id {id} interior twice");
                interior_of[id] = Some(k);
            }
        }
    }

    #[test]
    fn structured_and_greedy_share_tree_zero() {
        // Both constructions define T_0 as the identity layout.
        for (n, d) in [(15, 3), (26, 4)] {
            let s = crate::structured::structured_forest(n, d).unwrap();
            let g = greedy_forest(n, d).unwrap();
            assert_eq!(s.tree(0), g.tree(0));
        }
    }
}
