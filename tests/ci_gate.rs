//! Guard rails for the tiered CI gate itself: `ci.sh` must reject an
//! unknown tier up front (before any cargo command burns minutes) with
//! an error naming the valid tiers, and the script must keep advertising
//! all three tiers so the cheap pre-flight here stays honest.

use std::path::Path;
use std::process::Command;

fn ci_script() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/ci.sh"))
}

#[test]
fn unknown_tier_fails_fast_and_lists_valid_tiers() {
    let out = Command::new("bash")
        .arg(ci_script())
        .arg("nightly")
        .output()
        .expect("ci.sh should be runnable through bash");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown tier must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown tier"), "stderr: {stderr}");
    assert!(
        stderr.contains("nightly"),
        "must echo the bad tier: {stderr}"
    );
    assert!(
        stderr.contains("quick, full, scale"),
        "must list the valid tiers: {stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "no stage may start under a bad tier: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn script_parses_and_defines_both_tiers() {
    let out = Command::new("bash")
        .arg("-n")
        .arg(ci_script())
        .output()
        .expect("bash -n");
    assert!(out.status.success(), "ci.sh has a syntax error");

    let text = std::fs::read_to_string(ci_script()).unwrap();
    for needle in [
        "quick | full | scale)",
        "TIER=\"${1:-full}\"",
        "bench_check",
        "RUSTDOCFLAGS=\"-D warnings\"",
        // The scale tier: the mega-engine CLI smoke (sequential and
        // sharded runs against the fast engine) plus the scaling bench
        // gate, under the per-stage wall-clock budget with its
        // machine-readable timing artifact.
        "--engine mega --shards 4",
        "--suite scale",
        "CI_STAGE_BUDGET_SECS",
        "target/ci-timings.json",
        // The model-checker stages: corpus replay guards every tier's
        // edit loop; the exhaustive lattice and the fixed-seed explore
        // smoke guard the merge gate.
        "check --replay-corpus --corpus tests/corpus",
        "check --exhaustive",
        "check --explore --budget 500 --seed 7",
        // The networked deployment stages: a loopback cluster smoke in
        // every tier, and the 32-node kill-injection acceptance run in
        // the merge gate — both closed by the DES replay oracle.
        "cluster --nodes 8 --transport uds",
        "cluster --nodes 32 --transport tcp",
        "--kill 5@2",
        "replay --trace \"$trace\" --min-concordance 0.85",
        // The chaos-transport stages: seeded loss plus a gray node in
        // every tier, and the partition-and-heal run with live
        // in-network repair in the merge gate.
        "--chaos drop:0@0=0.05,gray:2@0=1",
        "--chaos partition:0/1@2+4,partition:0/2@4+4",
        "--repair true",
        // The scenario-suite stages: a 10^3-join flash crowd closed by
        // the slot/DES oracle in every tier, and the 10^5-join crowd on
        // the mega engine plus the capacity-class heterogeneity sweep
        // in the merge gate.
        "--joins 1000 --oracle",
        "--joins 100000 --engine mega",
        "ext_heterogeneity",
    ] {
        assert!(text.contains(needle), "ci.sh lost `{needle}`");
    }
}

#[test]
fn scenario_stages_sit_on_the_right_tiers() {
    // The 10^3-join oracle-closed crowd smoke belongs to the edit loop
    // (before the full-tier gate); the 10^5-join mega crowd and the
    // heterogeneity sweep are merge-gate-only (after it).
    let text = std::fs::read_to_string(ci_script()).unwrap();
    let smoke = text
        .find("stage \"flash-crowd smoke (10^3 joins, oracle-closed)\"")
        .expect("ci.sh lost the flash-crowd smoke stage");
    let crowd = text
        .find("stage \"flash-crowd acceptance (10^5 joins, mega + QoE frontiers)\"")
        .expect("ci.sh lost the 10^5-join flash-crowd stage");
    let hetero = text
        .find("stage \"heterogeneity sweep (capacity classes + per-class QoE)\"")
        .expect("ci.sh lost the heterogeneity sweep stage");
    let full_gate = text
        .find("[ \"$TIER\" = full ]")
        .expect("ci.sh lost the full-tier gate");
    assert!(
        smoke < full_gate,
        "the flash-crowd smoke must run in the quick tier"
    );
    assert!(
        crowd > full_gate && hetero > full_gate,
        "the acceptance crowd and heterogeneity sweep are merge-gate-only"
    );
}

#[test]
fn corpus_replay_runs_in_the_quick_tier() {
    // The replay stage must sit outside the full-tier block so `ci.sh
    // quick` exercises it: it appears before the `[ "$TIER" = full ]`
    // guard in the script text.
    let text = std::fs::read_to_string(ci_script()).unwrap();
    let replay = text
        .find("stage \"repro-corpus replay\"")
        .expect("ci.sh lost the repro-corpus replay stage");
    let full_gate = text
        .find("[ \"$TIER\" = full ]")
        .expect("ci.sh lost the full-tier gate");
    assert!(
        replay < full_gate,
        "repro-corpus replay must run in the quick tier"
    );
}

#[test]
fn cluster_smokes_sit_on_the_right_tiers() {
    // The cheap 8-node loopback cluster smokes — clean and chaos —
    // belong to the edit loop (before the full-tier gate); the 32-node
    // kill-injection and partition-and-heal acceptance runs are
    // merge-gate-only (after it).
    let text = std::fs::read_to_string(ci_script()).unwrap();
    let quick = text
        .find("stage \"cluster smoke (8 nodes, uds + replay oracle)\"")
        .expect("ci.sh lost the quick cluster smoke stage");
    let chaos = text
        .find("stage \"cluster chaos smoke (8 nodes, uds + loss/gray + replay oracle)\"")
        .expect("ci.sh lost the quick chaos smoke stage");
    let kill = text
        .find("stage \"cluster kill-injection smoke (32 nodes, tcp + replay oracle)\"")
        .expect("ci.sh lost the kill-injection cluster stage");
    let heal = text
        .find("stage \"cluster partition-and-heal smoke (32 nodes, tcp + live repair)\"")
        .expect("ci.sh lost the partition-and-heal cluster stage");
    let full_gate = text
        .find("[ \"$TIER\" = full ]")
        .expect("ci.sh lost the full-tier gate");
    assert!(
        quick < full_gate && chaos < full_gate,
        "the loopback cluster smokes must run in the quick tier"
    );
    assert!(
        kill > full_gate && heal > full_gate,
        "the 32-node cluster smokes are merge-gate-only"
    );
}

#[test]
fn mega_scale_smoke_runs_in_scale_and_full_tiers() {
    // The mega smoke is gated on `scale || full`, sitting between the
    // quick stages and the full-only block; the scaling bench gate is
    // scale-tier-only.
    let text = std::fs::read_to_string(ci_script()).unwrap();
    let smoke_gate = text
        .find("[ \"$TIER\" = scale ] || [ \"$TIER\" = full ]")
        .expect("ci.sh lost the scale/full smoke gate");
    let smoke = text
        .find("stage \"mega scale smoke")
        .expect("ci.sh lost the mega scale smoke stage");
    let scale_only = text
        .find("[ \"$TIER\" = scale ];")
        .expect("ci.sh lost the scale-only block");
    let bench_gate = text
        .find("stage \"bench scale gate")
        .expect("ci.sh lost the bench scale gate stage");
    assert!(smoke > smoke_gate, "smoke must sit in the scale/full gate");
    assert!(
        bench_gate > scale_only,
        "the scaling bench gate is scale-tier-only"
    );
}
