//! Discrete-event network runtime for `clustream` overlays.
//!
//! The paper's analysis — and both slot engines — assume a synchronous
//! world: slots are perfectly aligned, intra-cluster transfers take
//! exactly one slot (`T_i = 1`), inter-cluster transfers exactly `T_c`,
//! and capacity is enforced by fiat. Real networks are none of that. This
//! crate executes the *same* schemes (multi-tree, hypercube, overlay,
//! baselines — anything implementing [`clustream_core::Scheme`]) on an
//! asynchronous event loop so the gap can be measured:
//!
//! * **Event queue** ([`event`], [`wheel`]) — `Send`, `Deliver`,
//!   `PlaybackTick` and `Churn` events over fixed-point tick time
//!   ([`TICKS_PER_SLOT`] ticks per slot), deterministically ordered by
//!   `(time, class, insertion)`. The [`EventQueue`] trait has three
//!   implementations popping that identical order: [`HeapQueue`] (binary
//!   min-heap, the reference), [`WheelQueue`] (hierarchical timing wheel
//!   — O(1) pushes, pooled allocations, batched same-tick drains — an
//!   order of magnitude faster at scale), and [`CheckedQueue`] (both in
//!   lockstep, asserting identical pops), selected by
//!   [`config::QueueKind`].
//! * **Latency models** ([`latency`]) — fixed (the paper's model),
//!   uniform jitter, shifted-heavy-tail; seeded and reproducible.
//! * **Uplink gates** ([`uplink`]) — per-node serialization: capacity-`c`
//!   uplinks fit `c` sends per slot, later sends queue.
//! * **Churn** — [`clustream_workloads::ChurnTrace`]s resolve to concrete
//!   departures (never the source or a super node) applied at slot
//!   boundaries; departed members fall silent mid-run.
//!
//! # The equivalence anchor
//!
//! In the degenerate configuration ([`DesConfig::slot_faithful`]: fixed
//! latencies, unconstrained uplinks, no churn) every event lands on a
//! slot boundary and the DES replicates the slot engines' semantics
//! *exactly* — same validation order, same RNG draw order, same
//! [`clustream_sim::RunResult`] field for field, same rendered errors.
//! [`DesOracle`] enforces this continuously (property-based suite in
//! `tests/des_differential.rs`, smoke run in `ci.sh`, CLI runtime
//! `des-checked`), which is what licenses trusting the *relaxed* results:
//! any delay/buffer inflation measured under jitter or contention is
//! attributable to the network model, not to engine drift.

#![warn(missing_docs)]

pub mod capacity;
pub mod config;
pub mod engine;
pub mod event;
pub mod hot;
pub mod latency;
pub mod oracle;
pub mod replay;
pub mod uplink;
pub mod wheel;

pub use capacity::{CapacityClass, CapacityClassPlan};
pub use config::{DesConfig, QueueKind};
pub use engine::{DesEngine, DesStats};
pub use event::{Event, EventKind, EventQueue, HeapQueue, TICKS_PER_SLOT};
pub use latency::LatencyModel;
pub use oracle::DesOracle;
pub use replay::RecordedLatencies;
pub use uplink::{UplinkGate, UplinkModel};
pub use wheel::{CheckedQueue, WheelQueue};
