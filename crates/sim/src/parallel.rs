//! Deterministic parallel sweep runner.
//!
//! Experiment grids — `(N, d, seed)` cells for the paper's figures and
//! tables — are embarrassingly parallel: every cell is an independent
//! simulation. [`sweep`] farms the cells out to worker threads, each
//! owning one reusable [`FastEngine`] arena, and returns results **in
//! input order** regardless of which worker finished which cell when:
//! workers tag each result with its cell index and the results are
//! sorted by that index at the end. Because each cell's simulation is
//! itself deterministic, the whole sweep is — same grid, same output,
//! bit for bit, at any thread count (including 1).
//!
//! Scheduling is dynamic (an atomic next-cell counter), so a grid mixing
//! `N = 100` and `N = 20 000` cells keeps all workers busy instead of
//! stalling on a pre-chunked straggler.

use crate::fast::FastEngine;
use clustream_telemetry::{names, Telemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Dynamic work-claiming counter shared by a pool of workers.
///
/// Each worker repeatedly [`claims`](ClaimCounter::claim) the next unit
/// index until the pool is drained — the scheduling idiom behind both
/// the sweep workers below and the mega engine's in-run shard rounds
/// (`crate::mega`). Claiming is a single relaxed `fetch_add`; any
/// ordering the caller needs between rounds comes from its own
/// synchronisation (the sweep joins its threads, the mega engine sits
/// between barrier waits).
#[derive(Debug, Default)]
pub struct ClaimCounter {
    next: AtomicUsize,
}

impl ClaimCounter {
    /// A fresh counter starting at unit 0.
    pub fn new() -> Self {
        ClaimCounter {
            next: AtomicUsize::new(0),
        }
    }

    /// Claim the next unit index, or `None` once `limit` units have been
    /// handed out.
    #[inline]
    pub fn claim(&self, limit: usize) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < limit).then_some(i)
    }

    /// Rewind to unit 0 for the next round. Callers must ensure no
    /// worker is claiming concurrently (e.g. by a barrier).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// Number of worker threads a sweep will use for `n_cells` cells.
pub fn sweep_threads(n_cells: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(n_cells.max(1))
}

/// Run `run_cell` over every cell, in parallel, with deterministic
/// input-order results.
///
/// Each worker thread gets its own [`FastEngine`] arena, reused across
/// all cells the worker claims — the allocation-light engine amortises
/// its buffers over the whole sweep. `run_cell` receives the arena and a
/// reference to the cell.
pub fn sweep<I, R, F>(cells: &[I], run_cell: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&mut FastEngine, &I) -> R + Sync,
{
    sweep_with_threads(cells, sweep_threads(cells.len()), run_cell)
}

/// [`sweep`] with an explicit worker-pool size.
///
/// Results are in input order and bit-identical at every pool size —
/// the property the determinism tests pin down. `threads` is clamped to
/// at least 1; sizes beyond the cell count just idle.
pub fn sweep_with_threads<I, R, F>(cells: &[I], threads: usize, run_cell: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&mut FastEngine, &I) -> R + Sync,
{
    sweep_instrumented(cells, threads, &Telemetry::disabled(), run_cell)
}

/// [`sweep_with_threads`] with a telemetry sink for scheduler metrics.
///
/// With a recorder attached, the sweep records its wall time
/// ([`names::SWEEP_RUN`]), total cells executed ([`names::SWEEP_CELLS`]),
/// and per-worker work-claim counts and busy time
/// (`sweep.claims.worker<w>` / `sweep.busy.worker<w>`), from which
/// per-worker utilization is `busy / sweep.run`. Scheduling and results
/// are unaffected: the same cells run in the same dynamic order and the
/// output is bit-identical with telemetry on or off.
pub fn sweep_instrumented<I, R, F>(
    cells: &[I],
    threads: usize,
    telemetry: &Telemetry,
    run_cell: F,
) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&mut FastEngine, &I) -> R + Sync,
{
    let _sweep_span = telemetry.span(names::SWEEP_RUN);
    let threads = threads.max(1).min(cells.len().max(1));
    if threads <= 1 {
        let mut engine = FastEngine::new();
        let results = if telemetry.enabled() {
            let mut results = Vec::with_capacity(cells.len());
            let busy = format!("{}0", names::SWEEP_WORKER_BUSY_PREFIX);
            let claims = format!("{}0", names::SWEEP_WORKER_CLAIMS_PREFIX);
            for c in cells {
                let start = Instant::now();
                results.push(run_cell(&mut engine, c));
                telemetry.span_ns(&busy, start.elapsed().as_nanos() as u64);
            }
            telemetry.counter(&claims, cells.len() as u64);
            results
        } else {
            cells.iter().map(|c| run_cell(&mut engine, c)).collect()
        };
        telemetry.counter(names::SWEEP_CELLS, cells.len() as u64);
        return results;
    }

    let next = ClaimCounter::new();
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let telemetry = telemetry.clone();
                let (run_cell, next) = (&run_cell, &next);
                s.spawn(move || {
                    let mut engine = FastEngine::new();
                    let mut local = Vec::new();
                    let probe = telemetry.enabled().then(|| {
                        (
                            format!("{}{w}", names::SWEEP_WORKER_BUSY_PREFIX),
                            format!("{}{w}", names::SWEEP_WORKER_CLAIMS_PREFIX),
                        )
                    });
                    while let Some(i) = next.claim(cells.len()) {
                        match &probe {
                            Some((busy, _)) => {
                                let start = Instant::now();
                                local.push((i, run_cell(&mut engine, &cells[i])));
                                telemetry.span_ns(busy, start.elapsed().as_nanos() as u64);
                            }
                            None => local.push((i, run_cell(&mut engine, &cells[i]))),
                        }
                    }
                    if let Some((_, claims)) = &probe {
                        telemetry.counter(claims, local.len() as u64);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    telemetry.counter(names::SWEEP_CELLS, tagged.len() as u64);
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimConfig;
    use clustream_core::{NodeId, PacketId, Slot, StateView, Transmission, SOURCE};

    struct Chain {
        n: usize,
    }
    impl clustream_core::Scheme for Chain {
        fn name(&self) -> String {
            format!("chain({})", self.n)
        }
        fn num_receivers(&self) -> usize {
            self.n
        }
        fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
            let t = slot.t();
            out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
            for i in 1..self.n as u64 {
                if t >= i {
                    out.push(Transmission::local(
                        NodeId(i as u32),
                        NodeId(i as u32 + 1),
                        PacketId(t - i),
                    ));
                }
            }
        }
    }

    #[test]
    fn results_are_in_input_order() {
        // Deliberately unsorted mix of sizes.
        let cells: Vec<usize> = vec![9, 2, 7, 1, 5, 3, 8, 4, 6, 10];
        let results = sweep(&cells, |engine, &n| {
            let mut s = Chain { n };
            engine
                .run(&mut s, &SimConfig::until_complete(8, 200))
                .unwrap()
                .qos
                .max_delay()
        });
        // Chain max delay equals chain length.
        let expected: Vec<u64> = cells.iter().map(|&n| n as u64).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn sweep_matches_sequential_reference() {
        let cells: Vec<(usize, u64)> = (2..10).map(|n| (n, n as u64 * 3)).collect();
        let par = sweep(&cells, |engine, &(n, track)| {
            let mut s = Chain { n };
            engine
                .run(&mut s, &SimConfig::until_complete(track, 500))
                .unwrap()
        });
        for (cell, got) in cells.iter().zip(&par) {
            let mut s = Chain { n: cell.0 };
            let want =
                crate::Simulator::run(&mut s, &SimConfig::until_complete(cell.1, 500)).unwrap();
            assert_eq!(crate::diff::diff_fields(&want, got), Vec::<&str>::new());
        }
    }

    #[test]
    fn instrumented_sweep_matches_plain_and_records() {
        use clustream_telemetry::MemoryRecorder;
        let cells: Vec<usize> = (1..12).collect();
        let run = |engine: &mut FastEngine, &n: &usize| {
            let mut s = Chain { n };
            engine
                .run(&mut s, &SimConfig::until_complete(6, 200))
                .unwrap()
                .qos
                .max_delay()
        };
        let plain = sweep_with_threads(&cells, 2, run);
        let (rec, tel) = MemoryRecorder::handle();
        let inst = sweep_instrumented(&cells, 2, &tel, run);
        assert_eq!(plain, inst, "telemetry must not change results");
        let snap = rec.snapshot();
        assert_eq!(snap.counter(names::SWEEP_CELLS), cells.len() as u64);
        // Every cell was claimed by exactly one worker.
        let claims: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(names::SWEEP_WORKER_CLAIMS_PREFIX))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(claims, cells.len() as u64);
        assert!(snap.spans.contains_key(names::SWEEP_RUN));
        assert!(snap
            .spans
            .keys()
            .any(|k| k.starts_with(names::SWEEP_WORKER_BUSY_PREFIX)));
    }

    #[test]
    fn empty_sweep_is_empty() {
        let cells: Vec<usize> = Vec::new();
        let results = sweep(&cells, |_, _| 0u32);
        assert!(results.is_empty());
    }

    /// The sweep contract: input-order, bit-identical results at every
    /// pool size — 1 worker, 2 workers, and whatever `sweep_threads`
    /// would pick for the grid.
    #[test]
    fn results_are_deterministic_across_pool_sizes() {
        let cells: Vec<(usize, u64)> = (1..24).map(|n| (n, 4 + (n as u64 % 7))).collect();
        let run = |engine: &mut FastEngine, &(n, track): &(usize, u64)| {
            let mut s = Chain { n };
            engine
                .run(&mut s, &SimConfig::until_complete(track, 500))
                .unwrap()
        };
        let auto = sweep_threads(cells.len());
        let baseline = sweep_with_threads(&cells, 1, run);
        for threads in [2usize, auto] {
            let got = sweep_with_threads(&cells, threads, run);
            assert_eq!(got.len(), baseline.len());
            for (i, (want, have)) in baseline.iter().zip(&got).enumerate() {
                assert_eq!(
                    crate::diff::diff_fields(want, have),
                    Vec::<&str>::new(),
                    "cell {i} diverged at {threads} threads"
                );
            }
        }
        // Oversized pools are clamped, not a panic.
        let oversized = sweep_with_threads(&cells, cells.len() * 4, run);
        assert_eq!(oversized.len(), baseline.len());
    }
}
