//! Running one genome through the engines and the invariant registry.

use crate::genome::Genome;
use crate::invariant::{bounds_for, check_result, violation_from_error, Bounds, Violation};
use clustream_core::CoreError;
use clustream_des::{DesConfig, DesEngine, QueueKind};
use clustream_sim::{diff_fields, FastSimulator, MegaSimulator, RunResult, Simulator};
use clustream_telemetry::Telemetry;

/// Which engines a check runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engines {
    /// Fast engine only (the explorer's and shrinker's inner loop).
    FastOnly,
    /// Reference, fast, mega, and slot-faithful DES — the latter twice,
    /// on the heap and timing-wheel event queues — plus cross-engine
    /// field-equality (the exhaustive driver and corpus replay).
    All,
}

/// Outcome of checking one genome.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Every invariant violation found, across all engines run.
    pub violations: Vec<Violation>,
    /// `true` when the genome is outside the scheme family's domain
    /// (the scheme could not even be built) — not a violation.
    pub skipped: bool,
    /// Engine runs executed.
    pub runs: usize,
}

impl CheckReport {
    /// Whether any violation was found.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Whether some violation matches `invariant` (any, when `None`).
    pub fn violates(&self, invariant: Option<&str>) -> bool {
        match invariant {
            None => self.violated(),
            Some(name) => self.violations.iter().any(|v| v.invariant == name),
        }
    }
}

fn run_one(
    g: &Genome,
    bounds: &Bounds,
    engine: &str,
    telemetry: Option<&Telemetry>,
) -> Result<Result<RunResult, CoreError>, CoreError> {
    let mut scheme = g.build_scheme()?;
    let mut cfg = g.sim_config(bounds.delay);
    if let Some(tel) = telemetry {
        cfg = cfg.with_telemetry(tel.clone());
    }
    Ok(match engine {
        "reference" => Simulator::run(&mut *scheme, &cfg),
        "fast" => FastSimulator::run(&mut *scheme, &cfg),
        "mega" => MegaSimulator::run(&mut *scheme, &cfg),
        "des" => DesEngine::new().run(&mut *scheme, &DesConfig::slot_faithful(cfg)),
        "des-wheel" => DesEngine::new().run(
            &mut *scheme,
            &DesConfig::slot_faithful(cfg).with_queue(QueueKind::Wheel),
        ),
        other => unreachable!("unknown engine label {other}"),
    })
}

/// Check `g` on the selected engines, optionally recording telemetry
/// (fast engine only — the coverage signature source).
pub fn check_genome_with(
    g: &Genome,
    engines: Engines,
    telemetry: Option<&Telemetry>,
) -> CheckReport {
    let bounds = match bounds_for(g) {
        Ok(b) => b,
        Err(_) => {
            return CheckReport {
                violations: Vec::new(),
                skipped: true,
                runs: 0,
            }
        }
    };
    let labels: &[&str] = match engines {
        Engines::FastOnly => &["fast"],
        Engines::All => &["reference", "fast", "mega", "des", "des-wheel"],
    };
    let mut violations = Vec::new();
    let mut outcomes: Vec<(&str, Result<RunResult, CoreError>)> = Vec::new();
    let mut runs = 0;
    for label in labels {
        let tel = (*label == "fast").then_some(telemetry).flatten();
        match run_one(g, &bounds, label, tel) {
            Ok(outcome) => {
                runs += 1;
                match &outcome {
                    Ok(result) => violations.extend(check_result(g, &bounds, label, result)),
                    Err(e) => violations.push(violation_from_error(e, label)),
                }
                outcomes.push((label, outcome));
            }
            Err(_) => {
                // Build failure: outside the family's domain.
                return CheckReport {
                    violations: Vec::new(),
                    skipped: true,
                    runs,
                };
            }
        }
    }
    // Cross-engine agreement: every engine must produce the identical
    // RunResult (or fail with the identical error).
    if outcomes.len() > 1 {
        let (base_label, base) = &outcomes[0];
        for (label, other) in &outcomes[1..] {
            let detail = match (base, other) {
                (Ok(a), Ok(b)) => {
                    let diffs = diff_fields(a, b);
                    (!diffs.is_empty()).then(|| format!("fields differ: {}", diffs.join(", ")))
                }
                (Err(a), Err(b)) => {
                    let (a, b) = (a.to_string(), b.to_string());
                    (a != b).then(|| format!("errors differ: `{a}` vs `{b}`"))
                }
                (Ok(_), Err(e)) => Some(format!("{base_label} succeeded, {label} failed: {e}")),
                (Err(e), Ok(_)) => Some(format!("{base_label} failed ({e}), {label} succeeded")),
            };
            if let Some(detail) = detail {
                violations.push(Violation {
                    invariant: "EngineAgreement".to_string(),
                    engine: format!("{base_label}≡{label}"),
                    detail,
                });
            }
        }
    }
    CheckReport {
        violations,
        skipped: false,
        runs,
    }
}

/// Check `g` on all five engine columns (reference, fast, mega,
/// heap-DES, wheel-DES) with cross-engine agreement.
pub fn check_genome(g: &Genome) -> CheckReport {
    check_genome_with(g, Engines::All, None)
}

/// Check `g` on the fast engine only.
pub fn check_genome_fast(g: &Genome) -> CheckReport {
    check_genome_with(g, Engines::FastOnly, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{ConstructionChoice, Family};
    use crate::sabotage::Sabotage;

    #[test]
    fn clean_genomes_pass_all_engines() {
        for family in Family::ALL {
            let g = Genome::clean(family, 13, 2, ConstructionChoice::Greedy);
            let rep = check_genome(&g);
            assert!(!rep.skipped, "{family:?} skipped");
            assert_eq!(rep.runs, 5, "reference, fast, mega, des, des-wheel");
            assert!(
                rep.violations.is_empty(),
                "{family:?}: {:?}",
                rep.violations
            );
        }
    }

    #[test]
    fn source_stall_violates_delay_bound_on_every_engine() {
        let mut g = Genome::clean(Family::MultiTree, 20, 2, ConstructionChoice::Structured);
        g.sabotage = Some(Sabotage::SourceStall(40));
        let rep = check_genome(&g);
        assert!(rep.violates(Some("DelayBound")), "{:?}", rep.violations);
        // The stall shifts everything uniformly, so nothing else breaks.
        assert!(
            rep.violations.iter().all(|v| v.invariant == "DelayBound"),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn out_of_domain_genomes_are_skipped_not_violated() {
        // A multi-tree forest cannot be built for n = 0 receivers.
        let g = Genome::clean(Family::MultiTree, 0, 2, ConstructionChoice::Greedy);
        let rep = check_genome(&g);
        assert!(rep.skipped);
        assert!(rep.violations.is_empty());
    }
}
