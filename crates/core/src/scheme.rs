//! The interface between streaming overlays and the slot simulator.
//!
//! A **scheme** (multi-tree, hypercube, chain, …) is a deterministic
//! generator of per-slot transmissions. The simulator in `clustream-sim`
//! drives a scheme slot by slot, enforces the communication model (send
//! capacities, one receive per node per slot, packets must be held before
//! being forwarded), tracks arrivals, and derives QoS metrics.
//!
//! Schemes may keep whatever internal state they need (tree tables, cube
//! buffers); the [`StateView`] passed to [`Scheme::transmissions`] exposes
//! the simulator's ground-truth buffers for schemes that prefer to consult
//! it — the structured schemes of the paper are fully deterministic and
//! typically ignore it.

use crate::ids::{NodeId, PacketId, Slot};

/// One directed packet transfer initiated during a slot.
///
/// A transmission sent during slot `t` with latency `ℓ` is usable by the
/// receiver from slot `t + ℓ` onward. Intra-cluster transfers have
/// `latency = 1` (the paper's `T_i = 1`); inter-cluster transfers have
/// `latency = T_c > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transmission {
    /// Sending node (must hold `packet` at the start of the slot, except the
    /// source, which holds every produced packet).
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The packet transferred.
    pub packet: PacketId,
    /// Slots until the packet is usable by `to` (`1` = next slot).
    pub latency: u32,
}

impl Transmission {
    /// An intra-cluster transfer (`latency = 1`, the paper's `T_i`).
    #[inline]
    pub fn local(from: NodeId, to: NodeId, packet: PacketId) -> Self {
        Transmission {
            from,
            to,
            packet,
            latency: 1,
        }
    }

    /// An inter-cluster transfer taking `t_c` slots (the paper's `T_c`).
    #[inline]
    pub fn remote(from: NodeId, to: NodeId, packet: PacketId, t_c: u32) -> Self {
        Transmission {
            from,
            to,
            packet,
            latency: t_c,
        }
    }
}

/// When stream packets become available at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Availability {
    /// All packets exist at slot 0 (delivery of a movie, §2.2.3).
    #[default]
    PreRecorded,
    /// Packet `p` is produced during slot `p` and can first be transmitted
    /// in slot `p` (a live broadcast). Schemes targeting live streams must
    /// never schedule a packet before it exists.
    Live,
}

impl Availability {
    /// Whether `packet` can be transmitted by the source during `slot`.
    #[inline]
    pub fn produced(self, packet: PacketId, slot: Slot) -> bool {
        match self {
            Availability::PreRecorded => true,
            Availability::Live => packet.seq() <= slot.t(),
        }
    }
}

/// Read-only view of simulator ground truth offered to schemes.
pub trait StateView {
    /// Whether `node` holds `packet` (arrived and usable) at the start of
    /// the current slot. The source implicitly holds every produced packet.
    fn holds(&self, node: NodeId, packet: PacketId) -> bool;

    /// The highest-numbered packet `node` has received, if any.
    fn newest(&self, node: NodeId) -> Option<PacketId>;

    /// The current slot being scheduled.
    fn slot(&self) -> Slot;
}

/// A runtime membership change reported to a scheme by the engine's
/// recovery layer (see `clustream-recovery`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// The node has been confirmed crashed; the scheme should route
    /// around it from the current slot onward.
    Failed,
    /// A previously failed node has come back and should be readmitted.
    Rejoined,
}

/// What a self-healing scheme did in response to a [`MembershipEvent`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Label/position swaps performed by the repair (the appendix
    /// dynamics' work measure).
    pub swaps: usize,
    /// Nodes whose schedule positions changed — each may suffer a
    /// transient gap bounded by the paper's `d²` displacement bound.
    pub displaced: Vec<NodeId>,
}

/// A scheme's declared steady-state periodicity.
///
/// A scheme returning `Some(SchedulePeriod { warmup, period })` from
/// [`Scheme::schedule_period`] promises that for every slot
/// `t ≥ warmup`, the transmission list of slot `t + period` equals the
/// list of slot `t` with every packet id advanced by exactly `period`
/// (same senders, receivers, latencies and emission order), that it
/// never consults the [`StateView`] from `warmup` onward, and that
/// send capacities and availability are time-invariant. Engines may
/// exploit the declaration by lowering one period of the schedule into
/// a flat table and replaying it without per-slot scheme dispatch; the
/// mega engine additionally *verifies* one full repeated period against
/// generated output before trusting it, so a wrong declaration degrades
/// performance but never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePeriod {
    /// First slot from which the pattern repeats.
    pub warmup: u64,
    /// Repetition period in slots (≥ 1); packet ids advance by `period`
    /// per period.
    pub period: u64,
}

/// A streaming overlay: topology plus per-slot transmission schedule.
pub trait Scheme {
    /// Human-readable identifier used in reports (e.g. `"multi-tree(d=3)"`).
    fn name(&self) -> String;

    /// Number of receivers `N` (excluding the source and excluding dummy
    /// placeholder nodes).
    fn num_receivers(&self) -> usize;

    /// Size of the node-id space: every `NodeId` this scheme emits is
    /// `< id_space()`. Defaults to `N + 1` (receivers plus source `0`).
    fn id_space(&self) -> usize {
        self.num_receivers() + 1
    }

    /// The nodes whose QoS should be measured. Defaults to ids `1..=N`;
    /// schemes with non-contiguous populations (dummy placeholders,
    /// multi-cluster id spaces) override this.
    fn receivers(&self) -> Vec<NodeId> {
        (1..=self.num_receivers() as u32).map(NodeId).collect()
    }

    /// How many packets `node` may transmit in one slot. Defaults to 1 for
    /// everyone; schemes override it so the source gets `d`
    /// (intra-cluster) or `D` (backbone) and super nodes their elevated
    /// capacities.
    fn send_capacity(&self, node: NodeId) -> usize {
        let _ = node;
        1
    }

    /// Packet availability model this scheme is driving.
    fn availability(&self) -> Availability {
        Availability::PreRecorded
    }

    /// Append every transmission initiated during `slot` to `out`.
    ///
    /// `out` is cleared by the caller; it is passed in (rather than
    /// returned) so the simulator can reuse one allocation across the whole
    /// run.
    fn transmissions(&mut self, slot: Slot, view: &dyn StateView, out: &mut Vec<Transmission>);

    /// The scheme's steady-state periodicity, if it has one (see
    /// [`SchedulePeriod`] for the exact contract). Defaults to `None`:
    /// view-dependent, self-mutating or aperiodic schemes simply keep
    /// the default and engines generate every slot live.
    fn schedule_period(&self) -> Option<SchedulePeriod> {
        None
    }

    /// Natural contiguous partition boundaries of the id space, for
    /// engines that shard a run across workers: each entry is the first
    /// id of a natural group (e.g. a cluster), ascending, excluding 0.
    /// `None` (the default) means there is no natural structure and an
    /// engine may cut the id space anywhere.
    fn shard_boundaries(&self) -> Option<Vec<u32>> {
        None
    }

    /// Notify the scheme of a confirmed membership change at runtime.
    ///
    /// Self-healing schemes (see `clustream-recovery`) rewire their
    /// topology and return what the repair displaced; static schemes keep
    /// the default no-op and return `None` (the engine then treats the
    /// failure as permanently fail-silent, PR 2 behavior).
    fn membership_event(&mut self, node: NodeId, event: MembershipEvent) -> Option<RepairOutcome> {
        let _ = (node, event);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_and_remote_latencies() {
        let t = Transmission::local(NodeId(1), NodeId(2), PacketId(5));
        assert_eq!(t.latency, 1);
        let t = Transmission::remote(NodeId(1), NodeId(2), PacketId(5), 10);
        assert_eq!(t.latency, 10);
    }

    #[test]
    fn prerecorded_always_available() {
        let a = Availability::PreRecorded;
        assert!(a.produced(PacketId(1_000_000), Slot(0)));
    }

    #[test]
    fn live_packets_appear_at_their_slot() {
        let a = Availability::Live;
        assert!(!a.produced(PacketId(5), Slot(4)));
        assert!(a.produced(PacketId(5), Slot(5)));
        assert!(a.produced(PacketId(5), Slot(6)));
        assert!(a.produced(PacketId(0), Slot(0)));
    }

    #[test]
    fn default_scheme_capacities_are_unit() {
        struct Nop;
        impl Scheme for Nop {
            fn name(&self) -> String {
                "nop".into()
            }
            fn num_receivers(&self) -> usize {
                3
            }
            fn transmissions(&mut self, _: Slot, _: &dyn StateView, _: &mut Vec<Transmission>) {}
        }
        let s = Nop;
        assert_eq!(s.id_space(), 4);
        assert_eq!(s.send_capacity(NodeId(0)), 1);
        assert_eq!(s.send_capacity(NodeId(2)), 1);
    }
}
