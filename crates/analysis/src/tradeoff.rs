//! The delay/buffer tradeoff, quantified: Pareto frontiers and crossover
//! populations.
//!
//! The paper's title tradeoff in one picture: for a given `N`, each scheme
//! occupies a point in (worst-case delay, buffer) space. Multi-trees of
//! degree 2–3 minimize delay at `O(d log N)` buffers; hypercube chains pin
//! the buffer at 2 resident packets for `O(log² N)` delay. This module
//! computes the candidate points, their Pareto frontier, and the
//! populations at which schemes swap rank.

use crate::hypercube::{chained_worst_delay, grouped_worst_delay};
use crate::multitree::{buffer_bound, thm2_worst_delay_bound};

/// One scheme's predicted (delay, buffer) point for a population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TradeoffPoint {
    /// Scheme label.
    pub scheme: String,
    /// Predicted worst-case playback delay (slots).
    pub delay: u64,
    /// Predicted resident buffer requirement (packets).
    pub buffer: u64,
    /// Predicted worst-case neighbor count.
    pub neighbors: u64,
}

/// Candidate points for `n` receivers: multi-trees of degree 2..=max_d and
/// hypercube chains with source split `d ∈ {1, 2, 3}`.
pub fn candidates(n: usize, max_d: usize) -> Vec<TradeoffPoint> {
    assert!(n >= 1 && max_d >= 2);
    let mut pts = Vec::new();
    for d in 2..=max_d {
        pts.push(TradeoffPoint {
            scheme: format!("multi-tree d={d}"),
            delay: thm2_worst_delay_bound(n, d),
            buffer: buffer_bound(n, d),
            neighbors: 2 * d as u64,
        });
    }
    for d in 1..=3usize.min(n) {
        let group = n.div_ceil(d);
        pts.push(TradeoffPoint {
            scheme: if d == 1 {
                "hypercube".into()
            } else {
                format!("hypercube d={d}")
            },
            delay: grouped_worst_delay(n, d),
            buffer: 2,
            neighbors: 3 * (64 - (group as u64).leading_zeros() as u64),
        });
    }
    pts
}

/// The Pareto-optimal subset under (delay, buffer) minimization, sorted by
/// delay.
pub fn pareto_frontier(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut frontier: Vec<TradeoffPoint> = points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                (q.delay < p.delay && q.buffer <= p.buffer)
                    || (q.delay <= p.delay && q.buffer < p.buffer)
            })
        })
        .cloned()
        .collect();
    frontier.sort_by_key(|p| (p.delay, p.buffer));
    frontier.dedup();
    frontier
}

/// Smallest population at which the degree-2 multi-tree's worst-case
/// delay beats the single hypercube chain's (the Table 1 crossover).
/// `None` if no crossover occurs up to `max_n`.
pub fn multitree_beats_hypercube_from(max_n: usize) -> Option<usize> {
    (2..=max_n).find(|&n| {
        let mt = thm2_worst_delay_bound(n, 2);
        let hc = chained_worst_delay(n);
        // Require it to hold from here on (check a horizon to skip
        // special-N dips where a single cube momentarily wins).
        mt < hc
            && (n..=(n + 64).min(max_n))
                .all(|m| thm2_worst_delay_bound(m, 2) <= chained_worst_delay(m))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_contains_both_families_at_scale() {
        let pts = candidates(1000, 5);
        let frontier = pareto_frontier(&pts);
        assert!(
            frontier.iter().any(|p| p.scheme.starts_with("multi-tree")),
            "{frontier:?}"
        );
        assert!(
            frontier.iter().any(|p| p.scheme.starts_with("hypercube")),
            "{frontier:?}"
        );
        // Frontier is sorted by delay with strictly decreasing buffers.
        for w in frontier.windows(2) {
            assert!(w[0].delay <= w[1].delay);
            assert!(w[0].buffer >= w[1].buffer);
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let pts = vec![
            TradeoffPoint {
                scheme: "a".into(),
                delay: 10,
                buffer: 10,
                neighbors: 4,
            },
            TradeoffPoint {
                scheme: "b".into(),
                delay: 12,
                buffer: 12,
                neighbors: 4,
            },
            TradeoffPoint {
                scheme: "c".into(),
                delay: 20,
                buffer: 2,
                neighbors: 9,
            },
        ];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 2);
        assert!(!f.iter().any(|p| p.scheme == "b"));
    }

    #[test]
    fn crossover_exists_and_is_small() {
        // Multi-trees overtake chained hypercubes well before N = 500.
        let x = multitree_beats_hypercube_from(2000).expect("crossover exists");
        assert!(x < 500, "crossover at {x}");
        // And past the crossover the degree-2 tree stays ahead at
        // non-special sizes.
        assert!(thm2_worst_delay_bound(1000, 2) < chained_worst_delay(1000));
    }

    #[test]
    fn source_split_improves_hypercube_delay() {
        let pts = candidates(300, 3);
        let d1 = pts.iter().find(|p| p.scheme == "hypercube").unwrap();
        let d3 = pts.iter().find(|p| p.scheme == "hypercube d=3").unwrap();
        assert!(d3.delay <= d1.delay);
        assert_eq!(d3.buffer, 2);
    }
}
