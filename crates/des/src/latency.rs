//! Pluggable per-link latency models.
//!
//! The slot engines hard-code a transmission's latency to its nominal
//! `Transmission::latency` (1 slot intra-cluster, `T_c` slots
//! inter-cluster). The DES treats that nominal figure as the *base*
//! propagation time and lets a [`LatencyModel`] add link-level noise on
//! top — the knob for measuring how far the paper's delay/buffer bounds
//! degrade off the idealized synchronous model.
//!
//! All sampling is seeded and draws are consumed in event order, so DES
//! runs are exactly reproducible.

use crate::event::TICKS_PER_SLOT;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// How a transmission's wire time is derived from its nominal latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Exactly the nominal latency (`ℓ` slots). The degenerate model the
    /// slot engines assume; DES runs with it are slot-faithful.
    Fixed,
    /// Nominal latency plus uniform jitter in `[0, jitter)` slots.
    UniformJitter {
        /// Jitter span in slots (fractional values allowed).
        jitter: f64,
    },
    /// Nominal latency plus a shifted-Pareto heavy tail:
    /// `scale · (u^(-1/alpha) − 1)` extra slots, capped at `cap` slots.
    /// With `alpha ≤ 2` occasional stragglers dominate — the regime where
    /// in-order playback suffers most.
    HeavyTail {
        /// Pareto scale (median-ish extra delay is `scale · (2^(1/alpha) − 1)`).
        scale: f64,
        /// Tail index; smaller = heavier tail. Must be positive.
        alpha: f64,
        /// Hard cap on the extra delay, in slots.
        cap: f64,
    },
}

impl LatencyModel {
    /// Whether this model never perturbs the nominal latency.
    pub fn is_slot_exact(&self) -> bool {
        matches!(self, LatencyModel::Fixed)
    }

    /// Whether sampling consumes randomness (i.e. the engine must seed a
    /// latency RNG for this model).
    pub fn needs_rng(&self) -> bool {
        !self.is_slot_exact()
    }

    /// Wire time in ticks for a transmission with nominal latency
    /// `base_slots`. `rng` must be `Some` iff [`LatencyModel::needs_rng`].
    pub fn sample_ticks(&self, base_slots: u32, rng: &mut Option<ChaCha8Rng>) -> u64 {
        let base = base_slots as u64 * TICKS_PER_SLOT;
        let extra_slots = match self {
            LatencyModel::Fixed => return base,
            LatencyModel::UniformJitter { jitter } => {
                let u: f64 = rng
                    .as_mut()
                    .expect("jitter model needs rng")
                    .gen_range(0.0..1.0);
                jitter * u
            }
            LatencyModel::HeavyTail { scale, alpha, cap } => {
                let u: f64 = rng
                    .as_mut()
                    .expect("heavy-tail model needs rng")
                    .gen_range(f64::EPSILON..1.0);
                (scale * (u.powf(-1.0 / alpha) - 1.0)).min(*cap)
            }
        };
        base + (extra_slots.max(0.0) * TICKS_PER_SLOT as f64).round() as u64
    }

    /// Validate parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            LatencyModel::Fixed => Ok(()),
            LatencyModel::UniformJitter { jitter } => {
                if jitter.is_finite() && jitter >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("jitter span must be finite and ≥ 0, got {jitter}"))
                }
            }
            LatencyModel::HeavyTail { scale, alpha, cap } => {
                if !(scale.is_finite() && scale >= 0.0) {
                    Err(format!(
                        "heavy-tail scale must be finite and ≥ 0, got {scale}"
                    ))
                } else if !(alpha.is_finite() && alpha > 0.0) {
                    Err(format!(
                        "heavy-tail alpha must be finite and > 0, got {alpha}"
                    ))
                } else if !(cap.is_finite() && cap >= 0.0) {
                    Err(format!("heavy-tail cap must be finite and ≥ 0, got {cap}"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_exact_and_needs_no_rng() {
        let m = LatencyModel::Fixed;
        assert!(m.is_slot_exact());
        assert!(!m.needs_rng());
        let mut rng = None;
        assert_eq!(m.sample_ticks(1, &mut rng), TICKS_PER_SLOT);
        assert_eq!(m.sample_ticks(7, &mut rng), 7 * TICKS_PER_SLOT);
    }

    #[test]
    fn jitter_stays_within_span_and_is_deterministic() {
        let m = LatencyModel::UniformJitter { jitter: 0.5 };
        let draw = |seed: u64| {
            let mut rng = Some(ChaCha8Rng::seed_from_u64(seed));
            (0..200)
                .map(|_| m.sample_ticks(1, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draw(9);
        for &t in &a {
            assert!(t >= TICKS_PER_SLOT);
            assert!(t <= TICKS_PER_SLOT + TICKS_PER_SLOT / 2);
        }
        assert_eq!(a, draw(9), "same seed ⇒ same latencies");
        assert_ne!(a, draw(10), "different seed ⇒ different latencies");
        // Zero span degenerates to Fixed timing (but still draws).
        let z = LatencyModel::UniformJitter { jitter: 0.0 };
        let mut rng = Some(ChaCha8Rng::seed_from_u64(1));
        assert_eq!(z.sample_ticks(3, &mut rng), 3 * TICKS_PER_SLOT);
    }

    #[test]
    fn heavy_tail_is_capped() {
        let m = LatencyModel::HeavyTail {
            scale: 0.5,
            alpha: 1.2,
            cap: 4.0,
        };
        let mut rng = Some(ChaCha8Rng::seed_from_u64(3));
        let mut saw_tail = false;
        for _ in 0..2000 {
            let t = m.sample_ticks(1, &mut rng);
            assert!(t >= TICKS_PER_SLOT);
            assert!(t <= TICKS_PER_SLOT + 4 * TICKS_PER_SLOT);
            if t > 2 * TICKS_PER_SLOT {
                saw_tail = true;
            }
        }
        assert!(
            saw_tail,
            "a heavy tail should exceed one extra slot sometimes"
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(LatencyModel::Fixed.validate().is_ok());
        assert!(LatencyModel::UniformJitter { jitter: 0.25 }
            .validate()
            .is_ok());
        assert!(LatencyModel::UniformJitter { jitter: -1.0 }
            .validate()
            .is_err());
        assert!(LatencyModel::UniformJitter { jitter: f64::NAN }
            .validate()
            .is_err());
        assert!(LatencyModel::HeavyTail {
            scale: 0.3,
            alpha: 0.0,
            cap: 8.0
        }
        .validate()
        .is_err());
        assert!(LatencyModel::HeavyTail {
            scale: 0.3,
            alpha: 1.5,
            cap: 8.0
        }
        .validate()
        .is_ok());
    }
}
