//! The hierarchical timing wheel — the fast [`EventQueue`] — and the
//! lockstep [`CheckedQueue`] oracle that proves it pops the identical
//! sequence as the binary heap.
//!
//! # Structure
//!
//! Three wheel levels of 1024 power-of-two tick buckets each, plus a
//! calendar fallback for events beyond the wheel horizon:
//!
//! | level    | bucket width  | span from cursor        |
//! |----------|---------------|-------------------------|
//! | L0       | 1 tick        | 2¹⁰ ticks (one slot)    |
//! | L1       | 2¹⁰ ticks     | 2²⁰ ticks (1024 slots)  |
//! | L2       | 2²⁰ ticks     | 2³⁰ ticks (~10⁶ slots)  |
//! | calendar | 2³⁰ ticks     | unbounded (`BTreeMap`)  |
//!
//! A push lands in the innermost level whose current window contains its
//! fire time — an O(1) append. Each level keeps an occupancy bitmap
//! (`[u64; 16]`), so finding the next non-empty bucket is a handful of
//! `trailing_zeros` scans rather than a walk over 1024 `Vec`s. When the
//! cursor exhausts a level's window, the next outer bucket **cascades**:
//! its entries are redistributed one level down (L2 → L1 → L0, calendar →
//! L2). An L0 bucket holds exactly one tick, so draining it yields the
//! whole same-tick batch at once.
//!
//! # Allocation-free hot loop
//!
//! Event payloads live in a free-list **arena** (`Vec<EventKind>` slots +
//! recycled indices): a push in steady state reuses a freed slot and a
//! bucket `Vec` that has already grown, so the per-event cost is two
//! array writes and a bitmap OR — no allocator traffic, no `O(log n)`
//! sift, no 48-byte `Event` moves through a heap.
//!
//! # Determinism argument
//!
//! The engine requires pops in ascending `(time, class, seq)` order. The
//! wheel reproduces it exactly:
//!
//! * **time** — the cursor only moves forward (the engine never schedules
//!   into the past; see the [`EventQueue`] push contract), bucket scans
//!   start at the cursor, and a cascade never moves an entry to a bucket
//!   the cursor has passed. The inner-level scans restart *inclusively*
//!   at the cursor position because a cascade can land entries in the
//!   bucket the cursor already points at (time == now is legal).
//! * **seq within a bucket** — every bucket `Vec` is append-only and is
//!   filled in strictly increasing seq order: direct pushes append in
//!   push (= seq) order, and a bucket receives its one cascade *before*
//!   any direct push can target it (a push only lands in a level whose
//!   window contains the cursor, and the cursor only enters a window by
//!   performing that cascade). Cascades iterate in order, so the
//!   invariant is preserved level to level.
//! * **class within a tick** — draining an L0 bucket splits its (seq-
//!   sorted) entries into eight per-class FIFO lanes; popping takes the
//!   lowest occupied class's front. Events pushed *at* the current tick
//!   while the batch drains (the common case: `PlaybackTick` schedules
//!   the slot's `Send`s at its own fire time) append to their class lane
//!   and re-set its bit, which is exactly where the heap would surface
//!   them: after earlier same-class events, before any higher class.
//!
//! [`CheckedQueue`] turns this argument into a machine-checked one: it
//! feeds every push to both implementations and asserts, pop by pop, that
//! they return the identical [`Event`].

use crate::event::{Event, EventKind, EventQueue, HeapQueue, NUM_CLASSES};
use std::collections::{BTreeMap, HashSet};

/// log2 of the bucket count per level.
const LEVEL_BITS: u32 = 10;
/// Buckets per level.
const BUCKETS: usize = 1 << LEVEL_BITS;
/// Words per occupancy bitmap.
const WORDS: usize = BUCKETS / 64;
/// Wheel levels (L0..L2).
const LEVELS: usize = 3;
/// Ticks covered by the wheel proper; beyond this, the calendar.
const HORIZON_BITS: u32 = LEVEL_BITS * LEVELS as u32;
/// Low-bits mask for one level's bucket index.
const MASK: u64 = (BUCKETS - 1) as u64;

/// A scheduled entry: 24 bytes, payload out-of-line in the arena.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: u64,
    seq: u64,
    idx: u32,
    class: u8,
}

/// Free-list arena of event payloads. `alloc` overwrites the whole slot,
/// so a recycled slot can never leak a stale payload.
#[derive(Debug, Default)]
struct Arena {
    slots: Vec<EventKind>,
    free: Vec<u32>,
}

impl Arena {
    fn alloc(&mut self, kind: EventKind) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = kind;
            i
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(kind);
            i
        }
    }

    /// Return the payload and recycle the slot.
    fn take(&mut self, i: u32) -> EventKind {
        self.free.push(i);
        self.slots[i as usize]
    }
}

/// The current tick's events, split into per-class FIFO lanes. `mask`
/// tracks occupied classes; popping is `trailing_zeros` + lane front.
#[derive(Debug, Default)]
struct Batch {
    tick: u64,
    lanes: [Vec<(u64, u32)>; NUM_CLASSES],
    heads: [usize; NUM_CLASSES],
    mask: u8,
}

impl Batch {
    fn insert(&mut self, class: u8, seq: u64, idx: u32) {
        self.lanes[class as usize].push((seq, idx));
        self.mask |= 1 << class;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        if self.mask == 0 {
            return None;
        }
        let c = self.mask.trailing_zeros() as usize;
        let front = self.lanes[c][self.heads[c]];
        self.heads[c] += 1;
        if self.heads[c] == self.lanes[c].len() {
            // Keep the lane's capacity: steady state reallocates nothing.
            self.lanes[c].clear();
            self.heads[c] = 0;
            self.mask &= !(1 << c);
        }
        Some(front)
    }
}

/// First set bit at index ≥ `from`, if any.
fn scan(words: &[u64; WORDS], from: usize) -> Option<usize> {
    let mut w = from >> 6;
    let mut bits = words[w] & (!0u64 << (from & 63));
    loop {
        if bits != 0 {
            return Some((w << 6) | bits.trailing_zeros() as usize);
        }
        w += 1;
        if w == WORDS {
            return None;
        }
        bits = words[w];
    }
}

/// Hierarchical timing wheel: O(1) push, amortized-O(1) pop, identical
/// pop order to [`HeapQueue`] (see the module docs for the argument and
/// `tests/queue_equivalence.rs` for the enforcement).
#[derive(Debug)]
pub struct WheelQueue {
    /// Cursor: the fire time of the current batch (monotone while events
    /// are live; rewound to `floor` when the queue drains empty).
    now: u64,
    /// Time of the last event `pop` actually returned — the push
    /// contract's floor. Skipping cancelled events can carry the cursor
    /// past this; an empty wheel rewinds to it so that every push a
    /// [`HeapQueue`] would accept is accepted here too.
    floor: u64,
    arena: Arena,
    /// `LEVELS × BUCKETS` bucket `Vec`s, flattened level-major.
    buckets: Vec<Vec<Entry>>,
    bitmap: [[u64; WORDS]; LEVELS],
    /// Calendar fallback, keyed by `time >> HORIZON_BITS`.
    overflow: BTreeMap<u64, Vec<Entry>>,
    batch: Batch,
    live: usize,
    next_seq: u64,
    pushed: u64,
    cancelled: HashSet<u64>,
}

impl Default for WheelQueue {
    fn default() -> Self {
        WheelQueue {
            now: 0,
            floor: 0,
            arena: Arena::default(),
            buckets: vec![Vec::new(); LEVELS * BUCKETS],
            bitmap: [[0; WORDS]; LEVELS],
            overflow: BTreeMap::new(),
            batch: Batch::default(),
            live: 0,
            next_seq: 0,
            pushed: 0,
            cancelled: HashSet::new(),
        }
    }
}

impl WheelQueue {
    /// An empty wheel with its cursor at tick 0.
    pub fn new() -> WheelQueue {
        WheelQueue::default()
    }

    /// Arena high-water mark: the most events ever live at once (pool
    /// slots are recycled, so this stays flat across repeated runs of the
    /// same workload — see the pool tests).
    pub fn pool_high_water(&self) -> usize {
        self.arena.slots.len()
    }

    /// File `e` (with `e.time ≥ self.now`, strictly later than the
    /// current batch tick unless cascading) into the innermost level
    /// whose window covers it.
    fn place(&mut self, e: Entry) {
        let t = e.time;
        debug_assert!(t >= self.now);
        let (level, bucket) = if t >> LEVEL_BITS == self.now >> LEVEL_BITS {
            (0, (t & MASK) as usize)
        } else if t >> (2 * LEVEL_BITS) == self.now >> (2 * LEVEL_BITS) {
            (1, ((t >> LEVEL_BITS) & MASK) as usize)
        } else if t >> HORIZON_BITS == self.now >> HORIZON_BITS {
            (2, ((t >> (2 * LEVEL_BITS)) & MASK) as usize)
        } else {
            self.overflow.entry(t >> HORIZON_BITS).or_default().push(e);
            return;
        };
        self.buckets[level * BUCKETS + bucket].push(e);
        self.bitmap[level][bucket >> 6] |= 1 << (bucket & 63);
    }

    /// Redistribute bucket `b` of `level` one level down, leaving its
    /// allocation in place for reuse.
    fn cascade(&mut self, level: usize, b: usize) {
        self.bitmap[level][b >> 6] &= !(1u64 << (b & 63));
        let mut bucket = std::mem::take(&mut self.buckets[level * BUCKETS + b]);
        for e in bucket.drain(..) {
            self.place(e);
        }
        self.buckets[level * BUCKETS + b] = bucket;
    }

    /// Move the cursor to the next occupied tick and load its batch.
    /// `false` when nothing is scheduled anywhere.
    fn advance(&mut self) -> bool {
        loop {
            // L0: the next occupied tick in the current slot window.
            // Inclusive of the cursor position — a cascade may have just
            // landed entries at time == now.
            if let Some(b) = scan(&self.bitmap[0], (self.now & MASK) as usize) {
                self.now = (self.now & !MASK) | b as u64;
                self.bitmap[0][b >> 6] &= !(1u64 << (b & 63));
                let mut bucket = std::mem::take(&mut self.buckets[b]);
                self.batch.tick = self.now;
                for e in bucket.drain(..) {
                    debug_assert_eq!(e.time, self.now);
                    self.batch.insert(e.class, e.seq, e.idx);
                }
                self.buckets[b] = bucket;
                return true;
            }
            // L1: cascade the next occupied 2¹⁰-tick bucket down to L0.
            if let Some(b) = scan(&self.bitmap[1], ((self.now >> LEVEL_BITS) & MASK) as usize) {
                self.now =
                    (self.now & !((1u64 << (2 * LEVEL_BITS)) - 1)) | ((b as u64) << LEVEL_BITS);
                self.cascade(1, b);
                continue;
            }
            // L2: cascade the next occupied 2²⁰-tick bucket down to L1.
            if let Some(b) = scan(
                &self.bitmap[2],
                ((self.now >> (2 * LEVEL_BITS)) & MASK) as usize,
            ) {
                self.now =
                    (self.now & !((1u64 << HORIZON_BITS) - 1)) | ((b as u64) << (2 * LEVEL_BITS));
                self.cascade(2, b);
                continue;
            }
            // Calendar: jump the cursor to the next occupied 2³⁰-tick
            // window and spread it over the wheel.
            let Some((key, mut bucket)) = self.overflow.pop_first() else {
                return false;
            };
            self.now = key << HORIZON_BITS;
            for e in bucket.drain(..) {
                self.place(e);
            }
        }
    }
}

impl EventQueue for WheelQueue {
    fn push(&mut self, time: u64, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.live += 1;
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time} < cursor {}",
            self.now
        );
        let time = time.max(self.now);
        let class = kind.class();
        let idx = self.arena.alloc(kind);
        if time == self.now {
            // The current tick: straight into the live batch, where the
            // class lanes put it exactly where the heap would.
            self.batch.insert(class, seq, idx);
        } else {
            self.place(Entry {
                time,
                seq,
                idx,
                class,
            });
        }
        seq
    }

    fn pop(&mut self) -> Option<Event> {
        loop {
            while let Some((seq, idx)) = self.batch.pop() {
                let kind = self.arena.take(idx);
                self.live -= 1;
                if !self.cancelled.is_empty() && self.cancelled.remove(&seq) {
                    continue;
                }
                self.floor = self.batch.tick;
                return Some(Event {
                    time: self.batch.tick,
                    seq,
                    kind,
                });
            }
            if !self.advance() {
                // Draining tombstones may have advanced the cursor past
                // the last returned event; with nothing scheduled, rewind
                // so the push contract stays exactly the heap's.
                self.now = self.floor;
                self.batch.tick = self.floor;
                return None;
            }
        }
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    fn len(&self) -> usize {
        self.live
    }

    fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

/// Heap and wheel in lockstep: every push goes to both, every pop asserts
/// both return the identical [`Event`]. The queue-level differential
/// oracle — `--queue checked` on the CLI, and what the acceptance
/// criterion "wheel is bit-identical to heap" means mechanically.
#[derive(Debug, Default)]
pub struct CheckedQueue {
    heap: HeapQueue,
    wheel: WheelQueue,
}

impl CheckedQueue {
    /// An empty lockstep pair.
    pub fn new() -> CheckedQueue {
        CheckedQueue::default()
    }
}

impl EventQueue for CheckedQueue {
    fn push(&mut self, time: u64, kind: EventKind) -> u64 {
        let seq = self.heap.push(time, kind);
        let wheel_seq = self.wheel.push(time, kind);
        debug_assert_eq!(seq, wheel_seq);
        seq
    }

    fn pop(&mut self) -> Option<Event> {
        let h = self.heap.pop();
        let w = self.wheel.pop();
        assert_eq!(
            h, w,
            "queue lockstep divergence: heap and wheel disagree on the next event"
        );
        h
    }

    fn cancel(&mut self, seq: u64) {
        self.heap.cancel(seq);
        self.wheel.cancel(seq);
    }

    fn len(&self) -> usize {
        let (h, w) = (self.heap.len(), self.wheel.len());
        assert_eq!(h, w, "queue lockstep divergence: depths disagree");
        h
    }

    fn total_pushed(&self) -> u64 {
        let (h, w) = (self.heap.total_pushed(), self.wheel.total_pushed());
        assert_eq!(h, w, "queue lockstep divergence: push counts disagree");
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_core::{NodeId, PacketId, SOURCE};

    fn deliver(to: u32, p: u64) -> EventKind {
        EventKind::Deliver {
            from: SOURCE,
            to: NodeId(to),
            packet: PacketId(p),
        }
    }

    /// Drive heap and wheel through the same schedule, asserting lockstep
    /// equality on every pop (and depth after every op).
    fn assert_lockstep(schedule: &[(u64, EventKind)]) -> Vec<Event> {
        let mut q = CheckedQueue::new();
        let mut out = Vec::new();
        for &(t, kind) in schedule {
            q.push(t, kind);
        }
        while let Some(e) = q.pop() {
            q.len();
            out.push(e);
        }
        out
    }

    #[test]
    fn spans_every_level_and_the_calendar() {
        // One event per structural regime, pushed shuffled.
        let schedule = [
            (1u64 << 35, EventKind::PlaybackTick), // calendar
            (5, deliver(1, 0)),                    // L0
            (1 << 25, deliver(4, 3)),              // L2
            (1 << 15, deliver(3, 2)),              // L1
            (0, deliver(9, 9)),                    // immediate
            (1023, deliver(2, 1)),                 // L0 window edge
        ];
        let out = assert_lockstep(&schedule);
        let times: Vec<u64> = out.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 5, 1023, 1 << 15, 1 << 25, 1 << 35]);
    }

    #[test]
    fn empty_bucket_cascade_skips_straight_to_the_occupied_tick() {
        // A single far event: every L1/L2 bucket it cascades through is
        // otherwise empty, so the bitmap scans must skip 1000+ empty
        // buckets per level without visiting them.
        let mut q = WheelQueue::new();
        let t = (7 << 20) + (13 << 10) + 977;
        q.push(t, EventKind::PlaybackTick);
        let e = q.pop().expect("the event survives two cascades");
        assert_eq!(e.time, t);
        assert!(q.pop().is_none());
    }

    #[test]
    fn event_exactly_at_the_cascade_boundary() {
        // now sits at the last tick of an L0 window; the next event fires
        // exactly at the first tick of the next window (the cascade
        // boundary), which an exclusive cursor scan would skip.
        let mut q = CheckedQueue::new();
        q.push(1023, deliver(1, 0));
        assert_eq!(q.pop().unwrap().time, 1023);
        q.push(1024, deliver(2, 1)); // exactly at the L0→L1 boundary
        q.push(1 << 20, deliver(3, 2)); // exactly at the L1→L2 boundary
        q.push(1 << 30, deliver(4, 3)); // exactly at the wheel horizon
        assert_eq!(q.pop().unwrap().time, 1024);
        assert_eq!(q.pop().unwrap().time, 1 << 20);
        assert_eq!(q.pop().unwrap().time, 1 << 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascaded_entries_keep_seq_order_within_a_tick() {
        // Two same-tick events far enough out to cascade through L2, plus
        // a same-tick direct push after the cursor arrives: pop order
        // must be pure seq order.
        let t = (1 << 22) + 7;
        let mut q = CheckedQueue::new();
        let a = q.push(t, deliver(1, 0));
        let b = q.push(t, deliver(2, 1));
        let first = q.pop().unwrap();
        assert_eq!((first.time, first.seq), (t, a));
        let c = q.push(t, deliver(3, 2)); // lands in the live batch
        assert_eq!(q.pop().unwrap().seq, b);
        assert_eq!(q.pop().unwrap().seq, c);
    }

    #[test]
    fn same_tick_lower_class_push_during_drain_fires_first() {
        // While draining tick t's Sends, a zero-latency Deliver pushed at
        // t must pop before the remaining Sends — class order beats push
        // order, exactly as the heap resolves it.
        let tx = clustream_core::Transmission::local(SOURCE, NodeId(1), PacketId(0));
        let mut q = CheckedQueue::new();
        q.push(64, EventKind::Send(tx));
        q.push(64, EventKind::Send(tx));
        assert_eq!(q.pop().unwrap().kind.class(), 5);
        q.push(64, deliver(1, 0)); // same tick, class 0
        assert_eq!(q.pop().unwrap().kind.class(), 0, "Deliver preempts");
        assert_eq!(q.pop().unwrap().kind.class(), 5);
    }

    #[test]
    fn max_tick_wraparound_is_ordered_not_lost() {
        let schedule = [
            (u64::MAX, EventKind::PlaybackTick),
            (u64::MAX - 1, deliver(1, 0)),
            (3, deliver(2, 1)),
            (u64::MAX, deliver(3, 2)),
        ];
        let out = assert_lockstep(&schedule);
        let keys: Vec<(u64, u8)> = out.iter().map(|e| (e.time, e.kind.class())).collect();
        assert_eq!(
            keys,
            vec![(3, 0), (u64::MAX - 1, 0), (u64::MAX, 0), (u64::MAX, 4)]
        );
    }

    #[test]
    fn pool_high_water_stays_flat_across_repeated_runs() {
        let mut q = WheelQueue::new();
        let mut peak = 0;
        for round in 0..50u64 {
            for i in 0..100 {
                q.push(round * 2048 + i, deliver(i as u32, i));
            }
            while q.pop().is_some() {}
            if round == 0 {
                peak = q.pool_high_water();
            }
            assert_eq!(
                q.pool_high_water(),
                peak,
                "round {round}: freed slots must be reused, not leaked"
            );
        }
        assert!(peak <= 100, "peak {peak} exceeds max live events");
    }

    #[test]
    fn recycled_slots_carry_no_stale_payload() {
        let mut q = WheelQueue::new();
        q.push(1, deliver(7, 99));
        assert_eq!(q.pop().unwrap().kind, deliver(7, 99));
        // The freed slot is recycled for a different kind entirely.
        q.push(2, EventKind::RepairCommit { failed: NodeId(3) });
        assert_eq!(q.pool_high_water(), 1, "slot must be recycled");
        assert_eq!(
            q.pop().unwrap().kind,
            EventKind::RepairCommit { failed: NodeId(3) }
        );
    }

    #[test]
    fn interleaved_push_pop_across_windows_stays_lockstep() {
        // A deterministic pseudo-random interleave (LCG) of pushes at
        // mixed distances and pops, all under the lockstep oracle.
        let mut q = CheckedQueue::new();
        let mut state = 0x2545f4914f6cdd1du64;
        let mut t = 0u64;
        for i in 0..5_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = state >> 33;
            let dt = match r % 5 {
                0 => 0,
                1 => r % 7,
                2 => r % 1024,
                3 => r % (1 << 14),
                _ => r % (1 << 32),
            };
            q.push(t + dt, deliver((r % 64) as u32, i));
            if r.is_multiple_of(3) {
                if let Some(e) = q.pop() {
                    t = e.time;
                }
            }
        }
        while q.pop().is_some() {}
        assert!(q.is_empty());
    }
}
