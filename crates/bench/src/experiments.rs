//! One function per reproduced display item.

use clustream_analysis as analysis;
use clustream_baselines::{ChainScheme, SingleTreeScheme};
use clustream_core::{NodeId, PacketId, QosReport, Scheme};
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{
    build_forest, greedy_forest, structured_forest, Construction, DelayProfile, DynamicForest,
    MultiTreeScheme, StreamMode,
};
use clustream_overlay::{Backbone, ClusterSession, IntraScheme};
use clustream_sim::{FastEngine, RunResult, SimConfig, Simulator};
use clustream_workloads::{ChurnAction, ChurnTrace, ChurnTraceConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Run a scheme until `track` packets reached every receiver.
pub fn simulate(scheme: &mut dyn Scheme, track: u64) -> RunResult {
    Simulator::run(scheme, &SimConfig::until_complete(track, 1_000_000))
        .expect("scheme violates the communication model")
}

/// Like [`simulate`], on the fast engine with a reusable arena.
///
/// Takes a scheme *factory* (schemes are stateful). Debug builds
/// re-run every simulation through the reference engine and assert the
/// two results are bit-identical — every `cargo test` / debug invocation
/// of an experiment binary doubles as a differential check.
pub fn simulate_fast(
    engine: &mut FastEngine,
    mut make: impl FnMut() -> Box<dyn Scheme>,
    track: u64,
) -> RunResult {
    let cfg = SimConfig::until_complete(track, 1_000_000);
    let result = engine
        .run(make().as_mut(), &cfg)
        .expect("scheme violates the communication model");
    #[cfg(debug_assertions)]
    {
        let reference =
            Simulator::run(make().as_mut(), &cfg).expect("scheme violates the communication model");
        let diffs = clustream_sim::diff_fields(&reference, &result);
        assert!(
            diffs.is_empty(),
            "fast engine diverges from reference on {diffs:?} ({})",
            result.scheme
        );
    }
    result
}

/// Enough tracked packets to reach steady state for any scheme here.
fn track_for(worst_delay_estimate: u64) -> u64 {
    2 * worst_delay_estimate + 16
}

// ---------------------------------------------------------------- Figure 4

/// One point of Figure 4: worst-case startup delay of the multi-tree
/// scheme.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Point {
    pub d: usize,
    pub n: usize,
    pub max_delay: u64,
    /// Theorem 2 bound `h·d` for reference.
    pub bound: u64,
}

/// Figure 4: worst-case delay vs N for tree degrees 2–5 (closed form,
/// validated against full simulation by the test suite).
pub fn fig4(ns: &[usize], degrees: &[usize]) -> Vec<Fig4Point> {
    let grid: Vec<(usize, usize)> = degrees
        .iter()
        .flat_map(|&d| ns.iter().map(move |&n| (d, n)))
        .collect();
    grid.par_iter()
        .map(|&(d, n)| {
            let forest = greedy_forest(n, d).expect("valid parameters");
            let scheme = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
            let profile = DelayProfile::compute(&scheme).expect("schedulable");
            Fig4Point {
                d,
                n,
                max_delay: profile.max_delay(),
                bound: analysis::thm2_worst_delay_bound(n, d),
            }
        })
        .collect()
}

// ----------------------------------------------------------------- Table 1

/// One measured row of Table 1 (plus the two baselines).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    pub scheme: String,
    pub n: usize,
    pub max_delay: u64,
    pub avg_delay: f64,
    pub p50_delay: u64,
    pub p95_delay: u64,
    pub max_buffer: usize,
    pub max_neighbors: usize,
}

fn row_from(name: &str, n: usize, qos: &QosReport) -> Table1Row {
    Table1Row {
        scheme: name.to_string(),
        n,
        max_delay: qos.max_delay(),
        avg_delay: qos.avg_delay(),
        p50_delay: qos.delay_percentile(50.0),
        p95_delay: qos.delay_percentile(95.0),
        max_buffer: qos.max_buffer(),
        max_neighbors: qos.max_neighbors(),
    }
}

/// Table 1: measured max/avg delay, buffer size and neighbor count for
/// multi-tree (d = 2 and 3), the hypercube scheme at the nearest special
/// `N' = 2^k − 1 ≤ N`, the arbitrary-`N` hypercube chain, and the chain
/// baseline.
pub fn table1(ns: &[usize]) -> Vec<Table1Row> {
    clustream_sim::sweep(ns, |engine, &n| {
        let mut rows = Vec::new();
        for d in [2usize, 3] {
            let r = simulate_fast(
                engine,
                || {
                    Box::new(MultiTreeScheme::new(
                        greedy_forest(n, d).expect("valid"),
                        StreamMode::PreRecorded,
                    ))
                },
                track_for(analysis::thm2_worst_delay_bound(n, d)),
            );
            rows.push(row_from(&format!("multi-tree d={d}"), n, &r.qos));
        }
        {
            // Special N: largest 2^k − 1 ≤ N.
            let k = usize::BITS as usize - 1 - (n + 1).leading_zeros() as usize;
            let n_special = (1usize << k) - 1;
            let r = simulate_fast(
                engine,
                || Box::new(HypercubeStream::new(n_special).expect("valid")),
                track_for(k as u64 + 1),
            );
            rows.push(row_from("hypercube special", n_special, &r.qos));
        }
        {
            let r = simulate_fast(
                engine,
                || Box::new(HypercubeStream::new(n).expect("valid")),
                track_for(analysis::chained_worst_delay(n)),
            );
            rows.push(row_from("hypercube arbitrary", n, &r.qos));
        }
        {
            let r = simulate_fast(
                engine,
                || Box::new(ChainScheme::new(n)),
                track_for(n as u64),
            );
            rows.push(row_from("chain baseline", n, &r.qos));
        }
        {
            // Elevated-capacity single tree: the paper's §1 strawman
            // (interior upload = d× stream rate).
            let r = simulate_fast(
                engine,
                || Box::new(SingleTreeScheme::new(n, 2)),
                track_for(2 * analysis::tree_height(n, 2)),
            );
            rows.push(row_from("single-tree d=2 (d× upload)", n, &r.qos));
        }
        rows
    })
    .into_iter()
    .flatten()
    .collect()
}

// --------------------------------------------------------------- Theorem 1

/// Theorem 1 check: measured multi-cluster worst delay vs the bound.
#[derive(Debug, Clone, Serialize)]
pub struct Thm1Row {
    pub k: usize,
    pub t_c: u32,
    pub big_d: usize,
    pub d: usize,
    pub cluster_size: usize,
    pub measured: u64,
    pub bound: u64,
}

/// Theorem 1: sweep cluster count and inter-cluster latency, measuring
/// the composed session's worst-case delay against
/// `T_c·depth(τ) + 1 + d + h·d`.
pub fn thm1(
    ks: &[usize],
    t_cs: &[u32],
    big_d: usize,
    d: usize,
    cluster_size: usize,
) -> Vec<Thm1Row> {
    let grid: Vec<(usize, u32)> = ks
        .iter()
        .flat_map(|&k| t_cs.iter().map(move |&t| (k, t)))
        .collect();
    grid.par_iter()
        .map(|&(k, t_c)| {
            let sizes = vec![cluster_size; k];
            let mut s = ClusterSession::new(
                &sizes,
                big_d,
                t_c,
                IntraScheme::MultiTree {
                    d,
                    construction: Construction::Greedy,
                },
            )
            .expect("valid session");
            let bound = analysis::thm1_delay_bound(k, big_d, t_c, d, cluster_size);
            let r = simulate(&mut s, track_for(bound));
            Thm1Row {
                k,
                t_c,
                big_d,
                d,
                cluster_size,
                measured: r.qos.max_delay(),
                bound,
            }
        })
        .collect()
}

// ---------------------------------------------------- Theorems 2 & 3, F(d)

/// Theorem 2/3 check rows for complete populations.
#[derive(Debug, Clone, Serialize)]
pub struct Thm23Row {
    pub n: usize,
    pub d: usize,
    pub h: u64,
    pub measured_max: u64,
    pub thm2_bound: u64,
    pub measured_avg: f64,
    pub thm3_lower: f64,
    pub measured_buffer: usize,
}

/// Theorems 2 and 3 on complete populations `N = d + d² + … + d^h`.
pub fn thm2_thm3(max_h: u32) -> Vec<Thm23Row> {
    let mut grid = Vec::new();
    for d in 2..=5usize {
        let mut n = 0usize;
        for h in 1..=max_h {
            n += d.pow(h);
            if n > 4000 {
                break;
            }
            grid.push((n, d));
        }
    }
    grid.par_iter()
        .map(|&(n, d)| {
            let forest = greedy_forest(n, d).expect("valid");
            let scheme = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
            let p = DelayProfile::compute(&scheme).expect("schedulable");
            Thm23Row {
                n,
                d,
                h: analysis::tree_height(n, d),
                measured_max: p.max_delay(),
                thm2_bound: analysis::thm2_worst_delay_bound(n, d),
                measured_avg: p.avg_delay(),
                thm3_lower: analysis::thm3_avg_delay_lower_bound(n, d),
                measured_buffer: p.max_buffer(),
            }
        })
        .collect()
}

/// §2.3 degree optimization: the exact-bound-optimal degree per N.
#[derive(Debug, Clone, Serialize)]
pub struct OptDegreeRow {
    pub n: usize,
    pub optimal_d: usize,
    pub bound_d2: u64,
    pub bound_d3: u64,
    pub bound_d4: u64,
    pub bound_d5: u64,
}

/// Optimal tree degree across populations (always 2 or 3).
pub fn opt_degree(ns: &[usize]) -> Vec<OptDegreeRow> {
    ns.iter()
        .map(|&n| OptDegreeRow {
            n,
            optimal_d: analysis::optimal_degree(n, 16),
            bound_d2: analysis::thm2_worst_delay_bound(n, 2),
            bound_d3: analysis::thm2_worst_delay_bound(n, 3),
            bound_d4: analysis::thm2_worst_delay_bound(n, 4),
            bound_d5: analysis::thm2_worst_delay_bound(n, 5),
        })
        .collect()
}

// ------------------------------------------------- Propositions 1 & 2, Thm 4

/// Proposition 1 check for `N = 2^k − 1`.
#[derive(Debug, Clone, Serialize)]
pub struct Prop1Row {
    pub k: usize,
    pub n: usize,
    pub measured_max_delay: u64,
    pub predicted_delay: u64,
    pub measured_buffer: usize,
    pub measured_neighbors: usize,
}

/// Proposition 1: delay `k + 1`, `O(1)` buffer, `k` neighbors.
pub fn prop1(ks: &[usize]) -> Vec<Prop1Row> {
    clustream_sim::sweep(ks, |engine, &k| {
        let n = (1usize << k) - 1;
        let r = simulate_fast(
            engine,
            || Box::new(HypercubeStream::new(n).expect("valid")),
            track_for(k as u64 + 1),
        );
        Prop1Row {
            k,
            n,
            measured_max_delay: r.qos.max_delay(),
            predicted_delay: k as u64 + 1,
            measured_buffer: r.qos.max_buffer(),
            measured_neighbors: r.qos.max_neighbors(),
        }
    })
}

/// Proposition 2 / Theorem 4 check for arbitrary `N`.
#[derive(Debug, Clone, Serialize)]
pub struct Prop2Row {
    pub n: usize,
    pub cubes: usize,
    pub measured_max_delay: u64,
    pub predicted_max_delay: u64,
    pub measured_avg_delay: f64,
    pub thm4_bound: f64,
    pub measured_buffer: usize,
    pub measured_neighbors: usize,
}

/// Proposition 2 + Theorem 4: chained hypercubes across populations.
pub fn prop2_thm4(ns: &[usize]) -> Vec<Prop2Row> {
    clustream_sim::sweep(ns, |engine, &n| {
        let cubes = HypercubeStream::new(n).expect("valid").cubes().count();
        let predicted = analysis::chained_worst_delay(n);
        let r = simulate_fast(
            engine,
            || Box::new(HypercubeStream::new(n).expect("valid")),
            track_for(predicted),
        );
        Prop2Row {
            n,
            cubes,
            measured_max_delay: r.qos.max_delay(),
            predicted_max_delay: predicted,
            measured_avg_delay: r.qos.avg_delay(),
            thm4_bound: analysis::thm4_avg_bound(n),
            measured_buffer: r.qos.max_buffer(),
            measured_neighbors: r.qos.max_neighbors(),
        }
    })
}

// ------------------------------------------------------ Extension sweeps

/// ext-A: incomplete (ragged) populations — slack between measured delay
/// and the complete-tree bound.
#[derive(Debug, Clone, Serialize)]
pub struct IncompleteRow {
    pub n: usize,
    pub d: usize,
    pub measured: u64,
    pub bound: u64,
    pub slack: u64,
}

/// The simulation the paper omitted "due to lack of space": delays of
/// incomplete trees stay below, and often strictly below, `h·d`.
pub fn ext_incomplete(ns: &[usize], d: usize) -> Vec<IncompleteRow> {
    ns.par_iter()
        .map(|&n| {
            let forest = greedy_forest(n, d).expect("valid");
            let scheme = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
            let p = DelayProfile::compute(&scheme).expect("schedulable");
            let bound = analysis::thm2_worst_delay_bound(n, d);
            IncompleteRow {
                n,
                d,
                measured: p.max_delay(),
                bound,
                slack: bound - p.max_delay(),
            }
        })
        .collect()
}

/// ext-B: churn — eager vs lazy bookkeeping under one trace.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnRow {
    pub variant: String,
    pub events: usize,
    pub total_swaps: u64,
    pub rebuilds: usize,
    pub max_displaced: usize,
    /// Estimated hiccup slots over all displaced nodes of all
    /// *incremental* operations (rebuilds excluded — they displace
    /// everyone by design and dominate trivially).
    pub hiccup_slots: u64,
    pub final_members: usize,
    pub post_churn_max_delay: u64,
}

/// Replay a churn trace against the dynamic forest, eager and lazy.
pub fn ext_churn(cfg: ChurnTraceConfig, d: usize) -> Vec<ChurnRow> {
    let trace = ChurnTrace::generate(cfg);
    [false, true]
        .iter()
        .map(|&lazy| {
            let mut f = DynamicForest::new(cfg.initial_members, d, Construction::Greedy, lazy)
                .expect("valid");
            let mut rebuilds = 0usize;
            let mut max_displaced = 0usize;
            let mut hiccup_slots = 0u64;
            let mut before = f.member_delays().expect("schedulable");
            for e in &trace.events {
                let rep = match e.action {
                    // Rejoin re-enters as a fresh member here; identity
                    // continuity is the recovery layer's concern.
                    ChurnAction::Join | ChurnAction::Rejoin { .. } => f.add().1,
                    ChurnAction::Leave { victim_rank } => {
                        let members = f.members();
                        f.remove(members[victim_rank]).expect("valid victim")
                    }
                };
                if matches!(rep.resized, Some(r) if r < 0) {
                    rebuilds += 1;
                } else if !rep.displaced.is_empty() {
                    hiccup_slots += f
                        .hiccup_estimate(&before, &rep.displaced)
                        .expect("schedulable");
                }
                max_displaced = max_displaced.max(rep.displaced.len());
                before = f.member_delays().expect("schedulable");
            }
            f.validate().expect("invariants hold after churn");
            let (snapshot, _) = f.snapshot().expect("snapshot");
            let scheme = MultiTreeScheme::new(snapshot, StreamMode::PreRecorded);
            let p = DelayProfile::compute(&scheme).expect("schedulable");
            ChurnRow {
                variant: if lazy { "lazy".into() } else { "eager".into() },
                events: trace.events.len(),
                total_swaps: f.total_swaps(),
                rebuilds,
                max_displaced,
                hiccup_slots,
                final_members: f.n_real(),
                post_churn_max_delay: p.max_delay(),
            }
        })
        .collect()
}

/// Live-mode ablation: pre-recorded vs the two live variants.
#[derive(Debug, Clone, Serialize)]
pub struct LiveModeRow {
    pub n: usize,
    pub d: usize,
    pub mode: String,
    pub max_delay: u64,
    pub avg_delay: f64,
    pub max_buffer: usize,
}

/// Compare the §2.2.3 live-streaming strategies.
pub fn ext_live_modes(ns: &[usize], d: usize) -> Vec<LiveModeRow> {
    let modes = [
        (StreamMode::PreRecorded, "pre-recorded"),
        (StreamMode::LivePrebuffered, "live-prebuffered"),
        (StreamMode::LivePipelined, "live-pipelined"),
    ];
    ns.par_iter()
        .flat_map(|&n| {
            modes
                .iter()
                .map(|&(mode, name)| {
                    let forest = greedy_forest(n, d).expect("valid");
                    let p = DelayProfile::compute(&MultiTreeScheme::new(forest, mode))
                        .expect("schedulable");
                    LiveModeRow {
                        n,
                        d,
                        mode: name.to_string(),
                        max_delay: p.max_delay(),
                        avg_delay: p.avg_delay(),
                        max_buffer: p.max_buffer(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Construction ablation: structured vs greedy delay profiles.
#[derive(Debug, Clone, Serialize)]
pub struct ConstructionRow {
    pub n: usize,
    pub d: usize,
    pub construction: String,
    pub max_delay: u64,
    pub avg_delay: f64,
    pub max_buffer: usize,
}

/// Do the two §2.2 constructions differ in delivered QoS?
pub fn ext_constructions(ns: &[usize], d: usize) -> Vec<ConstructionRow> {
    ns.par_iter()
        .flat_map(|&n| {
            [Construction::Structured, Construction::Greedy]
                .iter()
                .map(|&c| {
                    let forest = build_forest(n, d, c).expect("valid");
                    let p = DelayProfile::compute(&MultiTreeScheme::new(
                        forest,
                        StreamMode::PreRecorded,
                    ))
                    .expect("schedulable");
                    ConstructionRow {
                        n,
                        d,
                        construction: format!("{c:?}"),
                        max_delay: p.max_delay(),
                        avg_delay: p.avg_delay(),
                        max_buffer: p.max_buffer(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

// -------------------------------------------------- Upload utilization

/// ext-G: per-scheme resource-contribution profile.
#[derive(Debug, Clone, Serialize)]
pub struct UtilizationRow {
    pub scheme: String,
    pub n: usize,
    /// Receivers that uploaded nothing over the run.
    pub idle_receivers: usize,
    /// Mean uploads per receiver per slot (1.0 = fully used uplink).
    pub mean_upload_rate: f64,
    /// Max uploads per receiver per slot.
    pub max_upload_rate: f64,
}

/// §1 quantified: the single tree idles its leaves and overloads its
/// interior; the interior-disjoint multi-trees leave only the `d` all-leaf
/// nodes idle at unit upload; the hypercube spreads upload evenly.
pub fn ext_utilization(n: usize, d: usize, track: u64) -> Vec<UtilizationRow> {
    let mut engine = FastEngine::new();
    let mut rows = Vec::new();
    let mut push = |name: &str, r: &RunResult| {
        let slots = r.slots_run as f64;
        let uploads = &r.upload_counts[1..=n];
        rows.push(UtilizationRow {
            scheme: name.into(),
            n,
            idle_receivers: uploads.iter().filter(|&&u| u == 0).count(),
            mean_upload_rate: uploads.iter().sum::<u64>() as f64 / n as f64 / slots,
            max_upload_rate: uploads.iter().copied().max().unwrap_or(0) as f64 / slots,
        });
    };
    {
        let r = simulate_fast(
            &mut engine,
            || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, d).expect("valid"),
                    StreamMode::PreRecorded,
                ))
            },
            track,
        );
        push(&format!("multi-tree d={d}"), &r);
    }
    {
        let r = simulate_fast(
            &mut engine,
            || Box::new(HypercubeStream::new(n).expect("valid")),
            track,
        );
        push("hypercube", &r);
    }
    {
        let r = simulate_fast(&mut engine, || Box::new(SingleTreeScheme::new(n, d)), track);
        push(&format!("single-tree d={d}"), &r);
    }
    {
        let r = simulate_fast(&mut engine, || Box::new(ChainScheme::new(n)), track);
        push("chain", &r);
    }
    rows
}

// ------------------------------------------------------ Fault injection

/// ext-D: link-loss resilience of each scheme.
#[derive(Debug, Clone, Serialize)]
pub struct LossRow {
    pub scheme: String,
    pub n: usize,
    pub loss_rate: f64,
    /// Fraction of receivers that missed ≥ 1 tracked packet.
    pub affected_frac: f64,
    /// Missing tracked packets per receiver, averaged.
    pub avg_missing: f64,
    /// Transmissions dropped in flight.
    pub lost_in_flight: u64,
}

/// Sweep link-loss rates against multi-tree and hypercube overlays. The
/// paper's schemes carry each packet over a single path with no
/// retransmission, so any loss becomes a playback gap; this measures how
/// widely one lost link-crossing spreads in each overlay.
pub fn ext_loss(n: usize, d: usize, rates: &[f64], track: u64) -> Vec<LossRow> {
    use clustream_sim::FaultPlan;
    let mut rows = Vec::new();
    for &rate in rates {
        let horizon = 8 * track;
        {
            let forest = greedy_forest(n, d).expect("valid");
            let mut s = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
            let cfg = SimConfig::with_faults(track, horizon, FaultPlan::loss(rate, 17));
            let r = Simulator::run(&mut s, &cfg).expect("model holds");
            let loss = r.loss.as_ref().expect("fault run");
            rows.push(LossRow {
                scheme: format!("multi-tree d={d}"),
                n,
                loss_rate: rate,
                affected_frac: loss.affected_nodes() as f64 / n as f64,
                avg_missing: loss.total_missing() as f64 / n as f64,
                lost_in_flight: loss.lost_in_flight,
            });
        }
        {
            let mut s = HypercubeStream::new(n).expect("valid");
            let cfg = SimConfig::with_faults(track, horizon, FaultPlan::loss(rate, 17));
            let r = Simulator::run(&mut s, &cfg).expect("model holds");
            let loss = r.loss.as_ref().expect("fault run");
            rows.push(LossRow {
                scheme: "hypercube".into(),
                n,
                loss_rate: rate,
                affected_frac: loss.affected_nodes() as f64 / n as f64,
                avg_missing: loss.total_missing() as f64 / n as f64,
                lost_in_flight: loss.lost_in_flight,
            });
        }
    }
    rows
}

/// ext-E: blast radius of a single interior-node crash.
#[derive(Debug, Clone, Serialize)]
pub struct CrashRow {
    pub scheme: String,
    pub n: usize,
    pub crashed: u32,
    /// Receivers that miss ≥ 1 packet after the crash.
    pub starved_nodes: usize,
    /// Worst per-node fraction of the post-crash stream lost.
    pub worst_loss_frac: f64,
}

/// Crash one high-impact interior node in each overlay and measure who
/// starves — quantifying §1's resilience argument: in the single tree the
/// crashed node's subtree loses the *whole* stream; in the multi-tree the
/// same node is interior in only one of `d` trees, so its subtree loses
/// only ~`1/d` of the packets.
pub fn ext_crash(n: usize, d: usize, crash_slot: u64, track: u64) -> Vec<CrashRow> {
    use clustream_sim::FaultPlan;
    let horizon = 8 * track;
    let mut rows = Vec::new();

    // Multi-tree: crash node 1 (interior in T_0, near the root).
    {
        let forest = greedy_forest(n, d).expect("valid");
        let mut s = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
        let cfg = SimConfig::with_faults(track, horizon, FaultPlan::crash(NodeId(1), crash_slot));
        let r = Simulator::run(&mut s, &cfg).expect("model holds");
        let loss = r.loss.as_ref().expect("fault run");
        rows.push(CrashRow {
            scheme: format!("multi-tree d={d}"),
            n,
            crashed: 1,
            starved_nodes: loss.affected_nodes(),
            worst_loss_frac: loss
                .missing
                .iter()
                .map(|&(_, m)| m as f64 / track as f64)
                .fold(0.0, f64::max),
        });
    }

    // Single tree (elevated capacity): crash node 1, the root's first
    // child — its whole subtree goes dark.
    {
        let mut s = SingleTreeScheme::new(n, d);
        let cfg = SimConfig::with_faults(track, horizon, FaultPlan::crash(NodeId(1), crash_slot));
        let r = Simulator::run(&mut s, &cfg).expect("model holds");
        let loss = r.loss.as_ref().expect("fault run");
        rows.push(CrashRow {
            scheme: format!("single-tree d={d}"),
            n,
            crashed: 1,
            starved_nodes: loss.affected_nodes(),
            worst_loss_frac: loss
                .missing
                .iter()
                .map(|&(_, m)| m as f64 / track as f64)
                .fold(0.0, f64::max),
        });
    }

    // Hypercube: crash node 1 (a spare-rotation vertex of the first cube).
    {
        let mut s = HypercubeStream::new(n).expect("valid");
        let cfg = SimConfig::with_faults(track, horizon, FaultPlan::crash(NodeId(1), crash_slot));
        let r = Simulator::run(&mut s, &cfg).expect("model holds");
        let loss = r.loss.as_ref().expect("fault run");
        rows.push(CrashRow {
            scheme: "hypercube".into(),
            n,
            crashed: 1,
            starved_nodes: loss.affected_nodes(),
            worst_loss_frac: loss
                .missing
                .iter()
                .map(|&(_, m)| m as f64 / track as f64)
                .fold(0.0, f64::max),
        });
    }

    rows
}

// ----------------------------------------------- DES jitter sweep (ext)

/// One jitter level of the DES sweep: observed playback QoS under
/// uniform link jitter vs the synchronous Theorem 2 `h·d` bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JitterRow {
    pub jitter_slots: f64,
    pub max_delay: u64,
    pub avg_delay: f64,
    pub max_buffer: usize,
    /// Theorem 2 worst-delay bound `h·d` (synchronous model).
    pub thm2_bound: u64,
    /// `max_delay / slot-model max_delay` — how far jitter pushes the
    /// observed delay past the idealized run.
    pub delay_inflation: f64,
    /// `max_buffer / slot-model max_buffer`.
    pub buffer_inflation: f64,
}

/// DES jitter sweep: run a multi-tree overlay under growing uniform link
/// jitter and chart observed worst playback delay against the paper's
/// Theorem 2 `h·d` bound (which assumes the synchronous slot model).
///
/// At `jitter = 0` the DES is slot-faithful, so the first row doubles as
/// an equivalence check: its inflations must be exactly 1.0.
pub fn ext_jitter_sweep(
    n: usize,
    d: usize,
    jitters: &[f64],
    track: u64,
    seed: u64,
) -> Vec<JitterRow> {
    use clustream_des::{DesConfig, DesEngine, LatencyModel};

    let make = || {
        Box::new(MultiTreeScheme::new(
            greedy_forest(n, d).expect("valid parameters"),
            StreamMode::PreRecorded,
        )) as Box<dyn Scheme>
    };
    let sim = SimConfig::until_complete(track, 1_000_000);
    let baseline = simulate(make().as_mut(), track);
    let base_delay = baseline.qos.max_delay().max(1) as f64;
    let base_buffer = baseline.qos.max_buffer().max(1) as f64;
    let bound = analysis::thm2_worst_delay_bound(n, d);

    jitters
        .iter()
        .map(|&jitter| {
            let latency = if jitter == 0.0 {
                LatencyModel::Fixed
            } else {
                LatencyModel::UniformJitter { jitter }
            };
            let cfg = DesConfig::slot_faithful(sim.clone())
                .with_latency(latency)
                .seeded(seed);
            let r = DesEngine::new()
                .run(make().as_mut(), &cfg)
                .expect("model holds");
            JitterRow {
                jitter_slots: jitter,
                max_delay: r.qos.max_delay(),
                avg_delay: r.qos.avg_delay(),
                max_buffer: r.qos.max_buffer(),
                thm2_bound: bound,
                delay_inflation: r.qos.max_delay() as f64 / base_delay,
                buffer_inflation: r.qos.max_buffer() as f64 / base_buffer,
            }
        })
        .collect()
}

// ------------------------------------------------ Illustration reprints

/// Figure 1: render the super-tree for K clusters.
pub fn fig1_supertree(k: usize, big_d: usize) -> String {
    let b = Backbone::new(k, big_d).expect("valid backbone");
    let mut out = String::new();
    out.push_str(&format!("super-tree τ: K={k}, D={big_d}\n"));
    out.push_str("S\n");
    fn rec(b: &Backbone, children: &[usize], depth: usize, out: &mut String) {
        for &c in children {
            out.push_str(&format!(
                "{}S_{} (depth {})\n",
                "  ".repeat(depth),
                c + 1,
                b.depth(c)
            ));
            rec(b, &b.children(c), depth + 1, out);
        }
    }
    let roots: Vec<usize> = (0..k).filter(|&i| b.parent(i).is_none()).collect();
    rec(&b, &roots, 1, &mut out);
    out
}

/// Figure 3: the two constructions for N = 15, d = 3 as position tables.
pub fn fig3_trees() -> String {
    let mut out = String::new();
    for (name, f) in [
        ("structured", structured_forest(15, 3).unwrap()),
        ("greedy", greedy_forest(15, 3).unwrap()),
    ] {
        out.push_str(&format!("{name} construction (N=15, d=3):\n"));
        for k in 0..3 {
            out.push_str(&format!(
                "  T_{k}: S {}\n",
                f.tree(k)
                    .iter()
                    .map(|id| id.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    out
}

/// Figure 2: node `id`'s receive/send schedule in the Figure 3 forests.
pub fn fig2_node_schedule(id: u32) -> String {
    let mut out = String::new();
    for (name, f) in [
        ("structured", structured_forest(15, 3).unwrap()),
        ("greedy", greedy_forest(15, 3).unwrap()),
    ] {
        let s = MultiTreeScheme::new(f.clone(), StreamMode::PreRecorded);
        out.push_str(&format!("{name}: node {id}\n"));
        for k in 0..3 {
            let pos = f.position(k, id);
            let recv = s.first_recv(k, id);
            let parent = f.parent_pos(pos);
            let from = if parent == 0 {
                "S".to_string()
            } else {
                f.node_at(k, parent).to_string()
            };
            out.push_str(&format!(
                "  T_{k}: position {pos}, receives packets ≡{k} (mod 3) from {from} in slots ≡{} (mod 3), first at t{recv}\n",
                (pos - 1) % 3
            ));
            if f.is_interior_pos(pos) {
                let kids: Vec<String> = f
                    .children_pos(pos)
                    .map(|p| f.node_at(k, p).to_string())
                    .collect();
                out.push_str(&format!(
                    "        sends to children [{}]\n",
                    kids.join(", ")
                ));
            }
        }
    }
    out
}

/// Figures 5/6: slot-by-slot count of nodes holding each packet in the
/// `N = 7` hypercube — the doubling invariant.
pub fn fig5_hypercube_state(slots: u64) -> String {
    let n = 7usize;
    let mut s = HypercubeStream::new(n).unwrap();
    let r = simulate(&mut s, slots + 4);
    let mut out = String::new();
    out.push_str("slot | nodes holding packet p by end of slot (N=7, k=3)\n");
    for t in 0..slots {
        let counts: Vec<String> = (0..=t.min(12))
            .map(|p| {
                let c = (1..=n as u32)
                    .filter(|&id| {
                        r.arrivals
                            .usable_slot(NodeId(id), PacketId(p))
                            .is_some_and(|u| u.t() <= t + 1)
                    })
                    .count();
                format!("p{p}:{c}")
            })
            .collect();
        out.push_str(&format!("t{t:<3} | {}\n", counts.join(" ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_points_respect_bound_and_monotonicity() {
        let pts = fig4(&[50, 100, 200, 400], &[2, 3, 4, 5]);
        assert_eq!(pts.len(), 16);
        for p in &pts {
            assert!(p.max_delay <= p.bound, "N={} d={}", p.n, p.d);
        }
        // Figure 4 shape: at N = 400, degrees 2 and 3 beat 4 and 5.
        let at = |d: usize| {
            pts.iter()
                .find(|p| p.d == d && p.n == 400)
                .unwrap()
                .max_delay
        };
        assert!(at(2) <= at(4) && at(2) <= at(5));
        assert!(at(3) <= at(4) && at(3) <= at(5));
    }

    #[test]
    fn table1_orderings_match_paper() {
        let rows = table1(&[200]);
        let get = |s: &str| rows.iter().find(|r| r.scheme.starts_with(s)).unwrap();
        let mt = get("multi-tree d=2");
        let hc = get("hypercube arbitrary");
        let chain = get("chain");
        // Multi-tree: best worst-case delay; hypercube: best buffers;
        // chain: terrible delay.
        assert!(mt.max_delay <= hc.max_delay);
        assert!(hc.max_buffer <= 3);
        assert!(hc.max_buffer <= mt.max_buffer);
        assert!(chain.max_delay >= 10 * mt.max_delay);
        // Multi-tree keeps O(d) neighbors, hypercube pays O(log N).
        assert!(mt.max_neighbors <= 2 * 2 + 1);
        assert!(hc.max_neighbors > mt.max_neighbors);
    }

    #[test]
    fn thm1_rows_bounded() {
        let rows = thm1(&[3, 9], &[5, 10], 3, 2, 6);
        for r in &rows {
            assert!(
                r.measured <= r.bound,
                "K={} T_c={}: {} > {}",
                r.k,
                r.t_c,
                r.measured,
                r.bound
            );
        }
    }

    #[test]
    fn thm23_rows_consistent() {
        for r in thm2_thm3(3) {
            assert!(r.measured_max <= r.thm2_bound);
            assert!(r.measured_avg + 1e-9 >= r.thm3_lower, "N={} d={}", r.n, r.d);
            assert!(r.measured_buffer as u64 <= r.thm2_bound + 1);
        }
    }

    #[test]
    fn prop_rows_consistent() {
        for r in prop1(&[2, 3, 4, 5]) {
            assert_eq!(r.measured_max_delay, r.predicted_delay);
            assert!(r.measured_neighbors <= r.k);
        }
        for r in prop2_thm4(&[5, 12, 33]) {
            assert!(r.measured_max_delay <= r.predicted_max_delay);
            assert!(r.measured_avg_delay <= r.thm4_bound + 1.0);
            assert!(r.measured_buffer <= 3);
        }
    }

    #[test]
    fn churn_lazy_swaps_fewer_or_equal() {
        let cfg = ChurnTraceConfig {
            initial_members: 24,
            slots: 300,
            join_rate: 0.05,
            leave_rate: 0.004,
            rejoin_rate: 0.0,
            seed: 3,
        };
        let rows = ext_churn(cfg, 3);
        assert_eq!(rows.len(), 2);
        let eager = &rows[0];
        let lazy = &rows[1];
        assert_eq!(eager.final_members, lazy.final_members);
        assert!(lazy.total_swaps <= eager.total_swaps);
    }

    #[test]
    fn utilization_matches_section1_claims() {
        let rows = ext_utilization(63, 2, 32);
        let get = |s: &str| rows.iter().find(|r| r.scheme.starts_with(s)).unwrap();
        let mt = get("multi-tree");
        let st = get("single-tree");
        let hc = get("hypercube");
        // Single tree: about half the receivers idle, interiors ~2×.
        assert!(st.idle_receivers >= 30, "{}", st.idle_receivers);
        assert!(st.max_upload_rate > 1.5);
        // Multi-tree: at most d receivers idle, nobody above 1×.
        assert!(mt.idle_receivers <= 2);
        assert!(mt.max_upload_rate <= 1.0 + 1e-9);
        // Hypercube: everyone contributes.
        assert_eq!(hc.idle_receivers, 0);
        assert!(hc.max_upload_rate <= 1.0 + 1e-9);
    }

    #[test]
    fn crash_blast_radius_matches_paper_intuition() {
        // 40 nodes, d = 2, crash at slot 4, 32 tracked packets.
        let rows = ext_crash(40, 2, 4, 32);
        let get = |s: &str| rows.iter().find(|r| r.scheme.starts_with(s)).unwrap();
        let mt = get("multi-tree");
        let st = get("single-tree");
        // The single tree starves its subtree of ~everything sent after
        // the crash; the multi-tree subtree loses only ~1/d of packets.
        assert!(
            st.worst_loss_frac > 0.8,
            "single tree: {}",
            st.worst_loss_frac
        );
        assert!(
            mt.worst_loss_frac < st.worst_loss_frac,
            "multi-tree {} vs single {}",
            mt.worst_loss_frac,
            st.worst_loss_frac
        );
        assert!(
            mt.worst_loss_frac <= 0.5 + 0.2,
            "≈1/d: {}",
            mt.worst_loss_frac
        );
    }

    #[test]
    fn loss_rows_scale_with_rate() {
        let rows = ext_loss(60, 2, &[0.0, 0.05], 24);
        let at = |s: &str, rate: f64| {
            rows.iter()
                .find(|r| r.scheme.starts_with(s) && (r.loss_rate - rate).abs() < 1e-12)
                .unwrap()
        };
        assert_eq!(at("multi-tree", 0.0).avg_missing, 0.0);
        assert_eq!(at("hypercube", 0.0).avg_missing, 0.0);
        assert!(at("multi-tree", 0.05).avg_missing > 0.0);
        assert!(at("hypercube", 0.05).avg_missing > 0.0);
    }

    #[test]
    fn illustrations_render() {
        assert!(fig1_supertree(9, 3).contains("S_9"));
        assert!(fig3_trees().contains("T_2"));
        assert!(fig2_node_schedule(6).contains("position 2"));
        let s = fig5_hypercube_state(8);
        assert!(
            s.contains("p0:7"),
            "all 7 nodes eventually hold packet 0:\n{s}"
        );
    }
}
