//! Bit-for-bit determinism: identical inputs must give identical runs —
//! the property every experiment in EXPERIMENTS.md relies on.

use clustream::prelude::*;

fn assert_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.qos, b.qos);
    assert_eq!(a.total_transmissions, b.total_transmissions);
    assert_eq!(a.slots_run, b.slots_run);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.upload_counts, b.upload_counts);
}

#[test]
fn multitree_runs_are_reproducible() {
    let run = || {
        let mut s = MultiTreeScheme::new(greedy_forest(64, 3).unwrap(), StreamMode::PreRecorded);
        Simulator::run(&mut s, &SimConfig::until_complete(32, 100_000)).unwrap()
    };
    assert_identical(&run(), &run());
}

#[test]
fn hypercube_runs_are_reproducible() {
    let run = || {
        let mut s = HypercubeStream::new(77).unwrap();
        Simulator::run(&mut s, &SimConfig::until_complete(48, 100_000)).unwrap()
    };
    assert_identical(&run(), &run());
}

#[test]
fn sessions_are_reproducible() {
    let run = || {
        let mut s = ClusterSession::new(
            &[8, 12, 10],
            3,
            6,
            IntraScheme::MultiTree {
                d: 2,
                construction: Construction::Structured,
            },
        )
        .unwrap();
        Simulator::run(&mut s, &SimConfig::until_complete(20, 100_000)).unwrap()
    };
    assert_identical(&run(), &run());
}

#[test]
fn lossy_runs_are_seed_deterministic() {
    use clustream::sim::FaultPlan;
    let run = |seed: u64| {
        let mut s = MultiTreeScheme::new(greedy_forest(50, 2).unwrap(), StreamMode::PreRecorded);
        let cfg = SimConfig::with_faults(24, 300, FaultPlan::loss(0.03, seed));
        Simulator::run(&mut s, &cfg).unwrap()
    };
    let (a, b, c) = (run(4), run(4), run(5));
    assert_eq!(a.loss, b.loss);
    assert_eq!(a.qos, b.qos);
    assert_ne!(a.loss, c.loss, "different seeds must differ");
}

#[test]
fn churn_traces_replay_identically_through_dynamics() {
    let cfg = ChurnTraceConfig {
        initial_members: 20,
        slots: 400,
        join_rate: 0.05,
        leave_rate: 0.01,
        rejoin_rate: 0.0,
        seed: 11,
    };
    let replay = || {
        let trace = ChurnTrace::generate(cfg);
        let mut f = DynamicForest::new(20, 3, Construction::Greedy, true).unwrap();
        for e in &trace.events {
            match e.action {
                ChurnAction::Join | ChurnAction::Rejoin { .. } => {
                    f.add();
                }
                ChurnAction::Leave { victim_rank } => {
                    let m = f.members();
                    f.remove(m[victim_rank]).unwrap();
                }
            }
        }
        (f.members(), f.total_swaps())
    };
    assert_eq!(replay(), replay());
}
