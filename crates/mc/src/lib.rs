//! Invariant model-checker for the clustream engines.
//!
//! Three layers, one goal — the paper's guarantees hold *everywhere*,
//! not just on hand-picked configurations:
//!
//! - an **invariant registry** ([`invariant`]): pluggable [`Invariant`]
//!   objects encoding collision-freedom, the Theorem 2 delay bound
//!   (`h·d`), the buffer bound, in-order playback, and the `O(d)`
//!   neighbor bound, evaluated against any engine's [`RunResult`]
//!   (plus recovery-layer invariants in [`lattice`]);
//! - an **exhaustive small-world driver** ([`lattice`]): every genome in
//!   a bounded lattice (`d ∈ {2,3,4}`, `N ≤ 64`, both constructions,
//!   all four families, canonical fault plans) through the reference,
//!   fast and DES engines with cross-engine agreement;
//! - a **coverage-guided explorer** ([`mod@explore`]): seeded genome
//!   mutation, telemetry-shape novelty, and automatic
//!   [`shrink`](mod@shrink)ing of violations to 1-minimal
//!   counterexamples persisted in the [`corpus`] and replayed forever
//!   by `cargo test`.
//!
//! [`RunResult`]: clustream_sim::RunResult

#![warn(missing_docs)]

pub mod checker;
pub mod corpus;
pub mod explore;
pub mod genome;
pub mod invariant;
pub mod lattice;
pub mod sabotage;
pub mod shrink;

pub use checker::{check_genome, check_genome_fast, check_genome_with, CheckReport, Engines};
pub use corpus::{load_dir, replay_dir, CorpusEntry, ReplayReport};
pub use explore::{coverage_signature, explore, Counterexample, ExploreOptions, ExploreReport};
pub use genome::{ConstructionChoice, Family, Genome, ModeChoice};
pub use invariant::{
    bounds_for, check_result, registry, Bounds, CheckContext, Invariant, Violation,
};
pub use lattice::{
    canonical_fault_plans, enumerate, exhaustive, exhaustive_recovery, LatticeOptions,
    LatticeReport, RecoveryReport,
};
pub use sabotage::{Sabotage, SabotagedScheme};
pub use shrink::shrink;
