//! Per-node uplink capacity as a token/credit gate.
//!
//! The slot engines enforce send capacity by *counting* sends per slot and
//! erroring on overflow. A real uplink instead **serializes**: a node with
//! capacity `c` can have at most `c` packets in flight per slot, so each
//! transmission occupies the uplink for `1/c` of a slot and later sends
//! queue behind it. The [`UplinkGate`] models that: admission returns the
//! dispatch time, which is the requested time or the instant the uplink
//! frees, whichever is later.

use crate::event::TICKS_PER_SLOT;
use clustream_core::NodeId;

/// How sends contend for a node's uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UplinkModel {
    /// No contention: every send dispatches at its requested time. The
    /// degenerate model matching the slot engines (which enforce capacity
    /// by validation error instead).
    Unconstrained,
    /// Sends from one node serialize: each occupies the uplink for
    /// `1/capacity` of a slot and later sends wait for it to free.
    Serialized,
}

/// Per-node uplink occupancy tracker for [`UplinkModel::Serialized`].
#[derive(Debug, Clone)]
pub struct UplinkGate {
    /// Tick at which each node's uplink next frees.
    free_at: Vec<u64>,
}

impl UplinkGate {
    /// A gate for an id space of `n_ids` nodes, all uplinks initially free.
    pub fn new(n_ids: usize) -> Self {
        UplinkGate {
            free_at: vec![0; n_ids],
        }
    }

    /// Admit a send from `node` (capacity `capacity` packets per slot)
    /// requested at tick `now`; returns the dispatch tick and occupies the
    /// uplink for `TICKS_PER_SLOT / capacity` ticks from then.
    pub fn admit(&mut self, node: NodeId, capacity: usize, now: u64) -> u64 {
        let tx_ticks = (TICKS_PER_SLOT / capacity.max(1) as u64).max(1);
        let free = &mut self.free_at[node.index()];
        let dispatch = now.max(*free);
        *free = dispatch + tx_ticks;
        dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_capacity_serializes_to_one_per_slot() {
        let mut g = UplinkGate::new(2);
        let n = NodeId(1);
        assert_eq!(g.admit(n, 1, 0), 0);
        // Second send in the same slot waits a full slot.
        assert_eq!(g.admit(n, 1, 0), TICKS_PER_SLOT);
        assert_eq!(g.admit(n, 1, 0), 2 * TICKS_PER_SLOT);
    }

    #[test]
    fn higher_capacity_packs_sends_tighter() {
        let mut g = UplinkGate::new(2);
        let n = NodeId(1);
        // Capacity 4: each send occupies a quarter slot.
        assert_eq!(g.admit(n, 4, 0), 0);
        assert_eq!(g.admit(n, 4, 0), TICKS_PER_SLOT / 4);
        assert_eq!(g.admit(n, 4, 0), TICKS_PER_SLOT / 2);
        assert_eq!(g.admit(n, 4, 0), 3 * TICKS_PER_SLOT / 4);
        // All four fit within the slot; the fifth spills into the next.
        assert_eq!(g.admit(n, 4, 0), TICKS_PER_SLOT);
    }

    #[test]
    fn idle_uplink_dispatches_immediately() {
        let mut g = UplinkGate::new(2);
        let n = NodeId(1);
        g.admit(n, 1, 0);
        // By tick 5·SLOT the uplink has long freed.
        assert_eq!(g.admit(n, 1, 5 * TICKS_PER_SLOT), 5 * TICKS_PER_SLOT);
    }

    #[test]
    fn nodes_do_not_contend_with_each_other() {
        let mut g = UplinkGate::new(3);
        assert_eq!(g.admit(NodeId(1), 1, 0), 0);
        assert_eq!(g.admit(NodeId(2), 1, 0), 0);
    }
}
