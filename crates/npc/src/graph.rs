//! A small undirected graph with bitmask adjacency (≤ 64 vertices).

use clustream_core::CoreError;

/// Undirected graph on vertices `0..n`, `n ≤ 64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<u64>,
}

impl Graph {
    /// An edgeless graph on `n ≤ 64` vertices.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        if n == 0 || n > 64 {
            return Err(CoreError::InvalidConfig(format!(
                "graph size {n} out of supported range 1..=64"
            )));
        }
        Ok(Graph { n, adj: vec![0; n] })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Insert the undirected edge `{a, b}`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b, "bad edge {a}-{b}");
        self.adj[a] |= 1 << b;
        self.adj[b] |= 1 << a;
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a] & (1 << b) != 0
    }

    /// Neighbor bitmask of `v`.
    pub fn neighbors(&self, v: usize) -> u64 {
        self.adj[v]
    }

    /// Bitmask of all vertices.
    pub fn full_mask(&self) -> u64 {
        if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    /// Whether the sub-graph induced by `mask` is connected (the empty
    /// mask counts as connected).
    pub fn connected_within(&self, mask: u64) -> bool {
        if mask == 0 {
            return true;
        }
        let start = mask.trailing_zeros() as usize;
        let mut seen = 1u64 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v] & mask & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen == mask
    }

    /// Bitmask of vertices outside `mask` with ≥ 1 neighbor inside `mask`.
    pub fn dominated_by(&self, mask: u64) -> u64 {
        let mut out = 0u64;
        let mut m = mask;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            out |= self.adj[v];
        }
        out & !mask & self.full_mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n).unwrap();
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn edges_are_symmetric() {
        let mut g = Graph::new(4).unwrap();
        g.add_edge(1, 3);
        assert!(g.has_edge(1, 3));
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn connectivity_on_paths() {
        let g = path(5);
        assert!(g.connected_within(0b11111));
        assert!(g.connected_within(0b00110));
        assert!(!g.connected_within(0b10001)); // endpoints only
        assert!(g.connected_within(0));
        assert!(g.connected_within(0b00100));
    }

    #[test]
    fn domination() {
        let g = path(5); // 0-1-2-3-4
        assert_eq!(g.dominated_by(0b00100), 0b01010); // {2} dominates {1,3}
        assert_eq!(g.dominated_by(0b00001), 0b00010);
    }

    #[test]
    fn size_limits() {
        assert!(Graph::new(0).is_err());
        assert!(Graph::new(65).is_err());
        assert!(Graph::new(64).is_ok());
    }
}
