//! ext-F: flash crowd — grow the forest online by a join curve and score
//! the survivors' QoE (DESIGN.md §15, EXPERIMENTS.md "flash crowd").
//!
//! Runs one [`ScenarioPlan`] through [`clustream_recovery::FlashCrowdScheme`]
//! on the chosen slot engine, prints the initial-buffering and
//! throughput–smoothness frontiers with the paper's `h·d` bound pinned
//! as a grid row, and writes the machine-readable
//! [`clustream_bench::scenarios::FlashCrowdReport`] as JSON.
//!
//! `--oracle` additionally closes the run against the DES
//! (slot ≡ event world, bit for bit) — the CI quick-tier gate.

use clustream_bench::render_table;
use clustream_bench::scenarios::{flash_crowd_oracle, run_flash_crowd};
use clustream_workloads::ScenarioPlan;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ext_flash_crowd [--n0 N] [--d D] [--joins J] [--scenario SPEC] \
         [--track T] [--horizon H] [--engine reference|fast|mega] [--oracle] [--out PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut n0 = 100usize;
    let mut d = 3usize;
    let mut joins = 1_000u64;
    let mut scenario: Option<String> = None;
    // The tracked window must outlast the join curve (default ramp ends
    // at slot 210): joiners only ever receive packets sent after they
    // arrive, so a shorter window scores late joiners as receiving
    // nothing and the frontier never closes.
    let mut track = 256u64;
    let mut horizon = 2_000u64;
    let mut engine = "fast".to_string();
    let mut oracle = false;
    let mut out = "BENCH_flash_crowd.json".to_string();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        macro_rules! val {
            () => {
                match argv.next() {
                    Some(v) => v,
                    None => return usage(),
                }
            };
        }
        match arg.as_str() {
            "--n0" => {
                n0 = match val!().parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                }
            }
            "--d" => {
                d = match val!().parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                }
            }
            "--joins" => {
                joins = match val!().parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                }
            }
            "--scenario" => scenario = Some(val!()),
            "--track" => {
                track = match val!().parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                }
            }
            "--horizon" => {
                horizon = match val!().parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                }
            }
            "--engine" => engine = val!(),
            "--oracle" => oracle = true,
            "--out" => out = val!(),
            _ => return usage(),
        }
    }
    if !["reference", "fast", "mega"].contains(&engine.as_str()) {
        eprintln!("unknown --engine `{engine}`; valid engines are: reference, fast, mega");
        return ExitCode::from(2);
    }

    // Default curve: the whole crowd arrives as a ramp over 200 slots
    // starting at slot 10 — "10⁵ joins within a few hundred slots".
    let spec = scenario.unwrap_or_else(|| format!("ramp:{joins}@10+200"));
    let plan = match ScenarioPlan::parse(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    println!("ext-F — flash crowd: n0 = {n0}, d = {d}, scenario `{spec}`, engine {engine}\n");
    let rep = match run_flash_crowd(n0, d, &plan, track, horizon, &engine) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flash-crowd run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "joins {} | final members {} | rebuilds {} | swaps {} | settled slot {} | \
         measured max delay {} | h·d bound {} | wall {} ms\n",
        rep.joins_applied,
        rep.final_members,
        rep.rebuilds,
        rep.total_swaps,
        rep.settled_slot,
        rep.max_delay,
        rep.bound_h_d,
        rep.wall_ms,
    );

    println!("initial buffering vs. interruption (Wait policy):\n");
    let rows: Vec<Vec<String>> = rep
        .initial_buffering
        .iter()
        .map(|p| {
            vec![
                format!(
                    "{}{}",
                    p.initial_delay,
                    if p.initial_delay == rep.bound_h_d {
                        " (= h·d)"
                    } else {
                        ""
                    }
                ),
                format!("{:.4}", p.interruption_probability),
                format!("{:.2}", p.mean_stall_slots),
                format!("{:.4}", p.smoothness),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["delay d0", "P(interrupt)", "stall slots", "smoothness"],
            &rows
        )
    );

    println!("\nthroughput–smoothness frontier (both policies):\n");
    let rows: Vec<Vec<String>> = rep
        .throughput_smoothness
        .iter()
        .map(|p| {
            vec![
                p.policy.label().to_string(),
                format!(
                    "{}{}",
                    p.initial_delay,
                    if p.initial_delay == rep.bound_h_d {
                        " (= h·d)"
                    } else {
                        ""
                    }
                ),
                format!("{:.4}", p.throughput),
                format!("{:.4}", p.smoothness),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "delay d0", "throughput", "smoothness"], &rows)
    );

    let json = serde_json::to_string_pretty(&rep).expect("serializable");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");

    if oracle {
        print!("oracle: slot ≡ DES on the same plan ... ");
        match flash_crowd_oracle(n0, d, &plan, track, horizon) {
            Ok(()) => println!("closed"),
            Err(div) => {
                println!("DIVERGED");
                eprintln!("{div}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
