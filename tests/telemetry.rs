//! Zero-cost-off oracle for the telemetry layer: attaching a recorder
//! must never perturb a simulation. For every scheme family and every
//! engine (reference slot simulator, fast slot engine, slot-faithful
//! DES on both the heap and timing-wheel event queues) the
//! [`RunResult`] of an instrumented run is compared **field for field**
//! against the bare run, and the recorder is checked to have actually
//! observed the run (so the equivalence is not vacuous).

use clustream::prelude::*;
use clustream::telemetry::names as tm;
use proptest::prelude::*;

/// The four scheme families exercised by the oracle.
fn scheme_for(family: usize, n: usize, d: usize) -> Box<dyn Scheme> {
    match family {
        0 => Box::new(MultiTreeScheme::new(
            greedy_forest(n, d).unwrap(),
            StreamMode::PreRecorded,
        )),
        1 => Box::new(HypercubeStream::new(n).unwrap()),
        2 => Box::new(ChainScheme::new(n)),
        _ => Box::new(SingleTreeScheme::new(n, d)),
    }
}

/// Run `family` on `engine` twice — bare, then with a live recorder —
/// and return `(diffs, instrumented_counter)`.
fn run_both(
    family: usize,
    n: usize,
    d: usize,
    track: u64,
    engine: usize,
) -> (Vec<&'static str>, u64) {
    let bare_cfg = SimConfig::until_complete(track, 100_000);
    let (recorder, tel) = MemoryRecorder::handle();
    let on_cfg = bare_cfg.clone().with_telemetry(tel);

    let run = |cfg: &SimConfig| match engine {
        0 => Simulator::run(scheme_for(family, n, d).as_mut(), cfg).unwrap(),
        1 => FastEngine::new()
            .run(scheme_for(family, n, d).as_mut(), cfg)
            .unwrap(),
        e => DesEngine::new()
            .run(
                scheme_for(family, n, d).as_mut(),
                &DesConfig::slot_faithful(cfg.clone()).with_queue(if e == 2 {
                    QueueKind::Heap
                } else {
                    QueueKind::Wheel
                }),
            )
            .unwrap(),
    };

    let bare = run(&bare_cfg);
    let instrumented = run(&on_cfg);
    let snap = recorder.snapshot();
    // Slot engines count slots, the DES counts events; either proves the
    // recorder saw the instrumented run.
    let observed = snap.counter(tm::ENGINE_SLOTS) + snap.counter(tm::DES_EVENTS);
    (diff_fields(&bare, &instrumented), observed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recorder on vs off is bit-identical on every engine and family.
    #[test]
    fn recorder_never_perturbs_a_run(
        family in 0usize..4,
        engine in 0usize..4,
        n in 1usize..60,
        d in 1usize..5,
        track in 4u64..32,
    ) {
        let (diffs, observed) = run_both(family, n, d, track, engine);
        prop_assert!(diffs.is_empty(), "telemetry perturbed the run: {diffs:?}");
        prop_assert!(observed > 0, "recorder attached but observed nothing");
    }
}

/// The recorded-latency replay path (the networked cluster's DES
/// oracle) is equally inert under instrumentation: a replay under a
/// recorded table — with recorded in-flight drops (chaos transport),
/// and with and without fail-stop crashes — is bit-identical with the
/// recorder on and off. This pins the networked config plumbing
/// (`DesConfig::recorded`, including the lossy drop entries a chaos
/// run records) into the zero-cost-off contract alongside the
/// parametric models.
#[test]
fn recorder_never_perturbs_a_recorded_replay() {
    use clustream::des::RecordedLatencies;
    use clustream::sim::FaultPlan;

    let mut recorded = RecordedLatencies::new();
    for p in 0..24u64 {
        recorded.push(0, 1, 900 + (p % 7) * 40);
        // Every fifth copy on the interior link was eaten by chaos: the
        // replay loses it in flight at the same FIFO position.
        if p % 5 == 4 {
            recorded.push_drop(1, 2);
        } else {
            recorded.push(1, 2, 1_100 + (p % 5) * 30);
        }
        recorded.push(2, 3, 1_000 + (p % 3) * 55);
    }
    assert!(recorded.drop_count() > 0);
    let plans = [
        None,
        Some(FaultPlan {
            loss_rate: 0.0,
            seed: 0,
            crashes: Vec::new(),
            stop_crashes: vec![(NodeId(2), 6)],
        }),
    ];
    for plan in plans {
        let sim = match plan.clone() {
            None => SimConfig::until_complete(16, 500),
            Some(p) => SimConfig::with_faults(16, 500, p),
        };
        let (recorder, tel) = MemoryRecorder::handle();
        let run = |cfg: &SimConfig| {
            DesEngine::new()
                .run(
                    scheme_for(2, 4, 1).as_mut(),
                    &DesConfig::slot_faithful(cfg.clone())
                        .with_recorded_latencies(recorded.clone()),
                )
                .unwrap()
        };
        let bare = run(&sim);
        let instrumented = run(&sim.clone().with_telemetry(tel));
        let diffs = diff_fields(&bare, &instrumented);
        assert!(diffs.is_empty(), "replay perturbed: {diffs:?}");
        // The recorded drops actually fired — the equivalence covers the
        // lossy replay path, not just the clean one.
        assert!(
            bare.loss.as_ref().is_some_and(|l| l.lost_in_flight > 0),
            "no recorded drop was replayed: {:?}",
            bare.loss
        );
        assert!(
            recorder.snapshot().counter(tm::DES_EVENTS) > 0,
            "recorder attached but observed nothing"
        );
    }
}

/// Pin the non-vacuousness explicitly: the recorder's totals agree with
/// the [`RunResult`] of the run it must not perturb.
#[test]
fn recorder_totals_agree_with_the_run_result() {
    let (recorder, tel) = MemoryRecorder::handle();
    let cfg = SimConfig::until_complete(16, 100_000).with_telemetry(tel);
    let r = FastEngine::new()
        .run(scheme_for(0, 30, 3).as_mut(), &cfg)
        .unwrap();
    let snap = recorder.snapshot();
    assert_eq!(snap.counter(tm::ENGINE_SLOTS), r.slots_run);
    assert_eq!(
        snap.counter(tm::ENGINE_TRANSMISSIONS),
        r.total_transmissions
    );
    assert!(
        snap.spans.contains_key(tm::ENGINE_RUN),
        "the whole run is timed under a span"
    );
}
