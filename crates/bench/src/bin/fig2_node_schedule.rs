//! Figure 2: receiving and sending schedule of node id 6 in the N = 15,
//! d = 3 forests of Figure 3.

use clustream_bench::fig2_node_schedule;

fn main() {
    println!("{}", fig2_node_schedule(6));
}
