//! Hermetic in-tree stand-in for the `rand` crate.
//!
//! Supplies the trait surface this workspace uses — [`RngCore`],
//! [`Rng::gen_bool`], [`Rng::gen_range`] over integer and float ranges,
//! and [`SeedableRng::seed_from_u64`] — with fully deterministic
//! behavior. Streams are **not** bit-compatible with the real `rand`
//! crate; the workspace only relies on same-seed reproducibility, which
//! this shim guarantees.

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p = 0.0` is always `false` and `p = 1.0` is always `true` (the
    /// uniform variate is strictly below 1), matching the real crate's
    /// edge-case behavior.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Uniform draw from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type (e.g. `[u8; 32]`).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 into the full
    /// seed width.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Map 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64, used only for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Ranges that can be sampled uniformly to yield a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via 128-bit widening multiply.
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against end-point inclusion from floating rounding.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64(self.0);
            self.0 += 1;
            sm.next()
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = Counter(0);
        for _ in 0..100 {
            assert!(r.gen_bool(1.0));
            assert!(!r.gen_bool(0.0));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x = r.gen_range(4usize..=7);
            assert!((4..=7).contains(&x));
            let y = r.gen_range(10u64..30);
            assert!((10..30).contains(&y));
            let z = r.gen_range(f64::EPSILON..1.0);
            assert!(z >= f64::EPSILON && z < 1.0);
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn inclusive_hits_both_ends() {
        let mut r = Counter(3);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[r.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
