//! Recovery benchmark: what failure detection, online tree repair and
//! NACK retransmission buy under membership churn.
//!
//! For each churn rate, the same seeded crash trace is replayed through
//! the DES three times — fail-silent (`off`), detection + repair
//! (`repair`), and repair + retransmission (`repair+nack`) — and the
//! table reports delivered fraction, recovery latency and control
//! overhead per tier. A machine-readable summary is written to
//! `BENCH_recovery.json`.

use clustream_bench::render_table;
use clustream_bench::suites::{
    recovery_tiers, recovery_trace_for, run_recovery_tier, RecoveryReport, RECOVERY_D,
    RECOVERY_HORIZON, RECOVERY_N, RECOVERY_RATES, RECOVERY_TRACK,
};

fn main() {
    let build = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    if build == "debug" {
        eprintln!("warning: debug build — wall times are not representative");
    }

    let mut rows = Vec::new();
    for &rate in &RECOVERY_RATES {
        let trace = recovery_trace_for(rate);
        for (mode, rec) in recovery_tiers() {
            rows.push(run_recovery_tier(&trace, rate, mode, rec));
        }
        // Tier monotonicity (repair ≥ off ≥ …) is only a theorem for
        // interior crashes without rejoins (see tests/recovery.rs); with
        // rejoins a leaf departure can make the tiers trade places by a
        // few packets, so the bench reports rather than asserts.
    }

    println!(
        "\n{}",
        render_table(
            &[
                "churn",
                "mode",
                "leaves",
                "delivered",
                "repairs",
                "lat avg",
                "nacks",
                "ctl ovhd"
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.4}", r.churn_rate),
                        r.mode.clone(),
                        r.departures.to_string(),
                        format!("{:.4}", r.delivered_fraction),
                        r.repairs_committed.to_string(),
                        format!("{:.1}", r.recovery_latency_avg_slots),
                        r.nacks_sent.to_string(),
                        format!("{:.4}", r.control_overhead),
                    ]
                })
                .collect::<Vec<_>>()
        )
    );

    let report = RecoveryReport {
        build: build.to_string(),
        n: RECOVERY_N,
        d: RECOVERY_D,
        track: RECOVERY_TRACK,
        horizon: RECOVERY_HORIZON,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write("BENCH_recovery.json", json + "\n").expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
}
