//! QoE metrics: interruption probability, initial-buffering tradeoff
//! curves, and throughput–smoothness frontiers.
//!
//! The paper bounds worst-case playback delay and buffer space; modern
//! streaming work reports the same tension as *quality-of-experience*
//! frontiers. This module computes those frontiers from per-node
//! arrival timelines, policy-parameterised:
//!
//! * **Interruption probability** and the **initial-buffering vs.
//!   interruption tradeoff** (ParandehGheibi et al., arXiv:1001.1937):
//!   under the *wait* policy a node buffers for `initial_delay` slots
//!   after joining, then plays one packet per slot, stalling whenever
//!   the next packet has not arrived. A node with ≥ 1 stall is
//!   interrupted; sweeping `initial_delay` trades startup latency
//!   against interruption rate.
//! * **Throughput–smoothness frontier** (Joshi et al., arXiv:1405.3697):
//!   the *skip* policy never stalls — a packet that misses its play
//!   slot is dropped — giving smoothness 1 at reduced throughput, while
//!   *wait* delivers every received packet at reduced smoothness.
//!   Sweeping both policies over the delay grid traces the frontier.
//!
//! All metrics are pure functions of [`NodeTimeline`]s, so every engine
//! (and hand computation in the tests) feeds the same math.

use serde::{Deserialize, Serialize};

/// When a node joined and when each packet became usable for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTimeline {
    /// External node id.
    pub node: u64,
    /// Slot the node joined (0 for initial members).
    pub join_slot: u64,
    /// `usable[p]` = slot packet `p` became usable at this node;
    /// `None` = never received.
    pub usable: Vec<Option<u64>>,
}

/// What the player does when the next packet has not arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlayPolicy {
    /// Stall until the packet arrives (every received packet plays).
    Wait,
    /// Skip it and keep the play-out clock running (never stalls).
    Skip,
}

impl PlayPolicy {
    /// The policy's label in reports.
    pub fn label(&self) -> &'static str {
        match self {
            PlayPolicy::Wait => "wait",
            PlayPolicy::Skip => "skip",
        }
    }
}

/// Per-node playback outcome for one `(policy, initial_delay)` point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeQoe {
    /// External node id.
    pub node: u64,
    /// Packets in the node's playback window (first received id to the
    /// end of the tracked window).
    pub wanted: u64,
    /// Packets actually played.
    pub played: u64,
    /// Packets skipped (never received, or late under [`PlayPolicy::Skip`]).
    pub skipped: u64,
    /// Stall (rebuffering) events after playback started.
    pub stall_events: u64,
    /// Total slots spent stalled.
    pub stall_slots: u64,
    /// Whether playback was interrupted (≥ 1 stall, or ≥ 1 skip under
    /// [`PlayPolicy::Skip`]); a node that played nothing counts as
    /// interrupted.
    pub interrupted: bool,
}

impl NodeQoe {
    /// Fraction of play-out time spent playing rather than stalled:
    /// `played / (played + stall_slots)`; 0 if nothing played.
    pub fn smoothness(&self) -> f64 {
        if self.played == 0 {
            0.0
        } else {
            self.played as f64 / (self.played + self.stall_slots) as f64
        }
    }

    /// Fraction of the wanted window that played: `played / wanted`;
    /// 0 if the window is empty.
    pub fn throughput(&self) -> f64 {
        if self.wanted == 0 {
            0.0
        } else {
            self.played as f64 / self.wanted as f64
        }
    }
}

/// Play one node's timeline under `policy` with `initial_delay` slots
/// of startup buffering.
///
/// Playback starts at `join_slot + initial_delay` from the first packet
/// the node ever received, at one packet per slot. Packets never
/// received are skipped under both policies (a pure waiter would hang
/// forever on them); [`PlayPolicy::Wait`] stalls for late packets,
/// [`PlayPolicy::Skip`] drops them.
pub fn play(tl: &NodeTimeline, policy: PlayPolicy, initial_delay: u64) -> NodeQoe {
    let first = tl.usable.iter().position(|u| u.is_some());
    let Some(first) = first else {
        return NodeQoe {
            node: tl.node,
            wanted: tl.usable.len() as u64,
            played: 0,
            skipped: tl.usable.len() as u64,
            stall_events: 0,
            stall_slots: 0,
            interrupted: true,
        };
    };
    let wanted = (tl.usable.len() - first) as u64;
    let start = tl.join_slot + initial_delay;
    let (mut played, mut skipped, mut stall_events, mut stall_slots) = (0u64, 0u64, 0u64, 0u64);
    match policy {
        PlayPolicy::Wait => {
            let mut clock = start;
            for u in &tl.usable[first..] {
                let Some(s) = *u else {
                    skipped += 1;
                    continue;
                };
                if s > clock {
                    stall_events += 1;
                    stall_slots += s - clock;
                    clock = s;
                }
                played += 1;
                clock += 1;
            }
        }
        PlayPolicy::Skip => {
            for (i, u) in tl.usable[first..].iter().enumerate() {
                let sched = start + i as u64;
                match *u {
                    Some(s) if s <= sched => played += 1,
                    _ => skipped += 1,
                }
            }
        }
    }
    let interrupted = match policy {
        PlayPolicy::Wait => stall_events > 0 || played == 0,
        PlayPolicy::Skip => skipped > 0 || played == 0,
    };
    NodeQoe {
        node: tl.node,
        wanted,
        played,
        skipped,
        stall_events,
        stall_slots,
        interrupted,
    }
}

/// Population-level QoE for one `(policy, initial_delay)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QoeSummary {
    /// Playback policy the point was evaluated under.
    pub policy: PlayPolicy,
    /// Startup buffering delay, in slots.
    pub initial_delay: u64,
    /// Nodes evaluated.
    pub nodes: u64,
    /// Nodes with an interrupted playback.
    pub interrupted_nodes: u64,
    /// `interrupted_nodes / nodes`.
    pub interruption_probability: f64,
    /// Mean stall slots per node.
    pub mean_stall_slots: f64,
    /// Mean per-node smoothness.
    pub smoothness: f64,
    /// Mean per-node throughput.
    pub throughput: f64,
    /// Total packets played across the population.
    pub total_played: u64,
    /// Total packets skipped across the population.
    pub total_skipped: u64,
}

/// Evaluate the whole population at one `(policy, initial_delay)` point.
pub fn summarize(timelines: &[NodeTimeline], policy: PlayPolicy, initial_delay: u64) -> QoeSummary {
    let per: Vec<NodeQoe> = timelines
        .iter()
        .map(|tl| play(tl, policy, initial_delay))
        .collect();
    let nodes = per.len() as u64;
    let interrupted_nodes = per.iter().filter(|q| q.interrupted).count() as u64;
    let mean = |f: &dyn Fn(&NodeQoe) -> f64| per.iter().map(f).sum::<f64>() / nodes.max(1) as f64;
    QoeSummary {
        policy,
        initial_delay,
        nodes,
        interrupted_nodes,
        interruption_probability: interrupted_nodes as f64 / nodes.max(1) as f64,
        mean_stall_slots: mean(&|q| q.stall_slots as f64),
        smoothness: mean(&NodeQoe::smoothness),
        throughput: mean(&NodeQoe::throughput),
        total_played: per.iter().map(|q| q.played).sum(),
        total_skipped: per.iter().map(|q| q.skipped).sum(),
    }
}

/// The initial-buffering vs. interruption tradeoff: [`summarize`] under
/// [`PlayPolicy::Wait`] at every delay in `delay_grid`.
pub fn initial_buffering_frontier(
    timelines: &[NodeTimeline],
    delay_grid: &[u64],
) -> Vec<QoeSummary> {
    delay_grid
        .iter()
        .map(|&d| summarize(timelines, PlayPolicy::Wait, d))
        .collect()
}

/// The throughput–smoothness frontier: both policies swept over
/// `delay_grid`. Wait points pay smoothness for throughput 1 on the
/// received set; skip points pay throughput for smoothness 1.
pub fn throughput_smoothness_frontier(
    timelines: &[NodeTimeline],
    delay_grid: &[u64],
) -> Vec<QoeSummary> {
    let mut out = Vec::with_capacity(delay_grid.len() * 2);
    for &policy in &[PlayPolicy::Wait, PlayPolicy::Skip] {
        for &d in delay_grid {
            out.push(summarize(timelines, policy, d));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(node: u64, join_slot: u64, usable: Vec<Option<u64>>) -> NodeTimeline {
        NodeTimeline {
            node,
            join_slot,
            usable,
        }
    }

    #[test]
    fn fully_in_order_run_is_perfectly_smooth() {
        // Packet p usable at slot p+1; one slot of startup buffering
        // keeps the player exactly on schedule.
        let t = tl(1, 0, (0..8).map(|p| Some(p + 1)).collect());
        let q = play(&t, PlayPolicy::Wait, 1);
        assert_eq!((q.played, q.stall_events, q.stall_slots), (8, 0, 0));
        assert!(!q.interrupted);
        assert_eq!(q.smoothness(), 1.0);
        assert_eq!(q.throughput(), 1.0);
    }

    #[test]
    fn known_hiccup_run_hand_computed() {
        // usable = [1, 5, 6, 7], delay 1: packet 0 plays at slot 1;
        // packet 1 wanted at slot 2, arrives 5 → one stall of 3 slots;
        // packets 2 and 3 then arrive just in time.
        let t = tl(7, 0, vec![Some(1), Some(5), Some(6), Some(7)]);
        let q = play(&t, PlayPolicy::Wait, 1);
        assert_eq!((q.played, q.stall_events, q.stall_slots), (4, 1, 3));
        assert!(q.interrupted);
        assert_eq!(q.smoothness(), 4.0 / 7.0);
        // Four extra slots of buffering absorb the gap entirely.
        let q = play(&t, PlayPolicy::Wait, 4);
        assert_eq!((q.stall_events, q.stall_slots), (0, 0));
        assert!(!q.interrupted);
    }

    #[test]
    fn skip_policy_trades_throughput_for_smoothness() {
        let t = tl(2, 0, vec![Some(1), Some(5), Some(6), Some(7)]);
        let q = play(&t, PlayPolicy::Skip, 1);
        // Slots 1..5 schedule packets 0..4; only packet 0 is on time.
        assert_eq!((q.played, q.skipped), (1, 3));
        assert_eq!(q.smoothness(), 1.0);
        assert_eq!(q.throughput(), 0.25);
        assert!(q.interrupted);
    }

    #[test]
    fn interruption_probability_counts_interrupted_nodes() {
        let smooth = tl(1, 0, (0..4).map(|p| Some(p + 1)).collect());
        let stalling = tl(2, 0, vec![Some(1), Some(9), Some(10), Some(11)]);
        let s = summarize(&[smooth, stalling], PlayPolicy::Wait, 1);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.interrupted_nodes, 1);
        assert_eq!(s.interruption_probability, 0.5);
        // The stalling node waits slots 2..9 for packet 1: 7 slots,
        // averaged over both nodes.
        assert_eq!(s.mean_stall_slots, 3.5);
    }

    #[test]
    fn late_joiner_plays_from_its_first_packet() {
        // Joined at slot 10, missed packets 0..2 entirely; wanted
        // window starts at packet 2.
        let t = tl(3, 10, vec![None, None, Some(11), Some(12)]);
        let q = play(&t, PlayPolicy::Wait, 1);
        assert_eq!((q.wanted, q.played, q.skipped), (2, 2, 0));
        assert!(!q.interrupted);
    }

    #[test]
    fn node_with_nothing_received_is_interrupted() {
        let t = tl(4, 0, vec![None, None]);
        let q = play(&t, PlayPolicy::Wait, 0);
        assert_eq!((q.played, q.skipped), (0, 2));
        assert!(q.interrupted);
        assert_eq!(q.smoothness(), 0.0);
        assert_eq!(q.throughput(), 0.0);
    }

    #[test]
    fn frontier_interruption_rate_is_monotone_in_delay() {
        let mut tls = Vec::new();
        for n in 0..10u64 {
            // Node n's packet p arrives at p + 1 + n: deeper nodes need
            // more startup buffering.
            tls.push(tl(n, 0, (0..12).map(|p| Some(p + 1 + n)).collect()));
        }
        let grid: Vec<u64> = (0..12).collect();
        let frontier = initial_buffering_frontier(&tls, &grid);
        let probs: Vec<f64> = frontier
            .iter()
            .map(|s| s.interruption_probability)
            .collect();
        for w in probs.windows(2) {
            assert!(
                w[1] <= w[0],
                "interruption must not rise with delay: {probs:?}"
            );
        }
        assert_eq!(*probs.last().unwrap(), 0.0);
    }

    #[test]
    fn summary_json_round_trips() {
        let t = tl(1, 0, vec![Some(1), Some(4)]);
        let s = summarize(&[t], PlayPolicy::Skip, 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: QoeSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert!(json.contains("\"policy\":\"Skip\""), "{json}");
    }
}
