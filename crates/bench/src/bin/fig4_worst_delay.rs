//! Regenerate Figure 4: maximum startup delay vs number of nodes, tree
//! degrees 2–5. Prints the table and a CSV block (`N,d2,d3,d4,d5`)
//! matching the paper's series.

use clustream_bench::{fig4, render_table};
use clustream_workloads::linear_grid;

fn main() {
    let ns = linear_grid(25, 2000, 80);
    let degrees = [2usize, 3, 4, 5];
    let pts = fig4(&ns, &degrees);

    let rows: Vec<Vec<String>> = ns
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for &d in &degrees {
                let p = pts.iter().find(|p| p.n == n && p.d == d).expect("point");
                row.push(p.max_delay.to_string());
            }
            row
        })
        .collect();
    println!("Figure 4 — worst-case startup delay (slots) vs N\n");
    println!(
        "{}",
        render_table(
            &["N", "degree 2", "degree 3", "degree 4", "degree 5"],
            &rows
        )
    );

    println!("CSV:");
    println!("N,d2,d3,d4,d5");
    for row in &rows {
        println!("{}", row.join(","));
    }
}
