//! The model checker's configuration genome.
//!
//! A [`Genome`] is a fully serializable description of one simulation
//! configuration: scheme family, population, degree, construction, stream
//! mode, tracked window, optional fault plan and optional sabotage. It is
//! the unit the exhaustive driver enumerates, the explorer mutates, the
//! shrinker minimizes and the corpus persists — so it must serialize to
//! byte-identical JSON for identical values (guaranteed by the serde
//! shim's insertion-ordered objects).

use crate::sabotage::{Sabotage, SabotagedScheme};
use clustream_baselines::{ChainScheme, SingleTreeScheme};
use clustream_core::{CoreError, Scheme};
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{build_forest, Construction, MultiTreeScheme, StreamMode};
use clustream_sim::{FaultPlan, SimConfig};
use serde::{Deserialize, Serialize};

/// Which scheme family the genome instantiates (mirrors the CLI
/// `--scheme` choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Family {
    /// §2 interior-disjoint multi-trees.
    MultiTree,
    /// §3 chained hypercubes with a `d`-way source split.
    Hypercube,
    /// The chain strawman.
    Chain,
    /// The elevated-capacity single tree strawman.
    SingleTree,
}

impl Family {
    /// All four families, in enumeration order.
    pub const ALL: [Family; 4] = [
        Family::MultiTree,
        Family::Hypercube,
        Family::Chain,
        Family::SingleTree,
    ];

    /// Stable lowercase label (matches the CLI `--scheme` spelling).
    pub fn label(self) -> &'static str {
        match self {
            Family::MultiTree => "multitree",
            Family::Hypercube => "hypercube",
            Family::Chain => "chain",
            Family::SingleTree => "singletree",
        }
    }
}

/// Serializable mirror of [`Construction`] (which has no serde derives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstructionChoice {
    /// §2.2.1 group-rotation construction.
    Structured,
    /// §2.2.2 parity-greedy construction.
    Greedy,
}

impl ConstructionChoice {
    /// Both constructions, in enumeration order.
    pub const ALL: [ConstructionChoice; 2] =
        [ConstructionChoice::Structured, ConstructionChoice::Greedy];

    /// The `clustream-multitree` selector this mirrors.
    pub fn construction(self) -> Construction {
        match self {
            ConstructionChoice::Structured => Construction::Structured,
            ConstructionChoice::Greedy => Construction::Greedy,
        }
    }
}

/// Serializable mirror of [`StreamMode`] (which has no serde derives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeChoice {
    /// Pre-recorded: every packet available at slot 0.
    Pre,
    /// Live, source pre-buffers `d` packets.
    Buffered,
    /// Live, per-tree pipelined start.
    Pipelined,
}

impl ModeChoice {
    /// The `clustream-multitree` mode this mirrors.
    pub fn mode(self) -> StreamMode {
        match self {
            ModeChoice::Pre => StreamMode::PreRecorded,
            ModeChoice::Buffered => StreamMode::LivePrebuffered,
            ModeChoice::Pipelined => StreamMode::LivePipelined,
        }
    }
}

/// One fully specified model-checking configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Genome {
    /// Scheme family.
    pub family: Family,
    /// Receiver population.
    pub n: usize,
    /// Degree / source split (interpreted per family, as in the CLI).
    pub d: usize,
    /// Forest construction (multi-tree only; ignored elsewhere).
    pub construction: ConstructionChoice,
    /// Stream mode (multi-tree only; ignored elsewhere).
    pub mode: ModeChoice,
    /// Packets tracked for QoS measurement.
    pub track: u64,
    /// Optional fault plan (link loss / crashes).
    pub faults: Option<FaultPlan>,
    /// Optional deliberate schedule defect (see [`Sabotage`]) used to
    /// prove the checker catches real bugs.
    pub sabotage: Option<Sabotage>,
}

impl Genome {
    /// A clean (fault-free, unsabotaged) genome with a family-appropriate
    /// tracked window.
    pub fn clean(family: Family, n: usize, d: usize, construction: ConstructionChoice) -> Genome {
        Genome {
            family,
            n,
            d,
            construction,
            mode: ModeChoice::Pre,
            track: (2 * d as u64 + 6).max(8),
            faults: None,
            sabotage: None,
        }
    }

    /// Instantiate the scheme this genome describes (wrapped in the
    /// sabotage layer when one is present).
    pub fn build_scheme(&self) -> Result<Box<dyn Scheme>, CoreError> {
        let inner: Box<dyn Scheme> = match self.family {
            Family::MultiTree => Box::new(MultiTreeScheme::new(
                build_forest(self.n, self.d, self.construction.construction())?,
                self.mode.mode(),
            )),
            Family::Hypercube => {
                Box::new(HypercubeStream::with_groups(self.n, self.d.min(self.n))?)
            }
            Family::Chain => Box::new(ChainScheme::new(self.n)),
            Family::SingleTree => Box::new(SingleTreeScheme::new(self.n, self.d)),
        };
        Ok(match &self.sabotage {
            Some(s) => Box::new(SabotagedScheme::new(inner, *s)),
            None => inner,
        })
    }

    /// The slot horizon the checker runs this genome for: generous enough
    /// that a correct scheme always completes, scaled up when sabotage
    /// stretches latencies.
    pub fn horizon(&self, delay_bound: u64) -> u64 {
        let base = delay_bound + self.track + 64;
        match self.sabotage {
            Some(Sabotage::DelaySkew(extra)) => base * (extra as u64 + 1),
            _ => base,
        }
    }

    /// The [`SimConfig`] the checker runs this genome under. The trace is
    /// always recorded so `CollisionFree` can be re-validated
    /// independently of the engine's own checks.
    pub fn sim_config(&self, delay_bound: u64) -> SimConfig {
        let horizon = self.horizon(delay_bound);
        let cfg = match &self.faults {
            Some(f) => SimConfig::with_faults(self.track, horizon, f.clone()),
            None => SimConfig::until_complete(self.track, horizon),
        };
        cfg.traced()
    }

    /// Canonical single-line JSON encoding (byte-identical for equal
    /// genomes — the shrinker's determinism contract relies on this).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("genome is serializable")
    }

    /// Parse a genome from its JSON encoding.
    pub fn from_json(text: &str) -> Result<Genome, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_json_round_trips_byte_identically() {
        let g = Genome {
            family: Family::MultiTree,
            n: 17,
            d: 3,
            construction: ConstructionChoice::Greedy,
            mode: ModeChoice::Buffered,
            track: 12,
            faults: Some(FaultPlan::loss(0.25, 7)),
            sabotage: Some(Sabotage::DelaySkew(2)),
        };
        let j = g.to_json();
        let back = Genome::from_json(&j).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.to_json(), j, "encoding is canonical");
    }

    #[test]
    fn every_family_builds() {
        for family in Family::ALL {
            let g = Genome::clean(family, 9, 2, ConstructionChoice::Structured);
            let s = g.build_scheme().unwrap();
            assert_eq!(s.num_receivers(), 9, "{family:?}");
        }
    }

    #[test]
    fn sabotage_horizon_is_stretched() {
        let mut g = Genome::clean(Family::Chain, 5, 2, ConstructionChoice::Greedy);
        let clean = g.horizon(10);
        g.sabotage = Some(Sabotage::DelaySkew(3));
        assert!(g.horizon(10) >= 4 * clean);
    }
}
