//! Hermetic in-tree stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] runs a genuine ChaCha keystream with 8 rounds (RFC 8439
//! quarter-round structure, zero nonce/stream id), seeded through the
//! rand shim's [`SeedableRng`]. Output is deterministic per seed and
//! clone-reproducible, which is the property the simulator relies on; it
//! is not word-for-word identical to the real crate's stream (the shim's
//! `seed_from_u64` expansion differs).

#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

/// A ChaCha-8 based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..=11 of the ChaCha state (from the 32-byte seed).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    word: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 (nonce) stay zero: one stream per seed.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_resumes_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_looks_nondegenerate() {
        let mut a = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), words.len());
    }
}
