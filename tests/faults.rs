//! Cross-crate fault-injection properties: loss/crash behaviour of every
//! scheme family under the shared engine.

use clustream::prelude::*;
use clustream::sim::FaultPlan;
use clustream::NodeId;
use proptest::prelude::*;

#[test]
fn loss_free_fault_runs_match_clean_runs_everywhere() {
    // A fault plan with zero loss must not perturb any scheme's QoS.
    let clean_vs_lossless = |mk: &dyn Fn() -> Box<dyn Scheme>| {
        let mut a = mk();
        let clean = Simulator::run(a.as_mut(), &SimConfig::until_complete(24, 100_000)).unwrap();
        let mut b = mk();
        let cfg = SimConfig::with_faults(24, 4 * clean.slots_run + 32, FaultPlan::loss(0.0, 5));
        let lossless = Simulator::run(b.as_mut(), &cfg).unwrap();
        for q in &clean.qos.nodes {
            assert_eq!(
                lossless.qos.node(q.node).unwrap().playback_delay,
                q.playback_delay,
                "{} node {}",
                clean.scheme,
                q.node
            );
        }
        assert_eq!(
            lossless.loss.unwrap().total_missing(),
            0,
            "{}",
            clean.scheme
        );
    };
    clean_vs_lossless(&|| {
        Box::new(MultiTreeScheme::new(
            greedy_forest(40, 3).unwrap(),
            StreamMode::PreRecorded,
        ))
    });
    clean_vs_lossless(&|| Box::new(HypercubeStream::new(40).unwrap()));
    clean_vs_lossless(&|| Box::new(ChainScheme::new(20)));
}

#[test]
fn crashing_an_all_leaf_node_is_harmless_in_multitrees() {
    // An all-leaf (G_d) node uploads nothing: crashing it starves nobody.
    let forest = greedy_forest(15, 3).unwrap();
    let all_leaf = forest.node_at(0, 15); // tail of T_0 is in G_d
    let mut s = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
    let cfg = SimConfig::with_faults(24, 200, FaultPlan::crash(NodeId(all_leaf), 0));
    let r = Simulator::run(&mut s, &cfg).unwrap();
    let loss = r.loss.unwrap();
    assert_eq!(loss.total_missing(), 0, "leaf crash starved someone");
    assert_eq!(loss.crash_suppressed, 0, "leaves never send anyway");
}

#[test]
fn crashing_the_interior_node_starves_only_its_tree_share() {
    // The multi-tree resilience claim, asserted per node: a T_0 interior
    // crash costs its descendants only the T_0 packet share (1/d-ish),
    // never the whole stream.
    let d = 3;
    let track = 30u64;
    let forest = greedy_forest(39, d).unwrap();
    let mut s = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
    let cfg = SimConfig::with_faults(track, 400, FaultPlan::crash(NodeId(1), 2));
    let r = Simulator::run(&mut s, &cfg).unwrap();
    let loss = r.loss.unwrap();
    assert!(loss.affected_nodes() > 0, "node 1 has descendants");
    for &(node, missing) in &loss.missing {
        assert!(
            (missing as u64) <= track / d as u64 + 2,
            "{node} lost {missing} > one tree's share"
        );
    }
}

#[test]
fn hypercube_loses_nothing_before_the_crash_slot() {
    let crash_at = 12u64;
    let mut s = HypercubeStream::new(31).unwrap();
    let cfg = SimConfig::with_faults(24, 300, FaultPlan::crash(NodeId(5), crash_at));
    let r = Simulator::run(&mut s, &cfg).unwrap();
    // Packets consumed before the crash were fully distributed: packet p
    // is everywhere by slot p + k + 1 = p + 6; so packets with
    // p + 6 ≤ 12 are safe.
    for node in 1..=31u32 {
        for p in 0..(crash_at - 6) {
            assert!(
                r.arrivals
                    .usable_slot(NodeId(node), clustream::PacketId(p))
                    .is_some(),
                "node {node} lost pre-crash packet {p}"
            );
        }
    }
}

#[test]
fn chain_crash_severs_everything_downstream() {
    let mut s = ChainScheme::new(10);
    let cfg = SimConfig::with_faults(16, 100, FaultPlan::crash(NodeId(5), 0));
    let r = Simulator::run(&mut s, &cfg).unwrap();
    let loss = r.loss.unwrap();
    // Nodes 6..10 get nothing at all; nodes 1..5 everything.
    assert_eq!(loss.affected_nodes(), 5);
    for &(node, missing) in &loss.missing {
        assert!(node.0 >= 6);
        assert_eq!(missing, 16, "{node} should miss the whole window");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A zero-probability loss process must be a perfect no-op for
    /// **every** scheme family: identical per-node playback delay *and*
    /// buffer occupancy, and an all-zero loss report. Buffers matter
    /// here — the lossy analysis path once pinned them at zero.
    #[test]
    fn zero_loss_runs_equal_clean_runs_for_every_family(
        n in 2usize..60,
        d in 1usize..5,
        seed in any::<u64>(),
        t_c in 2u32..20,
    ) {
        let cluster = n.clamp(2, 9);
        let families: Vec<Box<dyn Fn() -> Box<dyn Scheme>>> = vec![
            Box::new(move || {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(n, d).unwrap(),
                    StreamMode::PreRecorded,
                ))
            }),
            Box::new(move || Box::new(HypercubeStream::new(n).unwrap())),
            Box::new(move || Box::new(ChainScheme::new(n))),
            Box::new(move || Box::new(SingleTreeScheme::new(n, d.max(2)))),
            Box::new(move || {
                Box::new(
                    ClusterSession::new(
                        &[cluster, cluster, cluster],
                        3,
                        t_c,
                        IntraScheme::MultiTree {
                            d,
                            construction: Construction::Greedy,
                        },
                    )
                    .unwrap(),
                )
            }),
        ];
        for mk in &families {
            let mut a = mk();
            let clean =
                Simulator::run(a.as_mut(), &SimConfig::until_complete(16, 100_000)).unwrap();
            let mut b = mk();
            let cfg = SimConfig::with_faults(
                16,
                4 * clean.slots_run + 32,
                FaultPlan::loss(0.0, seed),
            );
            let lossless = Simulator::run(b.as_mut(), &cfg).unwrap();
            for q in &clean.qos.nodes {
                let l = lossless.qos.node(q.node).unwrap();
                prop_assert_eq!(
                    (l.playback_delay, l.max_buffer),
                    (q.playback_delay, q.max_buffer),
                    "{} node {}",
                    clean.scheme,
                    q.node
                );
            }
            let loss = lossless.loss.as_ref().unwrap();
            prop_assert_eq!(loss.total_missing(), 0, "{}", clean.scheme);
            prop_assert_eq!(loss.lost_in_flight, 0, "{}", clean.scheme);
            prop_assert_eq!(loss.propagation_suppressed, 0, "{}", clean.scheme);
        }
    }
}

#[test]
fn total_loss_starves_every_receiver_completely() {
    // loss_rate = 1.0 drops every transmission in flight: no receiver
    // ever holds anything, so all n nodes miss the entire window.
    let track = 12u64;
    type SchemeFactory = Box<dyn Fn() -> Box<dyn Scheme>>;
    let runs: Vec<(usize, SchemeFactory)> = vec![
        (
            20,
            Box::new(|| {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(20, 2).unwrap(),
                    StreamMode::PreRecorded,
                ))
            }),
        ),
        (15, Box::new(|| Box::new(HypercubeStream::new(15).unwrap()))),
        (10, Box::new(|| Box::new(ChainScheme::new(10)))),
    ];
    for (n, mk) in &runs {
        let mut s = mk();
        let cfg = SimConfig::with_faults(track, 200, FaultPlan::loss(1.0, 11));
        let r = Simulator::run(s.as_mut(), &cfg).unwrap();
        let loss = r.loss.unwrap();
        assert_eq!(loss.affected_nodes(), *n, "{}", r.scheme);
        for &(node, missing) in &loss.missing {
            assert_eq!(missing as u64, track, "{} node {node}", r.scheme);
        }
        assert!(loss.lost_in_flight > 0, "{}", r.scheme);
    }
}

#[test]
fn crash_at_slot_zero_silences_the_node_for_the_whole_run() {
    // Node 1 uploads plenty in a clean run; crashed at slot 0 it must
    // never send a single packet — everything it would have relayed is
    // crash-suppressed instead.
    let mk = || MultiTreeScheme::new(greedy_forest(30, 2).unwrap(), StreamMode::PreRecorded);
    let mut clean_scheme = mk();
    let clean = Simulator::run(&mut clean_scheme, &SimConfig::until_complete(16, 100_000)).unwrap();
    assert!(clean.upload_counts[1] > 0, "node 1 is interior");

    let mut s = mk();
    let cfg = SimConfig::with_faults(16, 300, FaultPlan::crash(NodeId(1), 0));
    let r = Simulator::run(&mut s, &cfg).unwrap();
    assert_eq!(r.upload_counts[1], 0, "crashed-at-0 node must never upload");
    assert!(r.loss.as_ref().unwrap().crash_suppressed > 0);
}

#[test]
fn source_adjacent_crash_severs_the_entire_chain() {
    // Crashing the only node the source feeds is the largest possible
    // blast radius: node 1 still receives, everyone downstream starves.
    let n = 8u32;
    let track = 10u64;
    let mut s = ChainScheme::new(n as usize);
    let cfg = SimConfig::with_faults(track, 100, FaultPlan::crash(NodeId(1), 0));
    let r = Simulator::run(&mut s, &cfg).unwrap();
    let loss = r.loss.unwrap();
    assert_eq!(loss.affected_nodes(), n as usize - 1);
    for &(node, missing) in &loss.missing {
        assert!(node.0 >= 2, "node 1 itself keeps receiving");
        assert_eq!(missing as u64, track, "{node} should miss the window");
    }
}

#[test]
fn lossy_runs_report_real_buffer_occupancy() {
    // Pins the lossy-analysis fix: `max_buffer` comes from the actual
    // playback simulation, not a hardwired zero.
    let mk = || MultiTreeScheme::new(greedy_forest(40, 3).unwrap(), StreamMode::PreRecorded);
    let mut clean_scheme = mk();
    let clean = Simulator::run(&mut clean_scheme, &SimConfig::until_complete(32, 100_000)).unwrap();
    assert!(clean.qos.max_buffer() > 0);

    // Zero loss: buffers identical to the clean run, node by node.
    let mut a = mk();
    let cfg = SimConfig::with_faults(32, 4 * clean.slots_run + 32, FaultPlan::loss(0.0, 9));
    let lossless = Simulator::run(&mut a, &cfg).unwrap();
    for q in &clean.qos.nodes {
        assert_eq!(
            lossless.qos.node(q.node).unwrap().max_buffer,
            q.max_buffer,
            "node {}",
            q.node
        );
    }

    // Genuine loss: occupancy must still be reported, not zeroed.
    let mut b = mk();
    let cfg = SimConfig::with_faults(32, 400, FaultPlan::loss(0.15, 9));
    let lossy = Simulator::run(&mut b, &cfg).unwrap();
    assert!(lossy.loss.as_ref().unwrap().total_missing() > 0);
    assert!(
        lossy.qos.max_buffer() > 0,
        "lossy runs must report real buffer occupancy"
    );
}

#[test]
fn fail_stop_that_never_triggers_equals_clean() {
    // Satellite: threading a fail-stop plan through the engines must be a
    // perfect no-op until the stop slot arrives. A stop scheduled past the
    // horizon therefore reproduces the clean run bit for bit.
    let mk = || MultiTreeScheme::new(greedy_forest(30, 3).unwrap(), StreamMode::PreRecorded);
    let mut clean_scheme = mk();
    let clean = Simulator::run(&mut clean_scheme, &SimConfig::until_complete(16, 100_000)).unwrap();

    let mut plan = FaultPlan::fail_stop(NodeId(5), 1_000_000);
    plan.loss_rate = 0.0;
    let cfg = SimConfig::with_faults(16, 4 * clean.slots_run + 32, plan);
    for engine in [
        Simulator::run as fn(&mut dyn Scheme, &SimConfig) -> _,
        FastSimulator::run,
    ] {
        let mut s = mk();
        let r = engine(&mut s, &cfg).unwrap();
        for q in &clean.qos.nodes {
            let l = r.qos.node(q.node).unwrap();
            assert_eq!(
                (l.playback_delay, l.max_buffer),
                (q.playback_delay, q.max_buffer),
                "node {}",
                q.node
            );
        }
        let loss = r.loss.as_ref().unwrap();
        assert_eq!(loss.total_missing(), 0);
        assert_eq!(loss.stopped_receives, 0);
    }
}

#[test]
fn fail_stop_silences_sends_and_receives() {
    // A fail-stopped node is deaf as well as mute: it suppresses its own
    // sends (like a crash) *and* drops arrivals on the floor, so it shows
    // up in the missing set itself while its descendants starve too.
    let stop_at = 6u64;
    let track = 24u64;
    let mk = || MultiTreeScheme::new(greedy_forest(30, 3).unwrap(), StreamMode::PreRecorded);

    // Node 1 is interior (it uploads in a clean run).
    let mut probe = mk();
    let clean = Simulator::run(&mut probe, &SimConfig::until_complete(track, 100_000)).unwrap();
    assert!(clean.upload_counts[1] > 0);

    let cfg = SimConfig::with_faults(track, 300, FaultPlan::fail_stop(NodeId(1), stop_at));
    let reference = {
        let mut s = mk();
        Simulator::run(&mut s, &cfg).unwrap()
    };
    let fast = {
        let mut s = mk();
        FastSimulator::run(&mut s, &cfg).unwrap()
    };
    assert_eq!(diff_fields(&reference, &fast), Vec::<&str>::new());

    let loss = reference.loss.as_ref().unwrap();
    assert!(loss.stopped_receives > 0, "arrivals must be dropped");
    assert!(loss.crash_suppressed > 0, "sends must be suppressed");
    assert!(
        loss.missing.iter().any(|&(n, _)| n == NodeId(1)),
        "the stopped node itself goes starved"
    );
    // Fail-stop is a crash variant: every propagation loss it causes is
    // attributed to the crash side of the split.
    assert_eq!(loss.propagation_from_loss, 0);
    assert_eq!(
        loss.propagation_from_crash, loss.propagation_suppressed,
        "crash-only plans attribute all propagation to the crash"
    );
    // And the uniform resilience report carries the stall accounting.
    let resil = reference.resilience.unwrap();
    assert_eq!(resil.stall_events, loss.total_missing() as u64);
}

#[test]
fn propagation_split_attributes_each_originating_fault() {
    // Satellite: the LossReport splits downstream suppression by the
    // fault that originated it, and the split always sums to the total.
    let mk = || MultiTreeScheme::new(greedy_forest(40, 3).unwrap(), StreamMode::PreRecorded);

    // Loss-only plan: everything on the loss side.
    let mut a = mk();
    let lossy = Simulator::run(
        &mut a,
        &SimConfig::with_faults(24, 300, FaultPlan::loss(0.3, 7)),
    )
    .unwrap();
    let lr = lossy.loss.as_ref().unwrap();
    assert!(lr.propagation_suppressed > 0);
    assert_eq!(lr.propagation_from_crash, 0);
    assert_eq!(lr.propagation_from_loss, lr.propagation_suppressed);

    // Crash-only plan: everything on the crash side.
    let mut b = mk();
    let crashed = Simulator::run(
        &mut b,
        &SimConfig::with_faults(24, 300, FaultPlan::crash(NodeId(1), 2)),
    )
    .unwrap();
    let cr = crashed.loss.as_ref().unwrap();
    assert!(cr.propagation_suppressed > 0);
    assert_eq!(cr.propagation_from_loss, 0);
    assert_eq!(cr.propagation_from_crash, cr.propagation_suppressed);

    // Mixed plan: both sides populated, split exact, engines agree.
    let mut plan = FaultPlan::loss(0.2, 11);
    plan.crashes.push((NodeId(1), 4));
    let cfg = SimConfig::with_faults(24, 300, plan);
    let mut c = mk();
    let mixed = Simulator::run(&mut c, &cfg).unwrap();
    let mut d = mk();
    let mixed_fast = FastSimulator::run(&mut d, &cfg).unwrap();
    assert_eq!(diff_fields(&mixed, &mixed_fast), Vec::<&str>::new());
    let mr = mixed.loss.as_ref().unwrap();
    assert!(mr.propagation_from_loss > 0, "loss should propagate too");
    assert!(mr.propagation_from_crash > 0, "the crash should propagate");
    assert_eq!(
        mr.propagation_from_loss + mr.propagation_from_crash,
        mr.propagation_suppressed
    );
}
