//! Deliberate schedule defects.
//!
//! A [`Sabotage`] wraps a correct scheme and perturbs its transmission
//! stream in a controlled way, so the checker's teeth can be proven: each
//! variant violates a specific invariant class, and the shrinker can
//! minimize the perturbation magnitude along with the population.

use clustream_core::{
    MembershipEvent, NodeId, RepairOutcome, Scheme, Slot, StateView, Transmission,
};
use serde::{Deserialize, Serialize};

/// A seeded schedule defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sabotage {
    /// Add the given number of slots to every transmission's latency.
    /// Forwarding nodes then ship packets they have not yet received —
    /// a model-validity violation the engine flags as `PacketNotHeld`.
    DelaySkew(u16),
    /// Shift the whole schedule by the given number of slots: nothing is
    /// sent before slot `k`, and slot `t ≥ k` replays the original slot
    /// `t − k`. Collision-freedom, ordering and buffers are untouched,
    /// but every arrival is `k` slots late — a pure `DelayBound`
    /// violation once `k` exceeds the theorem's slack.
    SourceStall(u16),
    /// Drop every transmission whose packet is ≡ `r (mod m)` (fields are
    /// `(r, m)`). Receivers never complete — an `InOrderPlayback`
    /// (hiccup) violation.
    DropResidue(u16, u16),
    /// Redirect the slot's second transmission onto the first one's
    /// receiver and arrival slot — a `CollisionFree` violation
    /// (`ReceiveCollision`).
    Collide,
}

/// A scheme wrapper applying a [`Sabotage`] to the inner schedule.
pub struct SabotagedScheme {
    inner: Box<dyn Scheme>,
    sabotage: Sabotage,
}

impl SabotagedScheme {
    /// Wrap `inner`, applying `sabotage` to every slot's transmissions.
    pub fn new(inner: Box<dyn Scheme>, sabotage: Sabotage) -> SabotagedScheme {
        SabotagedScheme { inner, sabotage }
    }
}

impl Scheme for SabotagedScheme {
    fn name(&self) -> String {
        format!("sabotaged[{:?}]({})", self.sabotage, self.inner.name())
    }

    fn num_receivers(&self) -> usize {
        self.inner.num_receivers()
    }

    fn id_space(&self) -> usize {
        self.inner.id_space()
    }

    fn receivers(&self) -> Vec<NodeId> {
        self.inner.receivers()
    }

    fn send_capacity(&self, node: NodeId) -> usize {
        self.inner.send_capacity(node)
    }

    fn availability(&self) -> clustream_core::Availability {
        self.inner.availability()
    }

    fn transmissions(&mut self, slot: Slot, view: &dyn StateView, out: &mut Vec<Transmission>) {
        match self.sabotage {
            Sabotage::DelaySkew(extra) => {
                self.inner.transmissions(slot, view, out);
                for tx in out.iter_mut() {
                    tx.latency += extra as u32;
                }
            }
            Sabotage::SourceStall(k) => {
                if slot.t() >= k as u64 {
                    self.inner
                        .transmissions(Slot(slot.t() - k as u64), view, out);
                }
            }
            Sabotage::DropResidue(r, m) => {
                self.inner.transmissions(slot, view, out);
                let m = (m as u64).max(1);
                out.retain(|tx| tx.packet.seq() % m != r as u64 % m);
            }
            Sabotage::Collide => {
                self.inner.transmissions(slot, view, out);
                if out.len() >= 2 {
                    let (to, latency) = (out[0].to, out[0].latency);
                    out[1].to = to;
                    out[1].latency = latency;
                }
            }
        }
    }

    fn membership_event(&mut self, node: NodeId, event: MembershipEvent) -> Option<RepairOutcome> {
        self.inner.membership_event(node, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_baselines::ChainScheme;
    use clustream_core::CoreError;
    use clustream_sim::{SimConfig, Simulator};

    #[test]
    fn source_stall_shifts_delay_without_model_errors() {
        let mut clean = ChainScheme::new(4);
        let base = Simulator::run(&mut clean, &SimConfig::until_complete(6, 500)).unwrap();
        let mut stalled =
            SabotagedScheme::new(Box::new(ChainScheme::new(4)), Sabotage::SourceStall(5));
        let run = Simulator::run(&mut stalled, &SimConfig::until_complete(6, 500)).unwrap();
        assert_eq!(run.qos.max_delay(), base.qos.max_delay() + 5);
        assert_eq!(run.duplicate_deliveries, 0);
    }

    #[test]
    fn collide_triggers_receive_collision() {
        // The chain sends ≥ 2 transmissions per slot once the pipeline
        // fills; redirecting the second onto the first's receiver must
        // trip the engine's collision check.
        let mut s = SabotagedScheme::new(Box::new(ChainScheme::new(4)), Sabotage::Collide);
        let err = Simulator::run(&mut s, &SimConfig::until_complete(6, 500)).unwrap_err();
        assert!(matches!(err, CoreError::ReceiveCollision { .. }), "{err}");
    }

    #[test]
    fn drop_residue_starves_playback() {
        let mut s =
            SabotagedScheme::new(Box::new(ChainScheme::new(3)), Sabotage::DropResidue(0, 2));
        let err = Simulator::run(&mut s, &SimConfig::until_complete(6, 500)).unwrap_err();
        assert!(matches!(err, CoreError::Hiccup { .. }), "{err}");
    }
}
