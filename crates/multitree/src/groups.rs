//! The node-id partition `G_0 … G_d` of §2.2.
//!
//! With `I = ⌈N/d⌉ − 1` interior positions per tree, node ids are split into
//! `d` interior-capable groups `G_0 = {1..I}, …, G_{d−1} = {(d−1)I+1..dI}`
//! and an all-leaf group `G_d = {dI+1..N}`. Tree `T_k`'s interior nodes are
//! drawn exclusively from `G_k`, which is what makes the trees
//! interior-disjoint.
//!
//! So that every interior node has exactly `d` children, the population is
//! padded with **dummy** receivers up to the next multiple of `d`
//! (`N_pad = ⌈N/d⌉·d`); dummies always land in `G_d`, appear only as leaves,
//! and are erased at the simulator boundary ("they can simply be removed in
//! the real system").

use clustream_core::CoreError;
use serde::{Deserialize, Serialize};
use std::ops::RangeInclusive;

/// The `G_0 … G_d` partition for `n` real receivers and degree `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Groups {
    n: usize,
    d: usize,
    n_pad: usize,
    interior: usize,
}

impl Groups {
    /// Partition `n ≥ 1` receivers for degree `d ≥ 1` trees.
    pub fn new(n: usize, d: usize) -> Result<Self, CoreError> {
        if n == 0 {
            return Err(CoreError::InvalidConfig(
                "need at least one receiver".into(),
            ));
        }
        if d == 0 {
            return Err(CoreError::InvalidConfig("tree degree d must be ≥ 1".into()));
        }
        let n_pad = n.div_ceil(d) * d;
        let interior = n_pad / d - 1; // I = ⌈N/d⌉ − 1
        Ok(Groups {
            n,
            d,
            n_pad,
            interior,
        })
    }

    /// Number of real receivers `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tree degree `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Population including dummies, `⌈N/d⌉·d`.
    pub fn n_pad(&self) -> usize {
        self.n_pad
    }

    /// Number of dummy receivers appended (`0 ≤ dummies < d`).
    pub fn dummies(&self) -> usize {
        self.n_pad - self.n
    }

    /// `I`, the number of interior positions per tree.
    pub fn interior_count(&self) -> usize {
        self.interior
    }

    /// Whether `node` (1-based id) is a dummy placeholder.
    pub fn is_dummy(&self, node: u32) -> bool {
        (node as usize) > self.n
    }

    /// Node ids of group `G_i` for `i ∈ 0..=d`. Interior-capable groups
    /// `G_0..G_{d−1}` have `I` ids each; `G_d` holds the remaining `d`
    /// all-leaf ids (including dummies).
    pub fn g(&self, i: usize) -> RangeInclusive<u32> {
        assert!(i <= self.d, "group index {i} out of range (d = {})", self.d);
        if i < self.d {
            let lo = i * self.interior + 1;
            let hi = (i + 1) * self.interior;
            lo as u32..=hi as u32
        } else {
            (self.d * self.interior + 1) as u32..=self.n_pad as u32
        }
    }

    /// Which group a node id belongs to.
    pub fn group_of(&self, node: u32) -> usize {
        assert!(
            node >= 1 && (node as usize) <= self.n_pad,
            "node {node} out of range"
        );
        let idx = (node as usize - 1) / self.interior.max(1);
        if self.interior == 0 {
            self.d
        } else {
            idx.min(self.d)
        }
    }

    /// Parity of a node id (§2.2.2): `p_i = (i − 1) mod d`.
    pub fn parity(&self, node: u32) -> usize {
        (node as usize - 1) % self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_n15_d3() {
        // §2.2 / Figure 3: N = 15, d = 3 ⇒ I = 4, G_0 = {1..4},
        // G_1 = {5..8}, G_2 = {9..12}, G_3 = {13, 14, 15}.
        let g = Groups::new(15, 3).unwrap();
        assert_eq!(g.interior_count(), 4);
        assert_eq!(g.n_pad(), 15);
        assert_eq!(g.dummies(), 0);
        assert_eq!(g.g(0), 1..=4);
        assert_eq!(g.g(1), 5..=8);
        assert_eq!(g.g(2), 9..=12);
        assert_eq!(g.g(3), 13..=15);
    }

    #[test]
    fn padding_rounds_up_to_multiple_of_d() {
        let g = Groups::new(14, 3).unwrap();
        assert_eq!(g.n_pad(), 15);
        assert_eq!(g.dummies(), 1);
        assert!(g.is_dummy(15));
        assert!(!g.is_dummy(14));
        // Dummies always land in G_d.
        assert!(g.g(3).contains(&15));
    }

    #[test]
    fn g_d_always_has_exactly_d_ids() {
        for n in 1..60 {
            for d in 1..8 {
                let g = Groups::new(n, d).unwrap();
                let gd = g.g(d);
                assert_eq!((*gd.end() - *gd.start() + 1) as usize, d, "N={n}, d={d}");
            }
        }
    }

    #[test]
    fn groups_partition_the_padded_ids() {
        for (n, d) in [(15, 3), (17, 4), (100, 5), (7, 2), (1, 3), (2, 3)] {
            let g = Groups::new(n, d).unwrap();
            let mut seen = vec![false; g.n_pad() + 1];
            for i in 0..=d {
                for id in g.g(i) {
                    assert!(!seen[id as usize], "id {id} in two groups (N={n}, d={d})");
                    seen[id as usize] = true;
                    assert_eq!(g.group_of(id), i, "group_of({id}) N={n} d={d}");
                }
            }
            assert!(
                seen[1..].iter().all(|&s| s),
                "partition incomplete N={n} d={d}"
            );
        }
    }

    #[test]
    fn tiny_populations_have_no_interior() {
        // N ≤ d ⇒ every node is a direct child of S.
        let g = Groups::new(2, 3).unwrap();
        assert_eq!(g.interior_count(), 0);
        assert_eq!(g.n_pad(), 3);
        assert_eq!(g.group_of(1), 3);
        assert_eq!(g.g(0).count(), 0);
    }

    #[test]
    fn parity_cycles_mod_d() {
        let g = Groups::new(15, 3).unwrap();
        assert_eq!(g.parity(1), 0);
        assert_eq!(g.parity(2), 1);
        assert_eq!(g.parity(3), 2);
        assert_eq!(g.parity(4), 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Groups::new(0, 3).is_err());
        assert!(Groups::new(5, 0).is_err());
    }

    #[test]
    fn degenerate_degree_one_is_a_chain_partition() {
        let g = Groups::new(5, 1).unwrap();
        assert_eq!(g.interior_count(), 4);
        assert_eq!(g.g(0), 1..=4);
        assert_eq!(g.g(1), 5..=5);
    }
}
