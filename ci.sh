#!/usr/bin/env bash
# Offline CI gate for the clustream workspace. Everything here must pass
# before merging; no network access is required (all external-looking
# dependencies resolve to the in-tree `shims/` crates via path deps, and
# Cargo.lock is committed).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== fmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --workspace --release --offline

echo "== test =="
cargo test --workspace -q --offline

echo "== differential oracle =="
cargo test -q --test differential --offline

echo "== slot/DES differential oracle =="
cargo test -q --test des_differential --offline

echo "== DES smoke (slot-faithful equivalence, checked mode) =="
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme multitree --n 30 --d 3 --runtime des-checked
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme hypercube --n 25 --runtime des-checked
cargo run -q --release --offline -p clustream-cli --bin clustream -- \
    simulate --scheme chain --n 12 --runtime des \
    --latency jitter --jitter 1.5 --uplink serialized --des-seed 1

echo "CI gate passed."
