//! Per-node schedule calendars: the paper's Figure 2 as data.
//!
//! In steady state the multi-tree schedule is periodic with period `d`:
//! each node receives exactly one packet per slot (one tree per residue
//! class) and, if interior, sends to one child per slot. A
//! [`NodeCalendar`] captures one period of that behaviour — which tree and
//! peer a node receives from and sends to in each residue class — plus the
//! first occurrence slot of each entry.

use crate::schedule::MultiTreeScheme;
use crate::tree::DisjointTrees;

/// One receive entry: where a node's packets of residue class `r` come
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvEntry {
    /// Slot residue `r ∈ 0..d`: receipts happen in slots `≡ r (mod d)`.
    pub residue: usize,
    /// Tree carrying these packets.
    pub tree: usize,
    /// Sender (`0` = the source).
    pub from: u32,
    /// First slot this entry fires.
    pub first_slot: u64,
    /// Packets carried: `tree, tree + d, tree + 2d, …`.
    pub first_packet: u64,
}

/// One send entry: which child a node serves in residue class `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendEntry {
    /// Slot residue `r ∈ 0..d`.
    pub residue: usize,
    /// Tree in which this node is interior.
    pub tree: usize,
    /// The child served (real nodes only; dummy children are skipped).
    pub to: u32,
    /// First slot this entry fires.
    pub first_slot: u64,
}

/// A node's steady-state schedule over one period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCalendar {
    /// The node.
    pub node: u32,
    /// Exactly `d` receive entries, one per residue class.
    pub receives: Vec<RecvEntry>,
    /// Up to `d` send entries (empty for all-leaf nodes).
    pub sends: Vec<SendEntry>,
}

impl NodeCalendar {
    /// Render in the style of Figure 2.
    pub fn render(&self) -> String {
        let mut out = format!("node {}\n", self.node);
        for r in &self.receives {
            let from = if r.from == 0 {
                "S".into()
            } else {
                format!("node {}", r.from)
            };
            out.push_str(&format!(
                "  recv  t≡{} (mod {}): packets {}+{}m of T_{} from {from}, first at t{}\n",
                r.residue,
                self.receives.len(),
                r.first_packet,
                self.receives.len(),
                r.tree,
                r.first_slot
            ));
        }
        for s in &self.sends {
            out.push_str(&format!(
                "  send  t≡{} (mod {}): T_{} child node {}, first at t{}\n",
                s.residue,
                self.receives.len(),
                s.tree,
                s.to,
                s.first_slot
            ));
        }
        out
    }
}

/// Build the calendar of `node` under `scheme`.
pub fn node_calendar(scheme: &MultiTreeScheme, node: u32) -> NodeCalendar {
    let forest: &DisjointTrees = scheme.forest();
    let d = forest.d();

    let mut receives: Vec<RecvEntry> = (0..d)
        .map(|k| {
            let pos = forest.position(k, node);
            let parent = forest.parent_pos(pos);
            let first = scheme.recv_slot_at(k, pos, 0);
            RecvEntry {
                residue: (first % d as u64) as usize,
                tree: k,
                from: if parent == 0 {
                    0
                } else {
                    forest.node_at(k, parent)
                },
                first_slot: first,
                first_packet: k as u64,
            }
        })
        .collect();
    receives.sort_by_key(|e| e.residue);

    let mut sends: Vec<SendEntry> = forest
        .interior_tree_of(node)
        .map(|k| {
            let pos = forest.position(k, node);
            forest
                .children_pos(pos)
                .filter(|&c| forest.node_at(k, c) as usize <= forest.n())
                .map(|c| {
                    let first = scheme.recv_slot_at(k, c, 0);
                    SendEntry {
                        residue: (first % d as u64) as usize,
                        tree: k,
                        to: forest.node_at(k, c),
                        first_slot: first,
                    }
                })
                .collect()
        })
        .unwrap_or_default();
    sends.sort_by_key(|e| e.residue);

    NodeCalendar {
        node,
        receives,
        sends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_forest;
    use crate::schedule::StreamMode;
    use clustream_core::{NodeId, PacketId};
    use clustream_sim::{SimConfig, Simulator};

    fn calendar_of(node: u32) -> NodeCalendar {
        let f = greedy_forest(15, 3).unwrap();
        let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        node_calendar(&s, node)
    }

    /// Figure 2: node 6 receives from S (T_1), node 1 (T_0) and node 11
    /// (T_2), and sends to nodes 2, 9, 4 in T_1.
    #[test]
    fn figure2_node6_calendar() {
        let c = calendar_of(6);
        let from: Vec<u32> = c.receives.iter().map(|r| r.from).collect();
        assert!(from.contains(&0) && from.contains(&1) && from.contains(&11));
        let to: Vec<u32> = c.sends.iter().map(|s| s.to).collect();
        assert_eq!(
            {
                let mut t = to.clone();
                t.sort_unstable();
                t
            },
            vec![2, 4, 9]
        );
        // One receive per residue class.
        let residues: Vec<usize> = c.receives.iter().map(|r| r.residue).collect();
        assert_eq!(residues, vec![0, 1, 2]);
        // At most one send per residue class.
        let mut sr: Vec<usize> = c.sends.iter().map(|s| s.residue).collect();
        sr.dedup();
        assert_eq!(sr.len(), c.sends.len());
    }

    #[test]
    fn all_leaf_nodes_have_empty_sends() {
        let c = calendar_of(14);
        assert!(c.sends.is_empty());
        assert_eq!(c.receives.len(), 3);
    }

    #[test]
    fn calendar_agrees_with_traced_simulation() {
        let f = greedy_forest(15, 3).unwrap();
        let scheme = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let c = node_calendar(&scheme, 6);
        let mut live = scheme.clone();
        let r = Simulator::run(&mut live, &SimConfig::until_complete(24, 10_000).traced()).unwrap();
        let trace = r.trace.unwrap();
        // Every traced receipt of node 6 lands in a residue class claimed
        // by the calendar, coming from the claimed peer.
        for ev in trace.received_by(NodeId(6)) {
            let entry = c
                .receives
                .iter()
                .find(|e| e.residue == (ev.slot % 3) as usize)
                .expect("claimed residue");
            assert_eq!(entry.from, ev.from, "slot {}", ev.slot);
            assert_eq!(ev.packet % 3, entry.tree as u64);
        }
        // And the first receive slots match exactly.
        for e in &c.receives {
            let first = trace
                .received_by(NodeId(6))
                .filter(|ev| ev.packet == e.first_packet)
                .map(|ev| ev.slot)
                .min()
                .unwrap();
            assert_eq!(first, e.first_slot, "tree {}", e.tree);
        }
        // Sends match too.
        for ev in trace.sent_by(NodeId(6)) {
            assert!(
                c.sends.iter().any(|s| s.to == ev.to),
                "unexpected peer {}",
                ev.to
            );
        }
    }

    #[test]
    fn render_is_human_readable() {
        let c = calendar_of(6);
        let text = c.render();
        assert!(text.contains("node 6"));
        assert!(text.contains("from S"));
        assert!(text.contains("send"));
    }

    #[test]
    fn path_of_packet_through_forest_matches_positions() {
        // Sanity: the trace path of packet 0 to the deepest node of T_0
        // follows T_0 ancestry.
        let f = greedy_forest(15, 3).unwrap();
        let deepest = f.node_at(0, 15);
        let parent = f.node_at(0, f.parent_pos(15));
        let gp = f.node_at(0, f.parent_pos(f.parent_pos(15)));
        let mut live = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let r = Simulator::run(&mut live, &SimConfig::until_complete(6, 10_000).traced()).unwrap();
        let path = r
            .trace
            .unwrap()
            .path_to(NodeId(deepest), PacketId(0))
            .unwrap();
        assert_eq!(path, vec![0, gp, parent, deepest]);
    }
}
