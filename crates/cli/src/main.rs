//! The `clustream` binary.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match clustream_cli::run(&argv) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
