//! Synchronous time-slotted simulator for `clustream` overlays.
//!
//! The paper models a cluster as a logically fully-connected graph in which,
//! per time slot, every node can transmit one packet and receive one packet
//! (super nodes and the source have elevated *send* capacity). This crate
//! executes any [`clustream_core::Scheme`] under that model:
//!
//! * every transmission is validated (sender holds the packet, send
//!   capacities respected, at most one arrival per node per slot);
//! * arrival slots of the first `track_packets` packets are recorded per
//!   node;
//! * from the arrival table, [`playback`] derives each node's minimal safe
//!   playback start `a(i)`, its buffer high-water mark, and hiccup-freedom;
//! * [`metrics`] accumulates neighbor sets and traffic counters.
//!
//! The simulator is fully deterministic: same scheme, same config, same
//! result, bit for bit.

#![warn(missing_docs)]

pub mod engine;
pub mod faults;
pub mod metrics;
pub mod playback;
pub mod trace;

pub use engine::{RunResult, SimConfig, Simulator};
pub use faults::{FaultPlan, LossReport, LossyPlayback};
pub use playback::{ArrivalTable, PlaybackAnalysis};
pub use trace::{EventTrace, TraceEvent};
