//! Criterion bench for the Figure 4 pipeline: forest construction plus
//! closed-form delay profiling across degrees.

use clustream_multitree::{greedy_forest, DelayProfile, MultiTreeScheme, StreamMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig4_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_point");
    for &(n, d) in &[
        (500usize, 2usize),
        (500, 3),
        (2000, 2),
        (2000, 3),
        (2000, 5),
    ] {
        g.bench_with_input(
            BenchmarkId::new(format!("d{d}"), n),
            &(n, d),
            |b, &(n, d)| {
                b.iter(|| {
                    let forest = greedy_forest(n, d).unwrap();
                    let scheme = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
                    DelayProfile::compute(&scheme).unwrap().max_delay()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig4_point);
criterion_main!(benches);
