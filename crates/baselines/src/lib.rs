//! Baseline overlays from the paper's introduction (§1).
//!
//! Two strawmen motivate the multi-tree and hypercube constructions:
//!
//! * [`ChainScheme`] — receivers in a list, each forwarding to the next.
//!   Minimal buffering, unit upload, but `O(N)` playback delay —
//!   "unacceptable for all but a few nodes".
//! * [`SingleTreeScheme`] — one `d`-ary tree rooted at the source. Delay
//!   is `O(log_d N)` and buffers are constant, **but** every interior node
//!   must upload `d` packets per slot (`d×` the streaming rate), while the
//!   ~`(1 − 1/d)·N` leaf nodes contribute nothing — the resource
//!   inefficiency the interior-disjoint multi-trees eliminate.
//!   [`SingleTreeScheme::unit_capacity`] builds the same tree under the
//!   paper's unit-upload model, demonstrating that it *cannot sustain* the
//!   stream (children receive only every `d`-th slot's worth of data).

#![warn(missing_docs)]

pub mod chain;
pub mod single_tree;

pub use chain::ChainScheme;
pub use single_tree::SingleTreeScheme;
