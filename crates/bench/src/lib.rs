//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `fig*`/`table*`/`thm*`/`prop*` function reproduces one display
//! item (see DESIGN.md §5 for the index); the `src/bin/*` binaries are
//! thin wrappers that print the rows, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison. Sweeps run in parallel with rayon.

#![warn(missing_docs)]
// Experiment row structs carry self-describing measurement fields; field-level
// docs would only repeat the names.
#![allow(missing_docs)]

pub mod experiments;
pub mod scenarios;
pub mod suites;
pub mod table;
pub mod timing;

pub use experiments::*;
pub use table::render_table;
