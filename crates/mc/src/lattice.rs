//! The exhaustive small-world driver.
//!
//! Enumerates *every* genome in a bounded lattice — all `d ∈ {2,3,4}`,
//! `N ≤ 64`, both constructions, all four scheme families, and a small
//! canonical set of crash/loss plans — and checks the full invariant
//! registry on the reference, fast, mega, heap-DES and wheel-DES
//! engines, including cross-engine field equality. Degree is skipped for the chain (which ignores it) and
//! construction for everything but the multi-tree, so no configuration is
//! checked twice.
//!
//! A companion driver sweeps the recovery layer: canonical membership
//! event sequences against [`SelfHealingMultiTree`], checking that every
//! repair preserves the interior-disjoint forest shape, keeps surviving
//! ids stable, and displaces at most `d²` nodes per incremental op.

use crate::checker::check_genome;
use crate::genome::{ConstructionChoice, Family, Genome};
use crate::invariant::Violation;
use clustream_core::{MembershipEvent, NodeId, Scheme, Slot, StateView};
use clustream_multitree::StreamMode;
use clustream_recovery::SelfHealingMultiTree;
use clustream_sim::FaultPlan;

/// Lattice shape. [`LatticeOptions::default`] is the issue's full lattice.
#[derive(Debug, Clone)]
pub struct LatticeOptions {
    /// Largest population (inclusive).
    pub max_n: usize,
    /// Degrees / source splits to sweep.
    pub degrees: Vec<usize>,
    /// Also run the canonical fault plans (not just the clean run).
    pub fault_plans: bool,
}

impl Default for LatticeOptions {
    fn default() -> Self {
        LatticeOptions {
            max_n: 64,
            degrees: vec![2, 3, 4],
            fault_plans: true,
        }
    }
}

/// Outcome of one exhaustive sweep.
#[derive(Debug, Clone, Default)]
pub struct LatticeReport {
    /// Genomes enumerated (excluding skipped out-of-domain points).
    pub genomes: usize,
    /// Engine runs executed (5 per genome).
    pub runs: usize,
    /// Out-of-domain lattice points (scheme not buildable there).
    pub skipped: usize,
    /// Every violation, with the genome that produced it.
    pub violations: Vec<(Genome, Violation)>,
}

/// The canonical fault plans: clean, seeded 25% link loss, a fail-silent
/// mid-population crash, and a fail-stop mid-population crash.
pub fn canonical_fault_plans(n: usize) -> Vec<Option<FaultPlan>> {
    let mid = NodeId((n / 2).max(1) as u32);
    vec![
        None,
        Some(FaultPlan::loss(0.25, 7)),
        Some(FaultPlan::crash(mid, 3)),
        Some(FaultPlan::fail_stop(mid, 3)),
    ]
}

/// Every genome in the lattice, without redundant axes.
pub fn enumerate(opts: &LatticeOptions) -> Vec<Genome> {
    let mut genomes = Vec::new();
    for family in Family::ALL {
        let degrees: &[usize] = match family {
            Family::Chain => &opts.degrees[..1], // degree is ignored
            _ => &opts.degrees,
        };
        for &d in degrees {
            let constructions: &[ConstructionChoice] = match family {
                Family::MultiTree => &ConstructionChoice::ALL,
                _ => &ConstructionChoice::ALL[..1],
            };
            for &construction in constructions {
                for n in 1..=opts.max_n {
                    let base = Genome::clean(family, n, d, construction);
                    if opts.fault_plans {
                        for plan in canonical_fault_plans(n) {
                            let mut g = base.clone();
                            g.faults = plan;
                            genomes.push(g);
                        }
                    } else {
                        genomes.push(base);
                    }
                }
            }
        }
    }
    genomes
}

/// Run the exhaustive sweep: every lattice genome through every engine
/// and the full registry.
pub fn exhaustive(opts: &LatticeOptions) -> LatticeReport {
    let mut report = LatticeReport::default();
    for g in enumerate(opts) {
        let rep = check_genome(&g);
        if rep.skipped {
            report.skipped += 1;
            continue;
        }
        report.genomes += 1;
        report.runs += rep.runs;
        for v in rep.violations {
            report.violations.push((g.clone(), v));
        }
    }
    report
}

/// Outcome of the recovery sweep.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// `(n, d, construction, sequence)` cases exercised.
    pub cases: usize,
    /// Membership events applied.
    pub events: usize,
    /// Violations, labelled with a case description.
    pub violations: Vec<(String, Violation)>,
}

/// A view that holds nothing — membership repairs are topology-only, so
/// the schedule probe does not need live engine state.
struct NoView;

impl StateView for NoView {
    fn holds(&self, _: NodeId, _: clustream_core::PacketId) -> bool {
        false
    }
    fn newest(&self, _: NodeId) -> Option<clustream_core::PacketId> {
        None
    }
    fn slot(&self) -> Slot {
        Slot(0)
    }
}

fn recovery_violation(case: &str, invariant: &str, detail: String) -> (String, Violation) {
    (
        case.to_string(),
        Violation {
            invariant: invariant.to_string(),
            engine: "recovery".to_string(),
            detail,
        },
    )
}

/// Canonical membership sequences: a single failure, a failure that
/// rejoins, and two failures with one rejoin.
fn canonical_event_sequences(n: usize) -> Vec<Vec<(NodeId, MembershipEvent)>> {
    let a = NodeId(1);
    let b = NodeId((n / 2).max(1) as u32);
    let mut seqs = vec![
        vec![(b, MembershipEvent::Failed)],
        vec![(b, MembershipEvent::Failed), (b, MembershipEvent::Rejoined)],
    ];
    if a != b {
        seqs.push(vec![
            (a, MembershipEvent::Failed),
            (b, MembershipEvent::Failed),
            (a, MembershipEvent::Rejoined),
        ]);
    }
    seqs
}

/// Apply one event sequence, checking the recovery invariants after every
/// event: forest shape valid, displacement ≤ d² for non-resizing ops,
/// failed ids absent from (and surviving ids stable in) the schedule.
fn check_recovery_case(
    n: usize,
    d: usize,
    construction: ConstructionChoice,
    seq: &[(NodeId, MembershipEvent)],
    case: &str,
    out: &mut Vec<(String, Violation)>,
) -> usize {
    let Ok(mut scheme) =
        SelfHealingMultiTree::new(n, d, StreamMode::PreRecorded, construction.construction())
    else {
        return 0;
    };
    let mut events = 0;
    let mut dead: Vec<NodeId> = Vec::new();
    for &(node, event) in seq {
        let pad_before = scheme.forest().n_pad();
        let outcome = scheme.membership_event(node, event);
        events += 1;
        match event {
            MembershipEvent::Failed => dead.push(node),
            MembershipEvent::Rejoined => dead.retain(|&v| v != node),
        }
        if let Err(e) = scheme.forest().validate() {
            out.push(recovery_violation(
                case,
                "RepairShape",
                format!("forest invalid after {event:?} of {node}: {e}"),
            ));
            return events;
        }
        if let Some(outcome) = outcome {
            // The paper's d² bound applies to incremental repairs; a
            // forest resize (±d positions) legitimately relabels more.
            let resized = scheme.forest().n_pad() != pad_before;
            if !resized && outcome.displaced.len() > d * d {
                out.push(recovery_violation(
                    case,
                    "DisplacementBound",
                    format!(
                        "{} displaced > d² = {} after {event:?} of {node}",
                        outcome.displaced.len(),
                        d * d
                    ),
                ));
            }
        }
        // Id stability: dead nodes must vanish from the schedule, live
        // ones keep their original ids (every endpoint stays in range).
        let mut txs = Vec::new();
        for t in 0..(3 * d as u64) {
            txs.clear();
            scheme.transmissions(Slot(t), &NoView, &mut txs);
            for tx in &txs {
                if dead.contains(&tx.from) || dead.contains(&tx.to) {
                    out.push(recovery_violation(
                        case,
                        "StableIds",
                        format!("slot {t}: dead node scheduled ({} → {})", tx.from, tx.to),
                    ));
                    return events;
                }
                if tx.to.0 as usize > n || tx.from.0 as usize > n {
                    out.push(recovery_violation(
                        case,
                        "StableIds",
                        format!("slot {t}: id outside 0..={n} ({} → {})", tx.from, tx.to),
                    ));
                    return events;
                }
            }
        }
    }
    events
}

/// Run the recovery sweep over the lattice's multi-tree points.
pub fn exhaustive_recovery(opts: &LatticeOptions) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    for &d in &opts.degrees {
        for construction in ConstructionChoice::ALL {
            for n in 2..=opts.max_n {
                for (i, seq) in canonical_event_sequences(n).iter().enumerate() {
                    let case = format!("n={n} d={d} {construction:?} seq#{i}");
                    report.cases += 1;
                    report.events +=
                        check_recovery_case(n, d, construction, seq, &case, &mut report.violations);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_covers_every_axis_once() {
        let opts = LatticeOptions {
            max_n: 8,
            degrees: vec![2, 3],
            fault_plans: false,
        };
        let genomes = enumerate(&opts);
        // multitree: 2 d × 2 constructions × 8 n = 32; hypercube: 2 × 8;
        // chain: 1 × 8; singletree: 2 × 8.
        assert_eq!(genomes.len(), 32 + 16 + 8 + 16);
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for g in &genomes {
            assert!(seen.insert(g.to_json()), "duplicate genome {}", g.to_json());
        }
    }

    #[test]
    fn tiny_lattice_is_clean() {
        let opts = LatticeOptions {
            max_n: 10,
            degrees: vec![2],
            fault_plans: true,
        };
        let report = exhaustive(&opts);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report
                .violations
                .iter()
                .map(|(g, v)| format!("{} ⇒ {v}", g.to_json()))
                .collect::<Vec<_>>()
        );
        assert!(report.genomes > 0);
        assert_eq!(report.runs, 5 * report.genomes);
    }

    #[test]
    fn tiny_recovery_lattice_is_clean() {
        let opts = LatticeOptions {
            max_n: 12,
            degrees: vec![2, 3],
            fault_plans: false,
        };
        let report = exhaustive_recovery(&opts);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.cases > 0 && report.events > 0);
    }
}
