//! The chain baseline: `S → 1 → 2 → … → N`.

use clustream_core::{
    NodeId, PacketId, SchedulePeriod, Scheme, Slot, StateView, Transmission, SOURCE,
};

/// Receivers chained in a list; each node forwards the packet it received
/// in the previous slot. Buffer stays `O(1)`, every node talks to ≤ 2
/// neighbors, but node `i` waits `i` slots before playback.
#[derive(Debug, Clone)]
pub struct ChainScheme {
    n: usize,
}

impl ChainScheme {
    /// A chain of `n ≥ 1` receivers.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one receiver");
        ChainScheme { n }
    }

    /// Exact playback delay of node `i`: `i` slots.
    pub fn predicted_delay(&self, i: u32) -> u64 {
        i as u64
    }
}

impl Scheme for ChainScheme {
    fn name(&self) -> String {
        format!("chain(N={})", self.n)
    }

    fn num_receivers(&self) -> usize {
        self.n
    }

    fn availability(&self) -> clustream_core::Availability {
        clustream_core::Availability::Live
    }

    fn schedule_period(&self) -> Option<SchedulePeriod> {
        // From slot `n − 1` on, every link `i → i + 1` fires each slot and
        // packet ids advance by one per slot.
        Some(SchedulePeriod {
            warmup: self.n as u64,
            period: 1,
        })
    }

    fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
        let t = slot.t();
        // S emits packet t; node i relays packet t − i (received last slot).
        out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
        for i in 1..self.n as u64 {
            if t >= i {
                out.push(Transmission::local(
                    NodeId(i as u32),
                    NodeId(i as u32 + 1),
                    PacketId(t - i),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_sim::{SimConfig, Simulator};

    #[test]
    fn delay_is_linear_buffer_constant() {
        let mut s = ChainScheme::new(12);
        let r = Simulator::run(&mut s, &SimConfig::until_complete(16, 1000)).unwrap();
        for q in &r.qos.nodes {
            assert_eq!(q.playback_delay, s.predicted_delay(q.node.0));
            assert!(q.max_buffer <= 2);
            assert!(q.neighbors <= 2);
        }
        assert_eq!(r.qos.max_delay(), 12);
        assert_eq!(r.duplicate_deliveries, 0);
    }

    #[test]
    fn single_receiver_chain() {
        let mut s = ChainScheme::new(1);
        let r = Simulator::run(&mut s, &SimConfig::until_complete(4, 100)).unwrap();
        assert_eq!(r.qos.max_delay(), 1);
        assert_eq!(r.qos.node(NodeId(1)).unwrap().neighbors, 1);
    }
}
