//! Exact per-node playback delay and buffer occupancy (closed form).
//!
//! Rather than running the slot simulator, this module evaluates the
//! arrival recursion of [`crate::schedule`] directly and feeds it through
//! the same playback analysis as the simulator
//! ([`clustream_sim::ArrivalTable`]), so the two paths are comparable
//! packet-for-packet — the tests in this crate assert they agree exactly.
//! The closed form is what makes the Figure 4 sweep over `N ≤ 2000`,
//! `d ∈ {2..5}` cheap.

use crate::schedule::MultiTreeScheme;
use clustream_core::{CoreError, NodeId, PacketId, QosReport, Scheme, Slot};
use clustream_sim::ArrivalTable;

/// Closed-form delay/buffer profile of a multi-tree schedule.
#[derive(Debug, Clone)]
pub struct DelayProfile {
    qos: QosReport,
    table: ArrivalTable,
}

impl DelayProfile {
    /// Evaluate the schedule for all real receivers.
    ///
    /// The arrival pattern is exactly periodic (packet `j + d` arrives `d`
    /// slots after packet `j`), so a window of
    /// `max-first-arrival + 3d` packets provably contains each node's
    /// buffer high-water mark.
    pub fn compute(scheme: &MultiTreeScheme) -> Result<Self, CoreError> {
        let forest = scheme.forest();
        let d = forest.d();
        let n = forest.n();

        // Window size: cover the slowest first arrival plus padding.
        let max_first = (0..d)
            .flat_map(|k| (1..=forest.n_pad()).map(move |p| (k, p)))
            .map(|(k, p)| scheme.recv_slot_at(k, p, 0))
            .max()
            .unwrap_or(0);
        let track = (max_first + 3 * d as u64 + 1).div_ceil(d as u64) * d as u64;

        let mut table = ArrivalTable::new(n + 1, track);
        for node in 1..=n as u32 {
            for k in 0..d {
                let pos = forest.position(k, node);
                let mut m = 0u64;
                loop {
                    let packet = k as u64 + m * d as u64;
                    if packet >= track {
                        break;
                    }
                    // usable = receive slot + 1 (simulator convention)
                    table.record(
                        NodeId(node),
                        PacketId(packet),
                        Slot(scheme.recv_slot_at(k, pos, m) + 1),
                    );
                    m += 1;
                }
            }
        }

        let mut nodes = Vec::with_capacity(n);
        for node in 1..=n as u32 {
            let pb = table.analyze(NodeId(node))?;
            nodes.push(clustream_core::NodeQos {
                node: NodeId(node),
                playback_delay: pb.playback_delay,
                max_buffer: pb.max_buffer,
                // Closed form doesn't count traffic; the paper's structural
                // bound is ≤ 2d neighbors (d parents + d children).
                out_neighbors: 0,
                in_neighbors: 0,
                neighbors: 0,
            });
        }
        Ok(DelayProfile {
            qos: QosReport::new(scheme.name(), nodes),
            table,
        })
    }

    /// Aggregate QoS (delays and buffers; neighbor fields are zero here —
    /// use the simulator for measured neighbor counts).
    pub fn qos(&self) -> &QosReport {
        &self.qos
    }

    /// The synthesized arrival table (for cross-validation).
    pub fn arrivals(&self) -> &ArrivalTable {
        &self.table
    }

    /// Worst-case playback delay `T = max_i a(i)`.
    pub fn max_delay(&self) -> u64 {
        self.qos.max_delay()
    }

    /// Average playback delay `Σ a(i) / N`.
    pub fn avg_delay(&self) -> f64 {
        self.qos.avg_delay()
    }

    /// Worst-case buffer occupancy in packets.
    pub fn max_buffer(&self) -> usize {
        self.qos.max_buffer()
    }
}

/// Distribution of per-tree delays of tree `k`'s **leaf** nodes, keyed by
/// inter-layer delay sum (the appendix's `A(i, k)` for `i ∈ L_k`,
/// expressed in 1-based slots like the paper's `A(1,1) = 1`).
///
/// Lemma 1 (appendix): in a complete forest, the number of leaves with
/// delay `j` equals the number with delay `(d+1)(h−1) − j` — the
/// inter-layer delays `X_ℓ ∈ {1..d}` are symmetric around `(d+1)/2`.
pub fn leaf_delay_distribution(
    scheme: &MultiTreeScheme,
    k: usize,
) -> std::collections::BTreeMap<u64, usize> {
    let forest = scheme.forest();
    let mut map = std::collections::BTreeMap::new();
    for pos in forest.interior_count() + 1..=forest.n_pad() {
        // 1-based delay of the tree's first packet (every tree injects its
        // first packet to child r during slot r, so the origin is slot 0
        // for all k).
        let a = scheme.recv_slot_at(k, pos, 0) + 1;
        *map.entry(a).or_insert(0usize) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_forest;
    use crate::schedule::StreamMode;
    use crate::structured::structured_forest;
    use clustream_sim::{SimConfig, Simulator};

    #[test]
    fn paper_node1_needs_buffer_three() {
        // §2.3: in the Figure 3 multi-tree, node 1 receives packets 0, 1, 2
        // in slots 0, 2, 1 ⇒ buffer of 3 suffices.
        let f = structured_forest(15, 3).unwrap();
        let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        assert_eq!(s.first_recv(0, 1), 0);
        assert_eq!(s.first_recv(1, 1), 2);
        assert_eq!(s.first_recv(2, 1), 1);
        let p = DelayProfile::compute(&s).unwrap();
        let q = p.qos().node(NodeId(1)).unwrap();
        assert_eq!(q.max_buffer, 3);
        assert_eq!(q.playback_delay, 2); // a(1) = max(0−0, 2−1, 1−2) + 1
    }

    #[test]
    fn closed_form_agrees_with_simulator() {
        for &(n, d) in &[(15usize, 3usize), (31, 2), (12, 4), (6, 2), (45, 5)] {
            for &structured in &[true, false] {
                let f = if structured {
                    structured_forest(n, d).unwrap()
                } else {
                    greedy_forest(n, d).unwrap()
                };
                let mut s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
                let profile = DelayProfile::compute(&s).unwrap();
                let track = profile.arrivals().track_packets();
                let r = Simulator::run(&mut s, &SimConfig::until_complete(track, 100_000)).unwrap();
                for node in r.qos.nodes.iter() {
                    let c = profile.qos().node(node.node).unwrap();
                    assert_eq!(
                        node.playback_delay, c.playback_delay,
                        "delay mismatch N={n} d={d} node {}",
                        node.node
                    );
                    assert_eq!(
                        node.max_buffer, c.max_buffer,
                        "buffer mismatch N={n} d={d} node {}",
                        node.node
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_delay_within_theorem2_bound() {
        // T ≤ h·d (Theorem 2), h = tree height of the padded forest.
        for n in 1..=64 {
            for d in 2..=5 {
                let f = greedy_forest(n, d).unwrap();
                let h = f.height() as u64;
                let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
                let p = DelayProfile::compute(&s).unwrap();
                assert!(
                    p.max_delay() <= h * d as u64,
                    "N={n} d={d}: delay {} > h·d = {}",
                    p.max_delay(),
                    h * d as u64
                );
            }
        }
    }

    #[test]
    fn buffer_bound_hd_holds() {
        // §2.3: "a buffer of size h·d is sufficient at every node".
        for &(n, d) in &[(15usize, 3usize), (63, 2), (40, 4), (100, 3)] {
            let f = greedy_forest(n, d).unwrap();
            let h = f.height();
            let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
            let p = DelayProfile::compute(&s).unwrap();
            assert!(
                p.max_buffer() <= h * d + 1,
                "N={n} d={d}: buffer {} > h·d = {}",
                p.max_buffer(),
                h * d
            );
        }
    }

    #[test]
    fn best_node_starts_within_d_slots() {
        // A node's delay is governed by its *worst* tree position, but the
        // luckiest node (near the root in every tree) starts within d
        // slots: node 1 in the Figure 3 forest has a(1) = 2 ≤ d = 3.
        let f = structured_forest(15, 3).unwrap();
        let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let p = DelayProfile::compute(&s).unwrap();
        let min = p
            .qos()
            .nodes
            .iter()
            .map(|q| q.playback_delay)
            .min()
            .unwrap();
        assert!(min <= 3, "min delay {min}");
        // And nobody can start before slot 1.
        assert!(p.qos().nodes.iter().all(|q| q.playback_delay >= 1));
    }

    /// Lemma 1 (appendix): the leaf-delay distribution of every tree is
    /// symmetric — as many leaves at delay `j` as at `min+max−j`.
    #[test]
    fn lemma1_leaf_delay_symmetry() {
        use super::leaf_delay_distribution;
        for (n, d) in [(12usize, 3usize), (39, 3), (14, 2), (30, 2), (20, 4)] {
            let f = greedy_forest(n, d).unwrap();
            let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
            for k in 0..d {
                let dist = leaf_delay_distribution(&s, k);
                let lo = *dist.keys().next().unwrap();
                let hi = *dist.keys().last().unwrap();
                for (&j, &count) in &dist {
                    let mirror = lo + hi - j;
                    assert_eq!(
                        dist.get(&mirror).copied().unwrap_or(0),
                        count,
                        "N={n} d={d} tree {k}: delay {j} has {count} leaves, \
                         mirror {mirror} differs"
                    );
                }
            }
        }
    }

    /// The paper's concrete anchors from the Theorem 3 proof:
    /// `A(1, T_0) = 1` and `A(d, T_0) = d` (1-based, tree origin).
    #[test]
    fn theorem3_anchor_values() {
        let f = greedy_forest(15, 3).unwrap();
        let s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        assert_eq!(s.first_recv(0, 1) + 1, 1); // A(1, T_0) = 1
        assert_eq!(s.first_recv(0, 3) + 1, 3); // A(d, T_0) = d
    }

    #[test]
    fn live_prebuffered_adds_exactly_d_delay() {
        let f = greedy_forest(20, 4).unwrap();
        let pre = DelayProfile::compute(&MultiTreeScheme::new(f.clone(), StreamMode::PreRecorded))
            .unwrap();
        let live =
            DelayProfile::compute(&MultiTreeScheme::new(f, StreamMode::LivePrebuffered)).unwrap();
        for (a, b) in pre.qos().nodes.iter().zip(live.qos().nodes.iter()) {
            assert_eq!(b.playback_delay, a.playback_delay + 4, "node {}", a.node);
        }
    }

    #[test]
    fn pipelined_delay_at_most_prebuffered_plus_d() {
        // Pipelining skews tree k's start by ≤ 2k ≤ 2(d−1); neither live
        // variant dominates in general, but both stay within ~2d of the
        // pre-recorded schedule.
        for &(n, d) in &[(15usize, 3usize), (40, 5), (9, 2)] {
            let f = greedy_forest(n, d).unwrap();
            let pre =
                DelayProfile::compute(&MultiTreeScheme::new(f.clone(), StreamMode::PreRecorded))
                    .unwrap();
            let pip =
                DelayProfile::compute(&MultiTreeScheme::new(f, StreamMode::LivePipelined)).unwrap();
            assert!(pip.max_delay() >= pre.max_delay());
            assert!(
                pip.max_delay() <= pre.max_delay() + 2 * d as u64,
                "N={n} d={d}: {} vs {}",
                pip.max_delay(),
                pre.max_delay()
            );
        }
    }
}
