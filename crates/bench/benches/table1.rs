//! Bench for the Table 1 pipeline: full validated simulation of each
//! scheme at N ≈ 1000, on the reference engine and the fast engine.
//! Plain timing harness (criterion is unavailable offline).

use clustream_baselines::ChainScheme;
use clustream_bench::simulate;
use clustream_bench::timing::bench;
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{greedy_forest, MultiTreeScheme, StreamMode};
use clustream_sim::{FastEngine, SimConfig};

fn main() {
    println!("== table1_scheme_sim (reference engine) ==");
    bench("multitree_d3_n1023", 10, || {
        let forest = greedy_forest(1023, 3).unwrap();
        let mut s = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
        simulate(&mut s, 64).qos.max_delay()
    });
    bench("hypercube_n1023", 10, || {
        let mut s = HypercubeStream::new(1023).unwrap();
        simulate(&mut s, 64).qos.max_delay()
    });
    bench("chain_n1023", 10, || {
        let mut s = ChainScheme::new(1023);
        simulate(&mut s, 8).qos.max_delay()
    });

    println!("== table1_scheme_sim (fast engine, reused arena) ==");
    let mut engine = FastEngine::new();
    bench("multitree_d3_n1023_fast", 10, || {
        let forest = greedy_forest(1023, 3).unwrap();
        let mut s = MultiTreeScheme::new(forest, StreamMode::PreRecorded);
        engine
            .run(&mut s, &SimConfig::until_complete(64, 1_000_000))
            .unwrap()
            .qos
            .max_delay()
    });
    bench("hypercube_n1023_fast", 10, || {
        let mut s = HypercubeStream::new(1023).unwrap();
        engine
            .run(&mut s, &SimConfig::until_complete(64, 1_000_000))
            .unwrap()
            .qos
            .max_delay()
    });
    bench("chain_n1023_fast", 10, || {
        let mut s = ChainScheme::new(1023);
        engine
            .run(&mut s, &SimConfig::until_complete(8, 1_000_000))
            .unwrap()
            .qos
            .max_delay()
    });
}
