//! The model-checker end to end: the invariant registry reproduces the
//! paper's Theorem 2 / buffer-bound assertions, the exhaustive lattice
//! driver is clean over a debug-sized world, a deliberately seeded
//! schedule bug is caught and shrunk to its minimal form, and the
//! committed repro corpus replays green — with the shrinker's output
//! byte-identical in-process, across processes and across builds.

use clustream::mc::{
    bounds_for, check_genome, check_genome_fast, exhaustive, exhaustive_recovery, load_dir,
    replay_dir, shrink, ConstructionChoice, CorpusEntry, Family, Genome, LatticeOptions, Sabotage,
};
use clustream::prelude::{thm2_worst_delay_bound, tree_height};
use std::path::Path;

const CORPUS_DIR: &str = "tests/corpus";

/// The seeded schedule bug: a multi-tree whose source stalls for 9 slots
/// before replaying the correct schedule — collision-free, in-order, same
/// buffers, but every packet lands 9 slots late.
fn seeded_bug() -> Genome {
    let mut g = Genome::clean(Family::MultiTree, 20, 2, ConstructionChoice::Structured);
    g.sabotage = Some(Sabotage::SourceStall(9));
    g
}

fn delay_violating(g: &Genome) -> bool {
    check_genome_fast(g).violates(Some("DelayBound"))
}

/// Theorem 2 and the buffer bound, as the registry encodes them: the
/// closed-form bounds the checker enforces are exactly the paper's
/// `h·d` and `h·d + 1` (ported from tests/properties.rs), and clean
/// multi-tree genomes satisfy them on every engine.
#[test]
fn registry_encodes_theorem2_and_buffer_bounds() {
    for (n, d) in [(1, 2), (7, 2), (30, 3), (64, 4), (100, 2)] {
        for construction in ConstructionChoice::ALL {
            let g = Genome::clean(Family::MultiTree, n, d, construction);
            let b = bounds_for(&g).unwrap();
            assert_eq!(b.delay, thm2_worst_delay_bound(n, d));
            assert_eq!(b.buffer, tree_height(n, d) * d as u64 + 1);
            assert_eq!(b.neighbors, 2 * d as u64);
            let rep = check_genome(&g);
            assert_eq!(rep.runs, 5, "reference, fast, mega, des, des-wheel");
            assert!(
                rep.violations.is_empty(),
                "n={n} d={d} {construction:?}: {:?}",
                rep.violations
            );
        }
    }
}

/// A debug-build-sized slice of the exhaustive lattice (the full `N ≤ 64`
/// sweep runs in release CI): every family, degree, construction and
/// canonical fault plan, on all five engine columns (reference, fast,
/// mega, heap-DES, wheel-DES), zero violations.
#[test]
fn exhaustive_lattice_slice_is_clean() {
    let opts = LatticeOptions {
        max_n: 20,
        ..LatticeOptions::default()
    };
    let report = exhaustive(&opts);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}",
        report
            .violations
            .iter()
            .map(|(g, v)| format!("{} ⇐ {}", v, g.to_json()))
            .collect::<Vec<_>>()
    );
    assert!(
        report.genomes > 500,
        "lattice too small: {}",
        report.genomes
    );
    assert_eq!(report.runs, 5 * report.genomes);
    let recovery = exhaustive_recovery(&opts);
    assert!(
        recovery.violations.is_empty(),
        "recovery violations: {:?}",
        recovery.violations
    );
}

/// The seeded bug is caught by the registry — as a DelayBound violation
/// and nothing else — and shrinks to the minimal configuration that
/// still exhibits it: one receiver, one tree, a one-slot stall.
#[test]
fn seeded_schedule_bug_is_caught_and_shrunk_minimal() {
    let g = seeded_bug();
    let rep = check_genome(&g);
    assert!(rep.violates(Some("DelayBound")), "{:?}", rep.violations);
    assert!(
        rep.violations.iter().all(|v| v.invariant == "DelayBound"),
        "the stall must violate only the delay bound: {:?}",
        rep.violations
    );
    let min = shrink(&g, delay_violating);
    assert!(delay_violating(&min));
    assert_eq!((min.n, min.d), (1, 1), "not minimal: {}", min.to_json());
    assert_eq!(min.sabotage, Some(Sabotage::SourceStall(1)));
    // The minimum also violates on the reference and DES engines.
    assert!(check_genome(&min).violates(Some("DelayBound")));
}

/// Same seed, same violation ⇒ byte-identical minimal counterexample,
/// twice in-process.
#[test]
fn shrink_is_deterministic_in_process() {
    let g = seeded_bug();
    let a = shrink(&g, delay_violating).to_json();
    let b = shrink(&g, delay_violating).to_json();
    assert_eq!(a, b);
}

/// …and across processes: the corpus entry tagged `shrunk-from-seeded-bug`
/// was produced by a different process of a different build, and a fresh
/// shrink must reproduce its genome byte for byte.
#[test]
fn shrink_is_deterministic_across_processes() {
    let entries = load_dir(Path::new(CORPUS_DIR)).unwrap();
    let committed = entries
        .iter()
        .find(|(_, _, e)| e.id == "shrunk-from-seeded-bug")
        .expect("corpus entry `shrunk-from-seeded-bug` is committed")
        .2
        .clone();
    let fresh = shrink(&seeded_bug(), delay_violating);
    assert_eq!(
        fresh.to_json(),
        committed.genome.to_json(),
        "shrink output drifted from the committed corpus bytes"
    );
    assert_eq!(committed.invariant.as_deref(), Some("DelayBound"));
    assert!(committed.expect_violation);
}

/// Every committed corpus entry replays as recorded on all five engine
/// columns (the mega engine and the wheel-backed DES included):
/// violating entries still violate their invariant, clean pins stay
/// clean.
#[test]
fn committed_corpus_replays_green() {
    let report = replay_dir(Path::new(CORPUS_DIR)).unwrap();
    assert!(
        report.failures.is_empty(),
        "corpus replay failures: {:#?}",
        report.failures
    );
    assert!(report.entries >= 5, "corpus shrank to {}", report.entries);
    assert_eq!(report.runs, 5 * report.entries);
}

/// The corpus entries, regenerated. Run `cargo test -q --test invariants
/// -- --ignored regenerate_corpus` after adding a seed entry here; the
/// byte-equality test above keeps the committed file honest.
fn corpus_entries() -> Vec<CorpusEntry> {
    let mut entries = vec![CorpusEntry {
        id: "shrunk-from-seeded-bug".into(),
        note: "SourceStall schedule bug on a multi-tree, shrunk to 1-minimal".into(),
        invariant: Some("DelayBound".into()),
        expect_violation: true,
        genome: shrink(&seeded_bug(), delay_violating),
    }];
    for family in Family::ALL {
        entries.push(CorpusEntry {
            id: format!("clean-{}", family.label()),
            note: "must stay violation-free on every engine".into(),
            invariant: None,
            expect_violation: false,
            genome: Genome::clean(family, 13, 2, ConstructionChoice::Greedy),
        });
    }
    entries
}

/// Regenerates `tests/corpus/seed.jsonl`. Ignored: run explicitly when
/// the entry set changes.
#[test]
#[ignore = "writes tests/corpus/seed.jsonl; run explicitly to regenerate"]
fn regenerate_corpus() {
    let lines: Vec<String> = corpus_entries().iter().map(CorpusEntry::to_json).collect();
    std::fs::create_dir_all(CORPUS_DIR).unwrap();
    std::fs::write(
        Path::new(CORPUS_DIR).join("seed.jsonl"),
        format!("{}\n", lines.join("\n")),
    )
    .unwrap();
}

/// The committed corpus is exactly the regenerated entry set, byte for
/// byte — nothing drifted, nothing was hand-edited out of canonical form.
#[test]
fn committed_corpus_matches_generator() {
    let committed = std::fs::read_to_string(Path::new(CORPUS_DIR).join("seed.jsonl")).unwrap();
    let expected: Vec<String> = corpus_entries().iter().map(CorpusEntry::to_json).collect();
    assert_eq!(committed, format!("{}\n", expected.join("\n")));
}
