//! Scenario plans: scripted flash crowds and correlated regional
//! failures, compiled to replayable [`ChurnTrace`]s.
//!
//! Where [`ChurnTrace::generate`] samples *statistical* churn (Poisson
//! arrivals, exponential lifetimes), a [`ScenarioPlan`] scripts the
//! *shape* of a crowd deterministically: join-rate curves (step, ramp,
//! spike-train) plus correlated regional failures that take out a
//! contiguous id range in one slot. [`ScenarioPlan::compile`] expands
//! the script into ordinary `ChurnTrace` events, so every consumer of
//! churn traces — the slot engines via the crowd scheme, the DES, the
//! differential oracles — replays a scenario bit-identically.
//!
//! The spec grammar follows the `--kill`/`--chaos` family. Entries are
//! comma-separated:
//!
//! ```text
//! KIND:ARGS@START[+DUR][=PARAM]
//!
//! step:1000@20          1000 joins, all in slot 20
//! ramp:1000@20+50       1000 joins spread evenly over slots 20..70
//! spikes:200@10+30=5    5 spikes of 200 joins at slots 10,40,70,100,130
//! fail:3-6@40           members 3..=6 fail together in slot 40
//! ```

use crate::churn::{ChurnAction, ChurnEvent, ChurnTrace, ChurnTraceConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One join-rate curve: when the crowd arrives and how it is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinCurve {
    /// `joins` arrivals, all in slot `at`.
    Step {
        /// Total joins in the step.
        joins: u64,
        /// Slot the step fires.
        at: u64,
    },
    /// `joins` arrivals spread evenly over `start .. start + duration`.
    Ramp {
        /// Total joins in the ramp.
        joins: u64,
        /// First slot of the ramp.
        start: u64,
        /// Slots the ramp spans (≥ 1).
        duration: u64,
    },
    /// `count` spikes of `joins` arrivals each, at `start`,
    /// `start + period`, `start + 2·period`, …
    SpikeTrain {
        /// Joins per spike.
        joins: u64,
        /// Slot of the first spike.
        start: u64,
        /// Slots between consecutive spikes (≥ 1).
        period: u64,
        /// Number of spikes (≥ 1).
        count: u64,
    },
}

impl JoinCurve {
    /// The grammar's kind label.
    pub fn label(&self) -> &'static str {
        match self {
            JoinCurve::Step { .. } => "step",
            JoinCurve::Ramp { .. } => "ramp",
            JoinCurve::SpikeTrain { .. } => "spikes",
        }
    }

    /// Total arrivals the curve contributes.
    pub fn total_joins(&self) -> u64 {
        match *self {
            JoinCurve::Step { joins, .. } | JoinCurve::Ramp { joins, .. } => joins,
            JoinCurve::SpikeTrain { joins, count, .. } => joins * count,
        }
    }

    /// Last slot the curve fires an event in.
    pub fn last_slot(&self) -> u64 {
        match *self {
            JoinCurve::Step { at, .. } => at,
            JoinCurve::Ramp {
                joins,
                start,
                duration,
            } => {
                // The last join lands at the last occupied ramp slot.
                match ((joins.max(1) - 1) * duration).checked_div(joins) {
                    Some(off) => start + off,
                    None => start,
                }
            }
            JoinCurve::SpikeTrain {
                start,
                period,
                count,
                ..
            } => start + period * count.saturating_sub(1),
        }
    }

    /// Expand the curve into per-slot join counts, appended to `out`
    /// as `(slot, joins_in_slot)` pairs in ascending slot order.
    fn expand(&self, out: &mut Vec<(u64, u64)>) {
        match *self {
            JoinCurve::Step { joins, at } => {
                if joins > 0 {
                    out.push((at, joins));
                }
            }
            JoinCurve::Ramp {
                joins,
                start,
                duration,
            } => {
                // Deterministic even spread: join i lands at
                // start + ⌊i·duration/joins⌋.
                let mut i = 0;
                while i < joins {
                    let slot = start + (i * duration) / joins;
                    let next = ((slot - start + 1) * joins).div_ceil(duration);
                    let here = next.min(joins) - i;
                    out.push((slot, here));
                    i += here;
                }
            }
            JoinCurve::SpikeTrain {
                joins,
                start,
                period,
                count,
            } => {
                for k in 0..count {
                    if joins > 0 {
                        out.push((start + k * period, joins));
                    }
                }
            }
        }
    }
}

/// A correlated regional failure: every current member with external id
/// in `lo ..= hi` fails together in slot `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionalFailure {
    /// Lowest external id in the region (inclusive).
    pub lo: u64,
    /// Highest external id in the region (inclusive).
    pub hi: u64,
    /// Slot the region goes down.
    pub at: u64,
}

const VALID_KINDS: &str = "step, ramp, spikes, fail";
const FORMAT_HINT: &str = "expected KIND:ARGS@START[+DUR][=PARAM] \
     (e.g. step:1000@20, ramp:1000@20+50, spikes:200@10+30=5, fail:3-6@40, comma-separated)";

fn bad(entry: &str, why: &str) -> String {
    format!("bad --scenario entry `{entry}`: {why}")
}

fn parse_u64(entry: &str, s: &str, what: &str) -> Result<u64, String> {
    s.trim()
        .parse()
        .map_err(|_| bad(entry, &format!("{what} must be a non-negative integer")))
}

/// A deterministic scenario script: join curves plus regional failures.
///
/// Compile with [`ScenarioPlan::compile`]; parse from / render to the
/// `--scenario` grammar with [`ScenarioPlan::parse`] and
/// [`fmt::Display`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScenarioPlan {
    /// Join-rate curves, in spec order.
    pub curves: Vec<JoinCurve>,
    /// Correlated regional failures, in spec order.
    pub failures: Vec<RegionalFailure>,
}

impl ScenarioPlan {
    /// Parse a comma-separated `--scenario` spec. Errors name the
    /// offending entry and restate the expected format, matching the
    /// `--kill`/`--chaos` convention.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = ScenarioPlan::default();
        for entry in s.split(',') {
            let entry = entry.trim();
            let Some((kind, rest)) = entry.split_once(':') else {
                return Err(bad(entry, FORMAT_HINT));
            };
            let Some((args, when)) = rest.split_once('@') else {
                return Err(bad(entry, FORMAT_HINT));
            };
            let (when, param) = match when.split_once('=') {
                Some((w, p)) => (w, Some(p)),
                None => (when, None),
            };
            let (start, dur) = match when.split_once('+') {
                Some((s0, d)) => (s0, Some(parse_u64(entry, d, "DUR")?)),
                None => (when, None),
            };
            let start = parse_u64(entry, start, "START")?;
            match kind {
                "step" => {
                    let joins = parse_u64(entry, args, "JOINS")?;
                    if joins == 0 {
                        return Err(bad(entry, "JOINS must be at least 1"));
                    }
                    if dur.is_some() || param.is_some() {
                        return Err(bad(entry, "step takes no `+DUR` or `=PARAM`"));
                    }
                    plan.curves.push(JoinCurve::Step { joins, at: start });
                }
                "ramp" => {
                    let joins = parse_u64(entry, args, "JOINS")?;
                    if joins == 0 {
                        return Err(bad(entry, "JOINS must be at least 1"));
                    }
                    let duration =
                        dur.ok_or_else(|| bad(entry, "ramp needs `+DUR` (slots spanned)"))?;
                    if duration == 0 {
                        return Err(bad(entry, "DUR must be at least 1"));
                    }
                    if param.is_some() {
                        return Err(bad(entry, "ramp takes no `=PARAM`"));
                    }
                    plan.curves.push(JoinCurve::Ramp {
                        joins,
                        start,
                        duration,
                    });
                }
                "spikes" => {
                    let joins = parse_u64(entry, args, "JOINS")?;
                    if joins == 0 {
                        return Err(bad(entry, "JOINS must be at least 1"));
                    }
                    let period =
                        dur.ok_or_else(|| bad(entry, "spikes needs `+PERIOD` (slots between)"))?;
                    if period == 0 {
                        return Err(bad(entry, "PERIOD must be at least 1"));
                    }
                    let count = parse_u64(
                        entry,
                        param.ok_or_else(|| bad(entry, "spikes needs `=COUNT`"))?,
                        "COUNT",
                    )?;
                    if count == 0 {
                        return Err(bad(entry, "COUNT must be at least 1"));
                    }
                    plan.curves.push(JoinCurve::SpikeTrain {
                        joins,
                        start,
                        period,
                        count,
                    });
                }
                "fail" => {
                    let Some((lo, hi)) = args.split_once('-') else {
                        return Err(bad(entry, "fail needs an id range `LO-HI`"));
                    };
                    let (lo, hi) = (parse_u64(entry, lo, "LO")?, parse_u64(entry, hi, "HI")?);
                    if lo == 0 {
                        return Err(bad(entry, "LO must be at least 1 (node 0 is the source)"));
                    }
                    if lo > hi {
                        return Err(bad(entry, "LO must not exceed HI"));
                    }
                    if dur.is_some() || param.is_some() {
                        return Err(bad(entry, "fail takes no `+DUR` or `=PARAM`"));
                    }
                    plan.failures.push(RegionalFailure { lo, hi, at: start });
                }
                other => {
                    return Err(format!(
                        "unknown --scenario curve kind `{other}`; valid kinds are: {VALID_KINDS}"
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Total arrivals across every curve.
    pub fn total_joins(&self) -> u64 {
        self.curves.iter().map(JoinCurve::total_joins).sum()
    }

    /// Last slot any scripted event fires in.
    pub fn last_event_slot(&self) -> u64 {
        let c = self.curves.iter().map(JoinCurve::last_slot).max();
        let f = self.failures.iter().map(|f| f.at).max();
        c.into_iter().chain(f).max().unwrap_or(0)
    }

    /// Compile the script against an initial population of
    /// `initial_members` (external ids `1..=initial_members`) into a
    /// replayable [`ChurnTrace`].
    ///
    /// Joins become `ChurnAction::Join` events; each regional failure
    /// becomes one `Leave` per present member of the region, with the
    /// victim *rank* computed against the membership the trace itself
    /// produces — so `ChurnTrace::resolve(&[1..=n0], &[])` maps every
    /// `Leave` back to exactly the region's external ids. Within a
    /// slot, joins land before failures.
    pub fn compile(&self, initial_members: usize) -> ChurnTrace {
        // Per-slot join totals, merged across curves.
        let mut joins: Vec<(u64, u64)> = Vec::new();
        for c in &self.curves {
            c.expand(&mut joins);
        }
        joins.sort_by_key(|&(slot, _)| slot);

        let mut failures = self.failures.clone();
        failures.sort_by_key(|f| f.at);

        // Membership simulation mirroring `ChurnTrace::resolve`: sorted
        // external ids, fresh joins take max + 1.
        let mut members: Vec<u64> = (1..=initial_members as u64).collect();
        let mut next = initial_members as u64 + 1;
        let mut events = Vec::new();
        let (mut ji, mut fi) = (0usize, 0usize);
        while ji < joins.len() || fi < failures.len() {
            let js = joins.get(ji).map(|&(s, _)| s).unwrap_or(u64::MAX);
            let fs = failures.get(fi).map(|f| f.at).unwrap_or(u64::MAX);
            // Joins land before failures within the same slot.
            if js <= fs {
                let (slot, n) = joins[ji];
                for _ in 0..n {
                    events.push(ChurnEvent {
                        slot,
                        action: ChurnAction::Join,
                    });
                    members.push(next);
                    next += 1;
                }
                ji += 1;
            } else {
                let f = failures[fi];
                for ext in f.lo..=f.hi {
                    if let Ok(rank) = members.binary_search(&ext) {
                        events.push(ChurnEvent {
                            slot: f.at,
                            action: ChurnAction::Leave { victim_rank: rank },
                        });
                        members.remove(rank);
                    }
                }
                fi += 1;
            }
        }

        ChurnTrace {
            config: ChurnTraceConfig {
                initial_members,
                slots: self.last_event_slot() + 1,
                join_rate: 0.0,
                leave_rate: 0.0,
                rejoin_rate: 0.0,
                seed: 0,
            },
            events,
        }
    }
}

impl fmt::Display for ScenarioPlan {
    /// Render the canonical spec string; `parse(format!("{plan}"))`
    /// round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            Ok(())
        };
        for c in &self.curves {
            sep(f)?;
            match *c {
                JoinCurve::Step { joins, at } => write!(f, "step:{joins}@{at}")?,
                JoinCurve::Ramp {
                    joins,
                    start,
                    duration,
                } => write!(f, "ramp:{joins}@{start}+{duration}")?,
                JoinCurve::SpikeTrain {
                    joins,
                    start,
                    period,
                    count,
                } => write!(f, "spikes:{joins}@{start}+{period}={count}")?,
            }
        }
        for r in &self.failures {
            sep(f)?;
            write!(f, "fail:{}-{}@{}", r.lo, r.hi, r.at)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ResolvedChurnAction;
    use proptest::prelude::*;

    #[test]
    fn step_compiles_to_joins_in_one_slot() {
        let plan = ScenarioPlan::parse("step:5@20").unwrap();
        let trace = plan.compile(4);
        assert_eq!(trace.events.len(), 5);
        assert!(trace
            .events
            .iter()
            .all(|e| e.slot == 20 && e.action == ChurnAction::Join));
        assert_eq!(trace.config.initial_members, 4);
        assert_eq!(plan.total_joins(), 5);
        assert_eq!(plan.last_event_slot(), 20);
    }

    #[test]
    fn ramp_spreads_joins_evenly() {
        let plan = ScenarioPlan::parse("ramp:10@5+5").unwrap();
        let trace = plan.compile(2);
        assert_eq!(trace.events.len(), 10);
        for slot in 5..10 {
            assert_eq!(
                trace.events.iter().filter(|e| e.slot == slot).count(),
                2,
                "slot {slot}"
            );
        }
        // Sparse ramp: fewer joins than slots still lands every join.
        let plan = ScenarioPlan::parse("ramp:3@0+10").unwrap();
        let slots: Vec<u64> = plan.compile(2).events.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![0, 3, 6]);
        assert_eq!(plan.last_event_slot(), 6);
    }

    #[test]
    fn spike_train_fires_on_the_period() {
        let plan = ScenarioPlan::parse("spikes:2@10+30=3").unwrap();
        let trace = plan.compile(2);
        assert_eq!(trace.events.len(), 6);
        let slots: Vec<u64> = trace.events.iter().map(|e| e.slot).collect();
        assert_eq!(slots, vec![10, 10, 40, 40, 70, 70]);
        assert_eq!(plan.last_event_slot(), 70);
    }

    #[test]
    fn regional_failure_resolves_to_the_region_ids() {
        let plan = ScenarioPlan::parse("step:3@1,fail:2-3@4").unwrap();
        let trace = plan.compile(4);
        let initial: Vec<u64> = (1..=4).collect();
        let resolved = trace.resolve(&initial, &[]);
        let left: Vec<u64> = resolved
            .iter()
            .filter_map(|e| match e.action {
                ResolvedChurnAction::Leave { ext } => Some(ext),
                _ => None,
            })
            .collect();
        assert_eq!(left, vec![2, 3]);
        // Joins got fresh monotone ids above the initial population.
        let joined: Vec<u64> = resolved
            .iter()
            .filter_map(|e| match e.action {
                ResolvedChurnAction::Join { ext } => Some(ext),
                _ => None,
            })
            .collect();
        assert_eq!(joined, vec![5, 6, 7]);
    }

    #[test]
    fn failure_region_covering_joiners_resolves_to_them() {
        // Region 5-6 only exists because the step created ids 5..=7.
        let plan = ScenarioPlan::parse("step:3@0,fail:5-6@2").unwrap();
        let trace = plan.compile(4);
        let resolved = trace.resolve(&(1..=4).collect::<Vec<_>>(), &[]);
        let left: Vec<u64> = resolved
            .iter()
            .filter_map(|e| match e.action {
                ResolvedChurnAction::Leave { ext } => Some(ext),
                _ => None,
            })
            .collect();
        assert_eq!(left, vec![5, 6]);
    }

    #[test]
    fn absent_region_members_are_skipped() {
        // Ids 9..12 never exist: the failure compiles to zero events.
        let plan = ScenarioPlan::parse("fail:9-12@4").unwrap();
        assert!(plan.compile(4).events.is_empty());
    }

    #[test]
    fn unknown_kind_lists_valid_kinds() {
        let err = ScenarioPlan::parse("flood:10@0").unwrap_err();
        assert!(
            err.contains("unknown --scenario curve kind `flood`"),
            "{err}"
        );
        assert!(err.contains("step, ramp, spikes, fail"), "{err}");
    }

    #[test]
    fn malformed_entries_name_the_entry_and_reason() {
        for (spec, needle) in [
            ("step10@0", "expected KIND:ARGS@START"),
            ("step:0@5", "JOINS must be at least 1"),
            ("ramp:10@5", "ramp needs `+DUR`"),
            ("ramp:10@5+0", "DUR must be at least 1"),
            ("spikes:5@0+10", "spikes needs `=COUNT`"),
            ("spikes:5@0+0=2", "PERIOD must be at least 1"),
            ("fail:6@2", "fail needs an id range `LO-HI`"),
            ("fail:7-3@2", "LO must not exceed HI"),
            ("fail:0-3@2", "LO must be at least 1"),
            ("step:x@5", "JOINS must be a non-negative integer"),
        ] {
            let err = ScenarioPlan::parse(spec).unwrap_err();
            assert!(err.contains("bad --scenario entry"), "{spec}: {err}");
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    fn build_curve(kind: u32, joins: u64, start: u64, span: u64, count: u64) -> JoinCurve {
        match kind {
            0 => JoinCurve::Step { joins, at: start },
            1 => JoinCurve::Ramp {
                joins,
                start,
                duration: span,
            },
            _ => JoinCurve::SpikeTrain {
                joins,
                start,
                period: span,
                count,
            },
        }
    }

    proptest! {
        #[test]
        fn spec_format_parse_round_trips(
            raw in proptest::collection::vec(
                ((0u32..3, 1u64..500), (0u64..100, 1u64..60, 1u64..6)), 1..4),
            fails in proptest::collection::vec(
                (1u64..40, 0u64..40, 0u64..100), 0..3),
        ) {
            let plan = ScenarioPlan {
                curves: raw
                    .into_iter()
                    .map(|((k, j), (s, sp, c))| build_curve(k, j, s, sp, c))
                    .collect(),
                failures: fails
                    .into_iter()
                    .map(|(lo, extra, at)| RegionalFailure { lo, hi: lo + extra, at })
                    .collect(),
            };
            let rendered = plan.to_string();
            let reparsed = ScenarioPlan::parse(&rendered).unwrap();
            prop_assert_eq!(reparsed, plan);
        }

        #[test]
        fn compiled_joins_match_the_plan_total(
            raw in proptest::collection::vec(
                ((0u32..3, 1u64..500), (0u64..100, 1u64..60, 1u64..6)), 1..4),
            n0 in 2usize..12,
        ) {
            let plan = ScenarioPlan {
                curves: raw
                    .into_iter()
                    .map(|((k, j), (s, sp, c))| build_curve(k, j, s, sp, c))
                    .collect(),
                failures: vec![],
            };
            let trace = plan.compile(n0);
            prop_assert_eq!(trace.events.len() as u64, plan.total_joins());
            // Events are slot-sorted, none past the advertised last slot.
            let slots: Vec<u64> = trace.events.iter().map(|e| e.slot).collect();
            let mut sorted = slots.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&slots, &sorted);
            prop_assert!(slots.last().copied().unwrap_or(0) <= plan.last_event_slot());
        }
    }
}
