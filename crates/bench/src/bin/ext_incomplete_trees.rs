//! ext-A: the simulation the paper omitted — incomplete populations stay
//! under the complete-tree bound h·d, often strictly.

use clustream_bench::{ext_incomplete, render_table};
use clustream_workloads::linear_grid;

fn main() {
    for d in [2usize, 3] {
        let ns = linear_grid(5, 500, 34);
        let rows = ext_incomplete(&ns, d);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.measured.to_string(),
                    r.bound.to_string(),
                    r.slack.to_string(),
                ]
            })
            .collect();
        println!("ext-A — incomplete trees, d = {d}\n");
        println!(
            "{}",
            render_table(&["N", "measured", "h·d", "slack"], &table)
        );
    }
}
