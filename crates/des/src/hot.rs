//! Hot-path containers for the event loop: a growable per-node packet
//! bitset and a non-cryptographic hasher for the engine's point-lookup
//! maps.
//!
//! Both replace `std` defaults that dominated the per-event profile:
//! SipHash costs ~25ns per probe and the engine makes several probes per
//! transmission, while packet possession is a dense predicate over a
//! contiguous sequence space, for which a bitset is both smaller and
//! branch-free. Neither structure is ever iterated, so determinism is
//! untouched — every access is a point lookup keyed by values the
//! simulation already ordered.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Dense set of packet sequence numbers held by one node.
///
/// Sequence numbers start at zero and grow with the schedule, so the
/// word vector stays proportional to the newest packet seen — the same
/// asymptotics as a hash set over a dense run, with a 64× smaller
/// constant and no hashing.
#[derive(Debug, Clone, Default)]
pub struct SeqSet {
    words: Vec<u64>,
}

impl SeqSet {
    /// Whether `seq` is in the set.
    #[inline]
    pub fn contains(&self, seq: u64) -> bool {
        let w = (seq >> 6) as usize;
        w < self.words.len() && self.words[w] & (1 << (seq & 63)) != 0
    }

    /// Insert `seq`; returns `true` when it was newly inserted (the
    /// `HashSet::insert` contract the duplicate counter relies on).
    #[inline]
    pub fn insert(&mut self, seq: u64) -> bool {
        let w = (seq >> 6) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (seq & 63);
        let newly = self.words[w] & bit == 0;
        self.words[w] |= bit;
        newly
    }
}

/// The strict-mode receive-capacity guard: at most one pending arrival
/// per `(arrival slot, node)`.
///
/// Replaces a `HashMap<(u64, u32), PacketId>`, which spent most of the
/// DES hot loop churning tombstones — every slot inserts and removes one
/// entry per transmission, so the map rehashed continuously. The ring
/// exploits two monotonicity facts instead:
///
/// * arrival slots never repeat — a send from playback slot `t` targets
///   an arrival slot `≥ t`, and `t` has already passed every slot whose
///   deliveries fired — so an entry never needs removal: a stale cell
///   can never match a live query's slot;
/// * pending arrivals span at most the largest in-flight latency, so a
///   ring of `width >` that span never aliases two live entries.
///
/// Cells are keyed by their exact slot, making overwrite-on-stale safe,
/// and the ring grows (re-seating live cells, no hashing anywhere) when
/// a latency outgrows the current width.
#[derive(Debug)]
pub struct ArrivalRing {
    /// `width × n_ids` cells, slot-major: `(slot, packet)`, slot
    /// `u64::MAX` when vacant.
    cells: Vec<(u64, PacketId2)>,
    n_ids: usize,
    /// Power of two, strictly greater than any in-flight latency span.
    width: u64,
}

/// The packet payload stored in a ring cell. A plain `u64` (the packet
/// seq) keeps the cell `Copy` without importing core types here.
type PacketId2 = u64;

/// Vacant-cell marker; real slots are bounded by `SimConfig::max_slots`.
const VACANT: u64 = u64::MAX;

impl ArrivalRing {
    /// A ring for `n_ids` nodes with the minimum width.
    pub fn new(n_ids: usize) -> ArrivalRing {
        let width = 8;
        ArrivalRing {
            cells: vec![(VACANT, 0); width as usize * n_ids],
            n_ids,
            width,
        }
    }

    /// Claim `(arrival_slot, node)` for packet seq `packet`. Returns the
    /// already-pending packet seq on a collision. `now_slot` is the
    /// current playback slot (the live-window floor, needed on growth).
    #[inline]
    pub fn try_insert(
        &mut self,
        arrival_slot: u64,
        node: u32,
        packet: u64,
        now_slot: u64,
    ) -> Result<(), u64> {
        debug_assert!(arrival_slot >= now_slot);
        if arrival_slot - now_slot + 2 > self.width {
            self.grow(arrival_slot - now_slot + 2, now_slot);
        }
        let cell = &mut self.cells
            [(arrival_slot & (self.width - 1)) as usize * self.n_ids + node as usize];
        if cell.0 == arrival_slot {
            return Err(cell.1);
        }
        *cell = (arrival_slot, packet);
        Ok(())
    }

    /// Re-seat every live cell (slot ≥ `now_slot`) into a wider ring.
    fn grow(&mut self, need: u64, now_slot: u64) {
        let width = need.next_power_of_two();
        let mut cells = vec![(VACANT, 0); width as usize * self.n_ids];
        for (i, &(slot, packet)) in self.cells.iter().enumerate() {
            if slot != VACANT && slot >= now_slot {
                let node = i % self.n_ids;
                cells[(slot & (width - 1)) as usize * self.n_ids + node] = (slot, packet);
            }
        }
        self.cells = cells;
        self.width = width;
    }
}

/// Multiply-xor hasher (the FxHash construction) for the engine's
/// integer-keyed maps. Not DoS-resistant — fine here, since every key is
/// generated by the deterministic simulation itself.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's multiplicative constant, as used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` with the fast hasher; used only for point lookups.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_set_inserts_and_probes() {
        let mut s = SeqSet::default();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "second insert reports already-present");
        assert!(s.contains(0));
        assert!(!s.contains(63));
        assert!(s.insert(63));
        assert!(s.insert(64), "crosses a word boundary");
        assert!(s.contains(64));
        assert!(!s.contains(1000));
        assert!(s.insert(1000));
        assert!(s.contains(1000));
    }

    #[test]
    fn arrival_ring_detects_same_slot_collisions() {
        let mut r = ArrivalRing::new(4);
        assert_eq!(r.try_insert(5, 2, 10, 5), Ok(()));
        assert_eq!(r.try_insert(5, 2, 11, 5), Err(10), "same (slot, node)");
        assert_eq!(r.try_insert(5, 3, 11, 5), Ok(()), "other node is free");
        assert_eq!(r.try_insert(6, 2, 12, 5), Ok(()), "other slot is free");
    }

    #[test]
    fn arrival_ring_stale_cells_never_match() {
        let mut r = ArrivalRing::new(2);
        assert_eq!(r.try_insert(3, 1, 7, 3), Ok(()));
        // Slot 3's delivery has fired; slot 11 aliases it (mod 8) and
        // must overwrite the stale cell, not report a collision.
        assert_eq!(r.try_insert(11, 1, 8, 10), Ok(()));
        assert_eq!(r.try_insert(11, 1, 9, 10), Err(8));
    }

    #[test]
    fn arrival_ring_grows_past_long_latencies() {
        let mut r = ArrivalRing::new(3);
        for slot in 0..40 {
            assert_eq!(r.try_insert(slot, 1, slot, 0), Ok(()));
        }
        // Every claim survives the growth re-seat.
        for slot in 0..40 {
            assert_eq!(r.try_insert(slot, 1, slot + 100, 0), Err(slot));
        }
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxHashMap<(u64, u32), u64> = FxHashMap::default();
        assert!(m.insert((3, 7), 10).is_none());
        assert_eq!(m.insert((3, 7), 11), Some(10));
        assert_eq!(m.get(&(3, 7)), Some(&11));
        assert_eq!(m.remove(&(3, 7)), Some(11));
        assert!(!m.contains_key(&(3, 7)));
    }
}
