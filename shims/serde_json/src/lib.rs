//! Hermetic in-tree stand-in for the `serde_json` crate.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over the
//! serde shim's `Value` data model, with the same wire conventions as the
//! real crate for the shapes this workspace serializes (objects in field
//! order, `null` for `None`, numbers, escaped strings).

#![allow(clippy::all)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// -------------------------------------------------------------- emitter

fn emit(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => emit_f64(*x, out),
        Value::Str(s) => emit_str(s, out),
        Value::Array(items) => emit_seq(
            items.iter(),
            items.len(),
            '[',
            ']',
            out,
            indent,
            depth,
            |item, out, indent, depth| emit(item, out, indent, depth),
        ),
        Value::Object(pairs) => emit_seq(
            pairs.iter(),
            pairs.len(),
            '{',
            '}',
            out,
            indent,
            depth,
            |(k, v), out, indent, depth| {
                emit_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(v, out, indent, depth)
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut each: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        each(item, out, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

fn emit_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // Real serde_json refuses non-finite floats; `null` is the
        // closest representable degradation for this shim.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fractional part so the value re-parses as a float,
        // matching serde_json's `3.0` formatting.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{word}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // shim's emitter; reject rather than mis-decode.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u32, 2u64), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u64)>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{08}\u{0c}\u{1f}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 , 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("1 x").is_err());
    }
}
