//! Scalability sweep: closed-form predictions for populations far beyond
//! the paper's 2000-node figures, plus a large validated simulation to
//! show the engine keeps up.

use clustream_analysis as analysis;
use clustream_bench::{render_table, simulate};
use clustream_core::Scheme;
use clustream_hypercube::HypercubeStream;
use clustream_multitree::{greedy_forest, DelayProfile, MultiTreeScheme, StreamMode};
use clustream_sim::{diff_fields, FastEngine, SimConfig};
use std::time::Instant;

fn main() {
    println!("closed-form predictions at scale\n");
    let rows: Vec<Vec<String>> = [1_000usize, 10_000, 100_000, 1_000_000, 10_000_000]
        .iter()
        .map(|&n| {
            vec![
                n.to_string(),
                analysis::thm2_worst_delay_bound(n, 2).to_string(),
                analysis::thm2_worst_delay_bound(n, 3).to_string(),
                analysis::chained_worst_delay(n).to_string(),
                format!("{:.1}", analysis::chained_avg_delay(n)),
                analysis::optimal_degree(n, 8).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["N", "mt d=2 (h·d)", "mt d=3", "hc worst", "hc avg", "opt d"],
            &rows
        )
    );

    // Exact closed-form profile of a 100k-node forest.
    let t0 = Instant::now();
    let s = MultiTreeScheme::new(greedy_forest(100_000, 3).unwrap(), StreamMode::PreRecorded);
    let p = DelayProfile::compute(&s).unwrap();
    println!(
        "exact profile, N = 100000, d = 3: max delay {} (bound {}), computed in {:.2?}",
        p.max_delay(),
        analysis::thm2_worst_delay_bound(100_000, 3),
        t0.elapsed()
    );

    // Fully validated simulations at N = 20000, on both engines: the
    // readable reference and the allocation-light fast path (identical
    // results, checked field by field on every run).
    let mut engine = FastEngine::new();
    type SchemeFactory = Box<dyn Fn() -> Box<dyn Scheme>>;
    let cells: [(&str, u64, SchemeFactory); 2] = [
        (
            "multitree",
            48,
            Box::new(|| {
                Box::new(MultiTreeScheme::new(
                    greedy_forest(20_000, 3).unwrap(),
                    StreamMode::PreRecorded,
                ))
            }),
        ),
        (
            "hypercube",
            64,
            Box::new(|| Box::new(HypercubeStream::new(20_000).unwrap())),
        ),
    ];
    for (_, track, make) in &cells {
        let t0 = Instant::now();
        let reference = simulate(make().as_mut(), *track);
        let t_ref = t0.elapsed();
        let cfg = SimConfig::until_complete(*track, 1_000_000);
        let t0 = Instant::now();
        let fast = engine.run(make().as_mut(), &cfg).unwrap();
        let t_fast = t0.elapsed();
        let diffs = diff_fields(&reference, &fast);
        assert!(diffs.is_empty(), "engines diverge on {diffs:?}");
        println!(
            "validated sim, N = 20000 ({}): {} transmissions — reference {:.2?}, fast {:.2?} ({:.2}x)",
            reference.scheme,
            reference.total_transmissions,
            t_ref,
            t_fast,
            t_ref.as_secs_f64() / t_fast.as_secs_f64()
        );
    }
}
