//! Special and adversarial population sizes.
//!
//! Scheme behaviour is size-sensitive: hypercube chains are fastest at
//! `N = 2^k − 1` and slowest just above (a fresh tiny cube is appended to
//! the chain); multi-trees jump in delay when a new level opens
//! (`N` crosses `d + d² + … + d^h`). Experiments that only sample round
//! numbers miss these edges; this module enumerates them.

/// Hypercube-friendly populations `2^k − 1` up to `max_n`.
pub fn special_ns(max_n: usize) -> Vec<usize> {
    (1..)
        .map(|k| (1usize << k) - 1)
        .take_while(|&n| n <= max_n)
        .collect()
}

/// Hypercube-adversarial populations `2^k` (one past special: the chain
/// gains a second cube of size 1) and `2^k − 2` (the largest cube shrinks)
/// up to `max_n`.
pub fn adversarial_ns(max_n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for k in 2.. {
        let special = (1usize << k) - 1;
        if special > max_n {
            break;
        }
        if special >= 2 {
            out.push(special - 1);
        }
        if special < max_n {
            out.push(special + 1);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Complete multi-tree populations `d + d² + … + d^h` for a given degree,
/// up to `max_n` — where Theorem 2's bound is tight.
pub fn complete_ns(d: usize, max_n: usize) -> Vec<usize> {
    assert!(d >= 2);
    let mut out = Vec::new();
    let mut n = 0usize;
    let mut level = 1usize;
    while let Some(l) = level.checked_mul(d) {
        level = l;
        match n.checked_add(level) {
            Some(s) if s <= max_n => n = s,
            _ => break,
        }
        out.push(n);
    }
    out
}

/// Level-boundary populations for a degree: each complete population and
/// its successor (where the delay staircase steps).
pub fn boundary_ns(d: usize, max_n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for n in complete_ns(d, max_n) {
        out.push(n);
        if n < max_n {
            out.push(n + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_powers_minus_one() {
        assert_eq!(special_ns(100), vec![1, 3, 7, 15, 31, 63]);
        assert_eq!(
            special_ns(1023),
            vec![1, 3, 7, 15, 31, 63, 127, 255, 511, 1023]
        );
    }

    #[test]
    fn adversarials_straddle_specials() {
        let a = adversarial_ns(40);
        assert!(a.contains(&2) && a.contains(&4));
        assert!(a.contains(&14) && a.contains(&16));
        assert!(!a.contains(&15));
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn complete_populations_match_geometric_sums() {
        assert_eq!(complete_ns(2, 100), vec![2, 6, 14, 30, 62]);
        assert_eq!(complete_ns(3, 200), vec![3, 12, 39, 120]);
        assert_eq!(complete_ns(5, 10), vec![5]);
    }

    #[test]
    fn boundaries_step_the_staircase() {
        let b = boundary_ns(3, 50);
        assert_eq!(b, vec![3, 4, 12, 13, 39, 40]);
        // The delay bound indeed steps at each boundary.
        for pair in b.chunks(2) {
            if let [complete, next] = pair {
                let a = clustream_core_stub::height(*complete, 3);
                let c = clustream_core_stub::height(*next, 3);
                assert!(c > a, "no step at {complete}→{next}");
            }
        }
    }

    /// Minimal local height computation to keep this crate independent of
    /// clustream-analysis (test-only).
    mod clustream_core_stub {
        pub fn height(n: usize, d: usize) -> u64 {
            let n_pad = n.div_ceil(d) * d;
            let mut h = 0u64;
            let mut level = 1usize;
            let mut covered = 0usize;
            while covered < n_pad {
                level *= d;
                covered += level;
                h += 1;
            }
            h
        }
    }
}
