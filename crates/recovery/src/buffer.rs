//! Bounded per-node repair buffers.
//!
//! A node can only serve a retransmission for a packet it still holds in
//! its repair buffer — a FIFO window over its most recent arrivals. The
//! bound is the graceful-degradation lever: once a gap packet has aged
//! out of every candidate server's buffer, the requester's retries
//! escalate to the source and, failing that, the packet is abandoned.

use std::collections::{BTreeSet, VecDeque};

/// FIFO repair buffers, one per node, each bounded to `capacity` packets.
#[derive(Debug, Clone)]
pub struct RepairBuffer {
    /// Insertion-ordered window per node.
    fifo: Vec<VecDeque<u64>>,
    /// Same contents with O(log n) membership.
    member: Vec<BTreeSet<u64>>,
    capacity: usize,
}

impl RepairBuffer {
    /// Buffers for `n_ids` nodes, each holding at most `capacity`
    /// packets.
    pub fn new(n_ids: usize, capacity: usize) -> Self {
        RepairBuffer {
            fifo: vec![VecDeque::new(); n_ids],
            member: vec![BTreeSet::new(); n_ids],
            capacity,
        }
    }

    /// Note that `node` received `seq`, evicting the oldest entry when
    /// full. Duplicate arrivals do not reshuffle the window.
    pub fn note(&mut self, node: u32, seq: u64) {
        let (fifo, member) = (
            &mut self.fifo[node as usize],
            &mut self.member[node as usize],
        );
        if self.capacity == 0 || !member.insert(seq) {
            return;
        }
        fifo.push_back(seq);
        if fifo.len() > self.capacity {
            let evicted = fifo.pop_front().expect("nonempty");
            member.remove(&evicted);
        }
    }

    /// Whether `node` can still serve `seq` from its repair buffer.
    pub fn contains(&self, node: u32, seq: u64) -> bool {
        self.member[node as usize].contains(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_eviction() {
        let mut b = RepairBuffer::new(3, 2);
        b.note(1, 10);
        b.note(1, 11);
        assert!(b.contains(1, 10));
        b.note(1, 12);
        assert!(!b.contains(1, 10), "oldest evicted");
        assert!(b.contains(1, 11));
        assert!(b.contains(1, 12));
        assert!(!b.contains(2, 11), "per-node isolation");
    }

    #[test]
    fn duplicates_do_not_evict() {
        let mut b = RepairBuffer::new(2, 2);
        b.note(0, 1);
        b.note(0, 2);
        b.note(0, 2);
        assert!(b.contains(0, 1), "duplicate must not push out packet 1");
    }

    #[test]
    fn zero_capacity_serves_nothing() {
        let mut b = RepairBuffer::new(2, 0);
        b.note(0, 1);
        assert!(!b.contains(0, 1));
    }
}
