//! In-tree log-linear histogram.
//!
//! The bucketing follows the HdrHistogram family: small values get exact
//! unit buckets, larger values fall into power-of-two octaves each split
//! into [`SUB_BUCKETS`] equal-width linear sub-buckets, so relative
//! resolution stays bounded (≤ 12.5 %) at every magnitude while the whole
//! `u64` range fits in under 500 buckets. No dependencies, no
//! floating-point in the index math, and bucket boundaries are a pure
//! function of the index — pinned by unit tests so exported snapshots are
//! stable across versions.

use serde::{Deserialize, Serialize};

/// Values below this get an exact bucket each (`bucket i == value i`).
pub const LINEAR_MAX: u64 = 16;

/// Sub-buckets per power-of-two octave above [`LINEAR_MAX`].
pub const SUB_BUCKETS: u64 = 8;

/// Bucket index for `value`. Monotone in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    // value ≥ 16 ⇒ msb ≥ 4. The octave for msb `m` spans [2^m, 2^(m+1)),
    // split into 8 sub-buckets of width 2^(m−3).
    let msb = 63 - value.leading_zeros() as u64;
    let sub = (value >> (msb - 3)) & (SUB_BUCKETS - 1);
    (LINEAR_MAX + (msb - 4) * SUB_BUCKETS + sub) as usize
}

/// Inclusive lower boundary of bucket `index`.
pub fn bucket_lo(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR_MAX {
        return i;
    }
    let octave = (i - LINEAR_MAX) / SUB_BUCKETS;
    let sub = (i - LINEAR_MAX) % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (octave + 1)
}

/// Exclusive upper boundary of bucket `index` (saturating at the top of
/// the `u64` range).
pub fn bucket_hi(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR_MAX {
        return i + 1;
    }
    let octave = (i - LINEAR_MAX) / SUB_BUCKETS;
    bucket_lo(index).saturating_add(1u64 << (octave + 1))
}

/// A recorded histogram: per-bucket counts plus exact count/sum/min/max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1): the
    /// inclusive upper edge of the first bucket whose cumulative count
    /// reaches `ceil(q · count)`, clamped to the exact recorded maximum.
    /// Exact for values below [`LINEAR_MAX`]; within one sub-bucket width
    /// (≤ 12.5 % relative) above it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (bucket_hi(i) - 1).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
            .collect()
    }

    /// Rebuild a histogram from an exported snapshot. Per-bucket counts
    /// are restored exactly; `min`/`max`/`sum` come from the snapshot's
    /// exact fields.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Histogram {
        let mut h = Histogram::new();
        for &(lo, _, c) in &s.buckets {
            let idx = bucket_index(lo);
            if idx >= h.buckets.len() {
                h.buckets.resize(idx + 1, 0);
            }
            h.buckets[idx] += c;
        }
        h.count = s.count;
        h.sum = s.sum;
        h.min = s.min;
        h.max = s.max;
        h
    }

    /// Export the histogram for serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Serializable form of a [`Histogram`]: exact summary statistics plus
/// the non-empty `(lo, hi, count)` buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Non-empty buckets as `(inclusive lo, exclusive hi, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    /// Merge `other` into `self`, as if every observation behind both
    /// snapshots had been recorded into one histogram: counts and sums
    /// add, `min`/`max` stay the **exact** extremes (never re-derived
    /// from bucket boundaries, which would round a max like 33 up to its
    /// octave bucket edge), and buckets with equal boundaries combine.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(lo, hi, c) in &other.buckets {
            match self.buckets.iter_mut().find(|b| b.0 == lo && b.1 == hi) {
                Some(b) => b.2 += c,
                None => self.buckets.push((lo, hi, c)),
            }
        }
        self.buckets.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The boundary pins: these exact numbers are the wire format.
    #[test]
    fn bucket_boundaries_are_pinned() {
        // Unit buckets below 16.
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
            assert_eq!(bucket_hi(v as usize), v + 1);
        }
        // First octave [16, 32): width-2 sub-buckets.
        assert_eq!(bucket_index(16), 16);
        assert_eq!((bucket_lo(16), bucket_hi(16)), (16, 18));
        assert_eq!(bucket_index(17), 16);
        assert_eq!(bucket_index(18), 17);
        assert_eq!(bucket_index(31), 23);
        assert_eq!((bucket_lo(23), bucket_hi(23)), (30, 32));
        // Second octave [32, 64): width-4 sub-buckets.
        assert_eq!(bucket_index(32), 24);
        assert_eq!((bucket_lo(24), bucket_hi(24)), (32, 36));
        assert_eq!(bucket_index(63), 31);
        assert_eq!((bucket_lo(31), bucket_hi(31)), (60, 64));
        // A large value: 1000 = 0b1111101000, msb 9, sub (1000>>6)&7 = 7.
        assert_eq!(bucket_index(1000), (16 + (9 - 4) * 8 + 7) as usize);
        assert_eq!(bucket_lo(bucket_index(1000)), 960);
        assert_eq!(bucket_hi(bucket_index(1000)), 1024);
    }

    #[test]
    fn bucket_index_is_monotone_and_consistent() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index not monotone at {v}");
            assert!(bucket_lo(i) <= v && v < bucket_hi(i), "v={v} i={i}");
            prev = i;
        }
        // Top of the range does not overflow (the call itself is the
        // assertion: a shift overflow would panic in debug builds).
        let top = bucket_index(u64::MAX);
        assert!(bucket_lo(top) > 0);
        assert_eq!(bucket_hi(top), u64::MAX);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.6).abs() < 1e-12);
        // Small values are exact; the p50 of [1,2,2,3,100] is 2.
        assert_eq!(h.quantile(0.5), 2);
        // The max is clamped to the exact recorded maximum.
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1, 2, 1), (2, 3, 2), (3, 4, 1), (96, 104, 1)]
        );
    }

    #[test]
    fn snapshot_round_trips() {
        let mut h = Histogram::new();
        for v in 0..2000u64 {
            h.record(v % 37);
            h.record(v);
        }
        let snap = h.snapshot();
        let back = Histogram::from_snapshot(&snap);
        assert_eq!(h, back);
        let json = serde_json::to_string(&snap).unwrap();
        let reparsed: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, reparsed);
    }

    #[test]
    fn merge_preserves_exact_max_above_power_of_two_boundaries() {
        // 17 and 33 sit just above octave boundaries: their buckets are
        // [16, 18) and [32, 36), so a bucket-derived max would report 17
        // and 35. The snapshot must keep the exact observed values.
        let mut a = Histogram::new();
        a.record(17);
        let mut b = Histogram::new();
        b.record(33);
        b.record(5);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 55);
        assert_eq!(merged.min, 5);
        assert_eq!(merged.max, 33, "max must be exact, not the bucket edge 35");
        assert_eq!(merged.buckets, vec![(5, 6, 1), (16, 18, 1), (32, 36, 1)]);
        // Shared buckets combine rather than duplicate.
        let mut c = Histogram::new();
        c.record(34);
        merged.merge(&c.snapshot());
        assert_eq!(merged.max, 34);
        assert!(
            merged.buckets.contains(&(32, 36, 2)),
            "{:?}",
            merged.buckets
        );
        // Merging an empty snapshot is a no-op; merging into one copies.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
