//! The discrete-event engine.
//!
//! Instead of iterating lockstep slots, [`DesEngine`] drains an
//! [`EventQueue`]. The scheme's calendar is still consulted once per slot
//! (at each [`EventKind::PlaybackTick`]), but every transmission then
//! lives as explicit `Send` → `Deliver` events whose times need not be
//! slot-aligned: the latency model can land a packet mid-slot and the
//! uplink gate can push a send past its calendar slot.
//!
//! # Two regimes
//!
//! **Strict (slot-faithful)** — fixed latencies, unconstrained uplinks,
//! no churn ([`DesConfig::is_slot_faithful`]). The engine replicates the
//! slot engines' validation sequence verbatim, in the same order (unknown
//! node, zero latency, crash suppression, holdings, send capacity, loss
//! draw, receive collision), consumes loss-RNG draws in the same order,
//! and produces the same errors for the same scheme bugs. Every event
//! lands on a slot boundary, so the run is field-for-field identical to
//! [`clustream_sim::FastEngine`] — enforced by `tests/des_differential.rs`.
//!
//! **Relaxed** — any jitter, uplink serialization, or churn. Capacity and
//! receive-collision *errors* stop making sense (the network queues
//! instead), so nodes become reactive: a calendar entry whose packet has
//! not arrived yet is deferred and dispatched the moment the packet is
//! delivered; the uplink gate serializes concurrent sends; departed
//! (churned-out) nodes fall silent. Runs report losses like fault runs do
//! rather than erroring.

use crate::config::DesConfig;
use crate::event::{EventKind, EventQueue, TICKS_PER_SLOT};
use crate::uplink::{UplinkGate, UplinkModel};
use clustream_core::{
    Availability, CoreError, NodeId, NodeQos, PacketId, QosReport, Scheme, Slot, StateView,
    Transmission,
};
use clustream_sim::faults::{FaultPlan, LossReport};
use clustream_sim::metrics::TrafficStats;
use clustream_sim::trace::EventTrace;
use clustream_sim::{ArrivalTable, RunResult};
use clustream_workloads::ResolvedChurnAction;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

/// Counters describing one DES run (the bench denominators).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesStats {
    /// Events popped and processed (including the final flush).
    pub events_processed: u64,
    /// Events ever scheduled.
    pub events_scheduled: u64,
    /// Send events dispatched.
    pub sends: u64,
    /// Deliver events fired.
    pub deliveries: u64,
    /// Calendar entries deferred because the packet had not arrived yet
    /// (relaxed mode only).
    pub deferred_sends: u64,
    /// Deferred entries later released by a delivery.
    pub released_sends: u64,
    /// Churn departures applied.
    pub churn_leaves: u64,
    /// Churn joins observed (static schemes cannot grow, so joins are
    /// counted and ignored).
    pub churn_joins_ignored: u64,
    /// Deliveries dropped because the receiver had departed.
    pub deliveries_to_departed: u64,
}

/// Simulator ground truth exposed to schemes, same shape as the slot
/// engines'.
struct DesState {
    held: Vec<HashSet<u64>>,
    newest: Vec<Option<u64>>,
    slot: Slot,
    availability: Availability,
}

impl StateView for DesState {
    fn holds(&self, node: NodeId, packet: PacketId) -> bool {
        if node.is_source() {
            self.availability.produced(packet, self.slot)
        } else {
            self.held[node.index()].contains(&packet.seq())
        }
    }

    fn newest(&self, node: NodeId) -> Option<PacketId> {
        self.newest[node.index()].map(PacketId)
    }

    fn slot(&self) -> Slot {
        self.slot
    }
}

/// Relaxed-mode admission: crash/departure suppression, uplink gating,
/// loss draw, then schedule the `Send` event. Free function so both the
/// calendar path and the deferred-release path share it without fighting
/// the borrow checker.
#[allow(clippy::too_many_arguments)]
fn admit_relaxed(
    tx: &Transmission,
    now: u64,
    capacity: usize,
    departed: &[bool],
    faults: Option<&FaultPlan>,
    loss_rng: &mut Option<ChaCha8Rng>,
    loss_report: &mut LossReport,
    uplink: UplinkModel,
    gate: &mut UplinkGate,
    stats: &mut TrafficStats,
    trace: &mut Option<EventTrace>,
    des_stats: &mut DesStats,
    q: &mut EventQueue,
) {
    let slot = now / TICKS_PER_SLOT;
    if let Some(f) = faults {
        if f.crashed(tx.from, slot) {
            loss_report.crash_suppressed += 1;
            return;
        }
    }
    // A departed member is fail-silent, like a crash.
    if departed[tx.from.index()] {
        loss_report.crash_suppressed += 1;
        return;
    }
    let dispatch = match uplink {
        UplinkModel::Unconstrained => now,
        UplinkModel::Serialized => gate.admit(tx.from, capacity, now),
    };
    // The uplink time is spent whether or not the packet survives.
    if let (Some(f), Some(r)) = (faults, loss_rng.as_mut()) {
        if f.loss_rate > 0.0 && r.gen_bool(f.loss_rate) {
            loss_report.lost_in_flight += 1;
            return;
        }
    }
    stats.record(tx);
    if let Some(tr) = trace.as_mut() {
        tr.push(dispatch / TICKS_PER_SLOT, tx);
    }
    des_stats.sends += 1;
    q.push(dispatch, EventKind::Send(*tx));
}

/// The discrete-event engine. Reusable across runs; [`DesEngine::stats`]
/// reports the event counters of the most recent run.
#[derive(Debug, Default)]
pub struct DesEngine {
    stats: DesStats,
}

impl DesEngine {
    /// A fresh engine.
    pub fn new() -> Self {
        DesEngine::default()
    }

    /// Event counters of the most recent [`DesEngine::run`].
    pub fn stats(&self) -> &DesStats {
        &self.stats
    }

    /// Run `scheme` under `cfg`, returning the same [`RunResult`] shape as
    /// the slot engines (so [`clustream_sim::diff_fields`] applies
    /// unchanged).
    pub fn run(
        &mut self,
        scheme: &mut dyn Scheme,
        cfg: &DesConfig,
    ) -> Result<RunResult, CoreError> {
        cfg.validate().map_err(CoreError::InvalidConfig)?;
        self.stats = DesStats::default();
        let sim = &cfg.sim;
        let strict = cfg.is_slot_faithful();

        let n_ids = scheme.id_space();
        if n_ids == 0 {
            return Err(CoreError::InvalidConfig("empty id space".into()));
        }
        let receivers = scheme.receivers();
        for r in &receivers {
            if r.index() >= n_ids {
                return Err(CoreError::UnknownNode { node: *r });
            }
        }

        let mut state = DesState {
            held: vec![HashSet::new(); n_ids],
            newest: vec![None; n_ids],
            slot: Slot(0),
            availability: scheme.availability(),
        };
        let mut arrivals = ArrivalTable::new(n_ids, sim.track_packets);
        let mut stats = TrafficStats::new(n_ids);
        let mut q = EventQueue::new();
        let mut gate = UplinkGate::new(n_ids);

        // Strict mode: one pending arrival per (arrival slot, node), the
        // value being the occupying packet — the receive-capacity guard,
        // mirroring the slot engines' `scheduled_arrivals` set.
        let mut occupied: HashMap<(u64, u32), PacketId> = HashMap::new();
        // Relaxed mode: calendar entries waiting for their packet, keyed
        // by (sender, packet).
        let mut waiting: HashMap<(u32, u64), Vec<Transmission>> = HashMap::new();
        let mut departed = vec![false; n_ids];

        let is_receiver: Vec<bool> = {
            let mut v = vec![false; n_ids];
            for r in &receivers {
                v[r.index()] = true;
            }
            v
        };
        let mut remaining: u64 = receivers.len() as u64 * sim.track_packets;

        let mut out: Vec<Transmission> = Vec::new();
        let mut send_counts: Vec<u32> = vec![0; n_ids];
        let mut touched: Vec<usize> = Vec::new();

        let mut loss_report = LossReport::default();
        let mut loss_rng = sim
            .faults
            .as_ref()
            .map(|f| ChaCha8Rng::seed_from_u64(f.seed));
        let mut lat_rng = cfg
            .latency
            .needs_rng()
            .then(|| ChaCha8Rng::seed_from_u64(cfg.latency_seed));
        let mut trace = sim.record_trace.then(EventTrace::default);

        if sim.max_slots > 0 {
            q.push(0, EventKind::PlaybackTick);
        }
        if let Some(churn) = &cfg.churn {
            let initial: Vec<u64> = receivers.iter().map(|r| r.0 as u64).collect();
            let protected: Vec<u64> = receivers
                .iter()
                .filter(|r| scheme.send_capacity(**r) > 1)
                .map(|r| r.0 as u64)
                .collect();
            for ev in churn.resolve(&initial, &protected) {
                if ev.slot < sim.max_slots {
                    q.push(ev.slot * TICKS_PER_SLOT, EventKind::Churn(ev.action));
                }
            }
        }

        let mut slots_run = 0u64;
        let mut stopped = false;

        while let Some(ev) = q.pop() {
            self.stats.events_processed += 1;
            match ev.kind {
                EventKind::Deliver { to, packet } => {
                    self.stats.deliveries += 1;
                    // First slot the packet is usable: the next slot
                    // boundary at or after the arrival tick.
                    let usable = ev.time.div_ceil(TICKS_PER_SLOT);
                    if stopped || usable >= sim.max_slots {
                        // The playback loop never reaches this slot: record
                        // the arrival only, exactly like the slot engines'
                        // post-loop flush of the pending queue.
                        arrivals.record(to, packet, Slot(usable));
                        continue;
                    }
                    if strict {
                        occupied.remove(&(usable - 1, to.0));
                    } else if departed[to.index()] {
                        self.stats.deliveries_to_departed += 1;
                        continue;
                    }
                    let cell = &mut state.held[to.index()];
                    if !cell.insert(packet.seq()) {
                        stats.record_duplicate();
                        continue;
                    }
                    let nw = &mut state.newest[to.index()];
                    if nw.is_none_or(|n| packet.seq() > n) {
                        *nw = Some(packet.seq());
                    }
                    if packet.seq() < sim.track_packets
                        && is_receiver[to.index()]
                        && arrivals.usable_slot(to, packet).is_none()
                    {
                        remaining -= 1;
                    }
                    arrivals.record(to, packet, Slot(usable));
                    if !strict {
                        if let Some(txs) = waiting.remove(&(to.0, packet.seq())) {
                            for tx in txs {
                                self.stats.released_sends += 1;
                                let cap = scheme.send_capacity(tx.from);
                                admit_relaxed(
                                    &tx,
                                    ev.time,
                                    cap,
                                    &departed,
                                    sim.faults.as_ref(),
                                    &mut loss_rng,
                                    &mut loss_report,
                                    cfg.uplink,
                                    &mut gate,
                                    &mut stats,
                                    &mut trace,
                                    &mut self.stats,
                                    &mut q,
                                );
                            }
                        }
                    }
                }
                EventKind::Churn(action) => match action {
                    ResolvedChurnAction::Leave { ext } => {
                        if (ext as usize) < n_ids {
                            departed[ext as usize] = true;
                            self.stats.churn_leaves += 1;
                        }
                    }
                    ResolvedChurnAction::Join { .. } => {
                        self.stats.churn_joins_ignored += 1;
                    }
                },
                EventKind::PlaybackTick => {
                    if stopped {
                        continue;
                    }
                    let t = ev.time / TICKS_PER_SLOT;
                    slots_run = t + 1;
                    if sim.stop_when_complete && remaining == 0 {
                        stopped = true;
                        continue;
                    }
                    state.slot = Slot(t);
                    out.clear();
                    scheme.transmissions(Slot(t), &state, &mut out);
                    for idx in touched.drain(..) {
                        send_counts[idx] = 0;
                    }
                    for tx in &out {
                        if tx.from.index() >= n_ids {
                            return Err(CoreError::UnknownNode { node: tx.from });
                        }
                        if tx.to.index() >= n_ids {
                            return Err(CoreError::UnknownNode { node: tx.to });
                        }
                        if tx.latency == 0 {
                            return Err(CoreError::InvalidConfig(format!(
                                "zero-latency transmission {} → {}",
                                tx.from, tx.to
                            )));
                        }

                        if strict {
                            if let Some(f) = &sim.faults {
                                if f.crashed(tx.from, t) {
                                    loss_report.crash_suppressed += 1;
                                    continue;
                                }
                            }
                            if tx.from.is_source() {
                                if !state.availability.produced(tx.packet, Slot(t)) {
                                    return Err(CoreError::PacketNotProduced {
                                        slot: Slot(t),
                                        packet: tx.packet,
                                    });
                                }
                            } else if !state.held[tx.from.index()].contains(&tx.packet.seq()) {
                                if sim.faults.is_some() {
                                    loss_report.propagation_suppressed += 1;
                                    continue;
                                }
                                return Err(CoreError::PacketNotHeld {
                                    node: tx.from,
                                    slot: Slot(t),
                                    packet: tx.packet,
                                });
                            }
                            let c = &mut send_counts[tx.from.index()];
                            if *c == 0 {
                                touched.push(tx.from.index());
                            }
                            *c += 1;
                            let cap = scheme.send_capacity(tx.from);
                            if *c as usize > cap {
                                return Err(CoreError::SendCapacityExceeded {
                                    node: tx.from,
                                    slot: Slot(t),
                                    capacity: cap,
                                });
                            }
                            if let (Some(f), Some(r)) = (&sim.faults, loss_rng.as_mut()) {
                                if f.loss_rate > 0.0 && r.gen_bool(f.loss_rate) {
                                    loss_report.lost_in_flight += 1;
                                    continue;
                                }
                            }
                            let arrival_slot = t + tx.latency as u64 - 1;
                            if let Some(&other) = occupied.get(&(arrival_slot, tx.to.0)) {
                                return Err(CoreError::ReceiveCollision {
                                    node: tx.to,
                                    slot: Slot(arrival_slot),
                                    packets: (other, tx.packet),
                                });
                            }
                            occupied.insert((arrival_slot, tx.to.0), tx.packet);
                            stats.record(tx);
                            if let Some(tr) = trace.as_mut() {
                                tr.push(t, tx);
                            }
                            self.stats.sends += 1;
                            q.push(ev.time, EventKind::Send(*tx));
                        } else {
                            if tx.from.is_source() {
                                if !state.availability.produced(tx.packet, Slot(t)) {
                                    return Err(CoreError::PacketNotProduced {
                                        slot: Slot(t),
                                        packet: tx.packet,
                                    });
                                }
                            } else if !state.held[tx.from.index()].contains(&tx.packet.seq()) {
                                // Reactive node: send the moment it arrives.
                                self.stats.deferred_sends += 1;
                                waiting
                                    .entry((tx.from.0, tx.packet.seq()))
                                    .or_default()
                                    .push(*tx);
                                continue;
                            }
                            let cap = scheme.send_capacity(tx.from);
                            admit_relaxed(
                                tx,
                                ev.time,
                                cap,
                                &departed,
                                sim.faults.as_ref(),
                                &mut loss_rng,
                                &mut loss_report,
                                cfg.uplink,
                                &mut gate,
                                &mut stats,
                                &mut trace,
                                &mut self.stats,
                                &mut q,
                            );
                        }
                    }
                    if t + 1 < sim.max_slots {
                        q.push((t + 1) * TICKS_PER_SLOT, EventKind::PlaybackTick);
                    }
                }
                EventKind::Send(tx) => {
                    if stopped {
                        continue;
                    }
                    let lat = cfg.latency.sample_ticks(tx.latency, &mut lat_rng);
                    q.push(
                        ev.time + lat,
                        EventKind::Deliver {
                            to: tx.to,
                            packet: tx.packet,
                        },
                    );
                }
            }
        }
        self.stats.events_scheduled = q.total_pushed();

        // Calendar entries still waiting for a packet that never came are
        // downstream loss propagation, same as the slot engines count it.
        for txs in waiting.values() {
            loss_report.propagation_suppressed += txs.len() as u64;
        }

        let lossy = sim.faults.is_some() || cfg.churn.is_some();
        let mut nodes = Vec::with_capacity(receivers.len());
        for r in &receivers {
            let (delay, buffer) = if lossy {
                let pb = arrivals.analyze_lossy(*r);
                if pb.missing > 0 {
                    loss_report.missing.push((*r, pb.missing));
                }
                (pb.playback_delay, pb.max_buffer)
            } else {
                let pb = arrivals.analyze(*r)?;
                (pb.playback_delay, pb.max_buffer)
            };
            nodes.push(NodeQos {
                node: *r,
                playback_delay: delay,
                max_buffer: buffer,
                out_neighbors: stats.out_degree(*r),
                in_neighbors: stats.in_degree(*r),
                neighbors: stats.degree(*r),
            });
        }

        Ok(RunResult {
            scheme: scheme.name(),
            slots_run,
            arrivals,
            qos: QosReport::new(scheme.name(), nodes),
            total_transmissions: stats.total_transmissions(),
            duplicate_deliveries: stats.duplicate_deliveries(),
            loss: lossy.then_some(loss_report),
            trace,
            upload_counts: stats.upload_counts().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use clustream_core::SOURCE;
    use clustream_sim::{diff_fields, SimConfig, Simulator};

    /// S → 1 → 2 → … → N, the engine-exercise scheme used across the
    /// workspace.
    struct Chain {
        n: usize,
    }

    impl Scheme for Chain {
        fn name(&self) -> String {
            format!("chain({})", self.n)
        }
        fn num_receivers(&self) -> usize {
            self.n
        }
        fn transmissions(&mut self, slot: Slot, _: &dyn StateView, out: &mut Vec<Transmission>) {
            let t = slot.t();
            out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
            for i in 1..self.n as u64 {
                if t >= i {
                    out.push(Transmission::local(
                        NodeId(i as u32),
                        NodeId(i as u32 + 1),
                        PacketId(t - i),
                    ));
                }
            }
        }
    }

    #[test]
    fn slot_faithful_matches_reference_engine() {
        let sim_cfg = SimConfig::until_complete(16, 200);
        let want = Simulator::run(&mut Chain { n: 6 }, &sim_cfg).unwrap();
        let got = DesEngine::new()
            .run(&mut Chain { n: 6 }, &DesConfig::slot_faithful(sim_cfg))
            .unwrap();
        assert_eq!(diff_fields(&want, &got), Vec::<&str>::new());
    }

    #[test]
    fn slot_faithful_matches_reference_with_faults() {
        use clustream_sim::FaultPlan;
        let sim_cfg = SimConfig::with_faults(24, 80, FaultPlan::loss(0.25, 42));
        let want = Simulator::run(&mut Chain { n: 6 }, &sim_cfg).unwrap();
        let got = DesEngine::new()
            .run(&mut Chain { n: 6 }, &DesConfig::slot_faithful(sim_cfg))
            .unwrap();
        assert_eq!(diff_fields(&want, &got), Vec::<&str>::new());
        assert!(got.loss.as_ref().unwrap().lost_in_flight > 0);
    }

    #[test]
    fn slot_faithful_reproduces_validation_errors() {
        struct Collide;
        impl Scheme for Collide {
            fn name(&self) -> String {
                "collide".into()
            }
            fn num_receivers(&self) -> usize {
                3
            }
            fn send_capacity(&self, node: NodeId) -> usize {
                if node.is_source() {
                    2
                } else {
                    1
                }
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                if slot.t() == 0 {
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(0)));
                    out.push(Transmission::local(SOURCE, NodeId(1), PacketId(1)));
                }
            }
        }
        let sim_cfg = SimConfig::until_complete(1, 10);
        let want = Simulator::run(&mut Collide, &sim_cfg).unwrap_err();
        let got = DesEngine::new()
            .run(&mut Collide, &DesConfig::slot_faithful(sim_cfg))
            .unwrap_err();
        assert_eq!(want.to_string(), got.to_string());
    }

    #[test]
    fn jitter_inflates_delay_but_still_completes() {
        let sim_cfg = SimConfig::until_complete(16, 400);
        let clean = DesEngine::new()
            .run(
                &mut Chain { n: 5 },
                &DesConfig::slot_faithful(sim_cfg.clone()),
            )
            .unwrap();
        let jittered = DesEngine::new()
            .run(
                &mut Chain { n: 5 },
                &DesConfig::slot_faithful(sim_cfg)
                    .with_latency(LatencyModel::UniformJitter { jitter: 2.0 })
                    .seeded(7),
            )
            .unwrap();
        assert!(
            jittered.qos.max_delay() >= clean.qos.max_delay(),
            "jitter cannot shrink the worst-case delay ({} < {})",
            jittered.qos.max_delay(),
            clean.qos.max_delay()
        );
        // Completion takes longer, so the calendar keeps streaming longer.
        assert!(jittered.slots_run >= clean.slots_run);
        // Deterministic under a fixed latency seed.
        let again = DesEngine::new()
            .run(
                &mut Chain { n: 5 },
                &DesConfig::slot_faithful(SimConfig::until_complete(16, 400))
                    .with_latency(LatencyModel::UniformJitter { jitter: 2.0 })
                    .seeded(7),
            )
            .unwrap();
        assert_eq!(diff_fields(&jittered, &again), Vec::<&str>::new());
    }

    #[test]
    fn serialized_uplink_delays_burst_sends() {
        // Source with capacity 2 multicasts packet t to both nodes each
        // slot. Unconstrained: both dispatch at the slot start. Serialized:
        // the second send occupies the uplink half a slot later, landing
        // mid-slot and usable one slot later.
        struct Burst;
        impl Scheme for Burst {
            fn name(&self) -> String {
                "burst".into()
            }
            fn num_receivers(&self) -> usize {
                2
            }
            fn send_capacity(&self, node: NodeId) -> usize {
                if node.is_source() {
                    2
                } else {
                    1
                }
            }
            fn transmissions(
                &mut self,
                slot: Slot,
                _: &dyn StateView,
                out: &mut Vec<Transmission>,
            ) {
                let t = slot.t();
                out.push(Transmission::local(SOURCE, NodeId(1), PacketId(t)));
                out.push(Transmission::local(SOURCE, NodeId(2), PacketId(t)));
            }
        }
        let cfg = DesConfig::slot_faithful(SimConfig::until_complete(8, 100))
            .with_uplink(UplinkModel::Serialized);
        let r = DesEngine::new().run(&mut Burst, &cfg).unwrap();
        // Node 1's copy dispatches on the boundary: usable next slot.
        assert_eq!(
            r.arrivals.usable_slot(NodeId(1), PacketId(0)),
            Some(Slot(1))
        );
        // Node 2's copy dispatches half a slot late: usable one slot later.
        assert_eq!(
            r.arrivals.usable_slot(NodeId(2), PacketId(0)),
            Some(Slot(2))
        );
        assert_eq!(r.qos.node(NodeId(1)).unwrap().playback_delay, 1);
        assert_eq!(r.qos.node(NodeId(2)).unwrap().playback_delay, 2);
    }

    #[test]
    fn deferred_sends_release_on_arrival() {
        // Under heavy jitter a chain node's calendar entry routinely fires
        // before the packet arrived; the reactive path must still deliver
        // everything (no Hiccup) within a generous horizon.
        let cfg = DesConfig::slot_faithful(SimConfig::until_complete(12, 2000))
            .with_latency(LatencyModel::UniformJitter { jitter: 3.0 })
            .seeded(11);
        let mut engine = DesEngine::new();
        let r = engine.run(&mut Chain { n: 6 }, &cfg).unwrap();
        assert!(r.arrivals.complete_for(NodeId(6)));
        assert!(
            engine.stats().deferred_sends > 0,
            "3-slot jitter on a chain must defer some forwards"
        );
        // Releases can only lag deferrals (entries whose packet lands
        // after the early stop are never released).
        assert!(engine.stats().released_sends > 0);
        assert!(engine.stats().released_sends <= engine.stats().deferred_sends);
    }

    #[test]
    fn churned_out_node_starves_downstream() {
        use clustream_workloads::{ChurnAction, ChurnEvent, ChurnTrace, ChurnTraceConfig};
        // Hand-built trace: rank 1 (node 2, no supers) leaves at slot 6.
        let trace = ChurnTrace {
            config: ChurnTraceConfig {
                initial_members: 5,
                slots: 40,
                join_rate: 0.0,
                leave_rate: 0.0,
                seed: 0,
            },
            events: vec![ChurnEvent {
                slot: 6,
                action: ChurnAction::Leave { victim_rank: 1 },
            }],
        };
        let cfg = DesConfig::slot_faithful(SimConfig {
            max_slots: 40,
            track_packets: 12,
            ..SimConfig::default()
        })
        .with_churn(trace);
        let mut engine = DesEngine::new();
        let r = engine.run(&mut Chain { n: 5 }, &cfg).unwrap();
        assert_eq!(engine.stats().churn_leaves, 1);
        let loss = r.loss.as_ref().expect("churn runs report loss");
        let missing = |id: u32| {
            loss.missing
                .iter()
                .find(|(n, _)| n.0 == id)
                .map_or(0, |(_, m)| *m)
        };
        assert_eq!(missing(1), 0);
        // Node 2 held packets 0..=4 when it left at slot 6 (chain: packet
        // j usable at node 2 from slot j + 2) and misses the rest.
        assert_eq!(missing(2), 7, "the departed node stops receiving");
        assert!(missing(3) > 0, "downstream of the departed node starves");
        assert!(missing(5) > 0);
        assert!(loss.crash_suppressed > 0, "departed sends are suppressed");
    }

    #[test]
    fn event_counters_populate() {
        let mut engine = DesEngine::new();
        let _ = engine
            .run(
                &mut Chain { n: 4 },
                &DesConfig::slot_faithful(SimConfig::until_complete(8, 100)),
            )
            .unwrap();
        let s = engine.stats();
        assert!(s.events_processed > 0);
        assert_eq!(s.events_processed, s.events_scheduled);
        assert!(s.sends > 0);
        assert!(s.deliveries > 0);
    }
}
