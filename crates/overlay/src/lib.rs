//! Multi-cluster streaming (§2.1): the super-tree `τ` and the composed
//! end-to-end session.
//!
//! Nodes live in `K` clusters; intra-cluster transmission takes `T_i = 1`
//! slot, inter-cluster transmission takes `T_c > 1` slots. Each cluster
//! `i` has two super nodes: `S_i` (capacity `D`, like the source) and
//! `S'_i` (capacity `d`). The stream is distributed over a backbone tree
//! on `S_1 … S_K` rooted at the source `S` (degree `D`, interior degree
//! `≤ D − 1`); each `S_i` relays one packet per slot to its backbone
//! children (latency `T_c`) and to `S'_i` (latency 1), and `S'_i` roots an
//! intra-cluster scheme — interior-disjoint multi-trees or a hypercube
//! chain — over the cluster's members.
//!
//! Theorem 1: worst-case playback delay is on the order of
//! `T_c · log_{D−1} K + T_i · d(h−1)`.

#![warn(missing_docs)]

pub mod planner;
pub mod session;
pub mod supertree;

pub use planner::{plan_cluster, plan_session, ClusterRequirement, PlannedCluster};
pub use session::{ClusterSession, IntraScheme};
pub use supertree::Backbone;
