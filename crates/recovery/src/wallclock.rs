//! Wall-clock failure detection for the networked runtime.
//!
//! The DES drives [`crate::FailureDetector`] with simulated ticks and
//! explicit timeout events; a real `clustream-node` process has neither —
//! it has a wall clock and a slot loop. [`WallClockDetector`] wraps the
//! same detector core for that setting: one local watcher, timestamps in
//! UNIX nanoseconds, and a poll called once per slot boundary instead of
//! a timer queue. Silence verdicts fire **once** per subject; the caller
//! forwards them to the orchestrator as `Suspect` frames, where the
//! cluster-level tally (again the shared [`crate::FailureDetector`], via
//! [`crate::FailureDetector::suspect`]) counts distinct watchers.

use crate::detector::{FailureDetector, TimeoutVerdict};
use std::collections::BTreeSet;

/// Single-watcher, wall-clock view of the failure detector.
#[derive(Debug, Clone)]
pub struct WallClockDetector {
    inner: FailureDetector,
    watcher: u32,
    watched: BTreeSet<u32>,
    reported: BTreeSet<u32>,
}

impl WallClockDetector {
    /// A detector for local watcher `watcher` that suspects a subject
    /// after `timeout_ns` nanoseconds of silence.
    pub fn new(watcher: u32, timeout_ns: u64) -> Self {
        WallClockDetector {
            // Threshold 1: locally, one watcher's silence IS the verdict;
            // the cross-watcher tally happens at the orchestrator.
            inner: FailureDetector::new(1, timeout_ns),
            watcher,
            watched: BTreeSet::new(),
            reported: BTreeSet::new(),
        }
    }

    /// Start (or refresh) watching `subject`; `now_ns` starts its
    /// silence window. Equivalent to [`WallClockDetector::heard`] — a
    /// watch is just a synthetic first hearing.
    pub fn watch(&mut self, subject: u32, now_ns: u64) {
        self.heard(subject, now_ns);
    }

    /// Record traffic from `subject` at `now_ns`. Hearing from a subject
    /// withdraws any un-forwarded suspicion; an already-reported subject
    /// stays reported (the orchestrator saw the frame — retracting would
    /// need a protocol message the tally deliberately doesn't have, as
    /// real traffic from the subject also reaches other watchers).
    pub fn heard(&mut self, subject: u32, now_ns: u64) {
        self.watched.insert(subject);
        self.inner.record(self.watcher, subject, now_ns);
    }

    /// Whether `subject` is on the watch list.
    pub fn watches(&self, subject: u32) -> bool {
        self.watched.contains(&subject)
    }

    /// Evaluate every watched subject at `now_ns`, returning the
    /// subjects that crossed the silence horizon **this poll** (each
    /// fires exactly once). `still_owed` filters the scan: a subject
    /// that owes this node nothing further is silent by design, not
    /// dead — scheduled senders go quiet when their calendar ends.
    pub fn poll(&mut self, now_ns: u64, mut still_owed: impl FnMut(u32) -> bool) -> Vec<u32> {
        let mut newly = Vec::new();
        for &subject in &self.watched {
            if self.reported.contains(&subject) || !still_owed(subject) {
                continue;
            }
            if let TimeoutVerdict::Suspect = self.inner.check(self.watcher, subject, now_ns) {
                newly.push(subject);
            }
        }
        for &s in &newly {
            self.reported.insert(s);
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn silence_past_timeout_fires_once() {
        let mut d = WallClockDetector::new(7, 10 * MS);
        d.watch(2, 0);
        assert!(d.watches(2));
        assert_eq!(d.poll(5 * MS, |_| true), Vec::<u32>::new());
        assert_eq!(d.poll(10 * MS, |_| true), vec![2]);
        // Fired once; later polls stay quiet even under more silence.
        assert_eq!(d.poll(50 * MS, |_| true), Vec::<u32>::new());
    }

    #[test]
    fn traffic_resets_the_silence_window() {
        let mut d = WallClockDetector::new(7, 10 * MS);
        d.watch(2, 0);
        d.heard(2, 8 * MS);
        assert_eq!(d.poll(12 * MS, |_| true), Vec::<u32>::new());
        assert_eq!(d.poll(18 * MS, |_| true), vec![2]);
    }

    #[test]
    fn subjects_owing_nothing_are_never_suspected() {
        let mut d = WallClockDetector::new(7, 10 * MS);
        d.watch(2, 0);
        d.watch(3, 0);
        // Node 3's calendar toward us has ended: silence is expected.
        assert_eq!(d.poll(30 * MS, |s| s == 2), vec![2]);
    }

    #[test]
    fn multiple_subjects_fire_independently() {
        let mut d = WallClockDetector::new(1, 10 * MS);
        d.watch(5, 0);
        d.watch(6, 5 * MS);
        assert_eq!(d.poll(11 * MS, |_| true), vec![5]);
        assert_eq!(d.poll(15 * MS, |_| true), vec![6]);
    }
}
