//! Per-slot transmission traces.
//!
//! With [`crate::SimConfig::record_trace`] enabled, the engine records
//! every validated transmission (slot, sender, receiver, packet, latency).
//! Traces make schedule behaviour inspectable — e.g. regenerating the
//! paper's Figure 2 (a node's receive/send calendar) from a live run — and
//! serialize to JSON lines for external tooling.

use clustream_core::{NodeId, PacketId, Transmission};
use serde::{Deserialize, Serialize};

/// One recorded transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Slot in which the send happened.
    pub slot: u64,
    /// Sender id.
    pub from: u32,
    /// Receiver id.
    pub to: u32,
    /// Packet sequence number.
    pub packet: u64,
    /// Latency in slots.
    pub latency: u32,
}

/// A full run trace, in slot order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTrace {
    /// Events in the order they were validated.
    pub events: Vec<TraceEvent>,
}

impl EventTrace {
    /// Record one transmission.
    pub fn push(&mut self, slot: u64, tx: &Transmission) {
        self.events.push(TraceEvent {
            slot,
            from: tx.from.0,
            to: tx.to.0,
            packet: tx.packet.seq(),
            latency: tx.latency,
        });
    }

    /// Events sent during `slot`.
    pub fn in_slot(&self, slot: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.slot == slot)
    }

    /// Events sent by `node`.
    pub fn sent_by(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.from == node.0)
    }

    /// Events received by `node`.
    pub fn received_by(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.to == node.0)
    }

    /// All events carrying `packet`.
    pub fn of_packet(&self, packet: PacketId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.packet == packet.seq())
    }

    /// The delivery path of `packet` to `node`, reconstructed backwards
    /// from the receiving hop (source-rooted schemes only; `None` if the
    /// node never received it).
    pub fn path_to(&self, node: NodeId, packet: PacketId) -> Option<Vec<u32>> {
        let mut path = vec![node.0];
        let mut cur = node.0;
        // Bound iterations by the event count to guard against cycles.
        for _ in 0..=self.events.len() {
            let hop = self
                .events
                .iter()
                .find(|e| e.packet == packet.seq() && e.to == cur)?;
            path.push(hop.from);
            if hop.from == 0 {
                path.reverse();
                return Some(path);
            }
            cur = hop.from;
        }
        None
    }

    /// Serialize as JSON lines (one event per line).
    pub fn to_jsonl(&self) -> String {
        self.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("event serializes"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parse a JSON-lines export back into a trace. Blank lines are
    /// skipped; the first malformed line aborts with its line number.
    pub fn from_jsonl(input: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (i, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev: TraceEvent = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid trace event: {e}", i + 1))?;
            events.push(ev);
        }
        Ok(EventTrace { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustream_core::SOURCE;

    fn tx(from: u32, to: u32, p: u64) -> Transmission {
        Transmission::local(NodeId(from), NodeId(to), PacketId(p))
    }

    #[test]
    fn filters_select_expected_events() {
        let mut t = EventTrace::default();
        t.push(0, &tx(0, 1, 0));
        t.push(1, &tx(1, 2, 0));
        t.push(1, &tx(0, 3, 1));
        assert_eq!(t.in_slot(1).count(), 2);
        assert_eq!(t.sent_by(SOURCE).count(), 2);
        assert_eq!(t.received_by(NodeId(2)).count(), 1);
        assert_eq!(t.of_packet(PacketId(0)).count(), 2);
    }

    #[test]
    fn path_reconstruction() {
        let mut t = EventTrace::default();
        t.push(0, &tx(0, 1, 0));
        t.push(1, &tx(1, 2, 0));
        t.push(2, &tx(2, 3, 0));
        assert_eq!(t.path_to(NodeId(3), PacketId(0)), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.path_to(NodeId(1), PacketId(0)), Some(vec![0, 1]));
        assert_eq!(t.path_to(NodeId(4), PacketId(0)), None);
        assert_eq!(t.path_to(NodeId(3), PacketId(5)), None);
    }

    #[test]
    fn jsonl_roundtrips_line_by_line() {
        let mut t = EventTrace::default();
        t.push(0, &tx(0, 1, 0));
        t.push(3, &tx(1, 2, 7));
        let lines: Vec<TraceEvent> = t
            .to_jsonl()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines, t.events);
    }

    #[test]
    fn jsonl_roundtrips_through_from_jsonl() {
        let mut t = EventTrace::default();
        t.push(0, &tx(0, 1, 0));
        t.push(1, &tx(1, 2, 0));
        t.push(3, &tx(1, 2, 7));
        let back = EventTrace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back, t);

        // Empty and blank-line inputs are fine.
        assert_eq!(EventTrace::from_jsonl("").unwrap(), EventTrace::default());
        let padded = format!("\n{}\n\n", t.to_jsonl());
        assert_eq!(EventTrace::from_jsonl(&padded).unwrap(), t);

        // Malformed lines are reported with their line number.
        let err = EventTrace::from_jsonl("{\"slot\":0,").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
