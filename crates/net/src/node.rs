//! The `clustream-node` runtime: one process executing one node's
//! lowered slot schedule over real sockets.
//!
//! Threading model (the container has no async runtime, so this is
//! plain `std`): one **main loop** owns all protocol state and blocks on
//! an inbox channel with a deadline at the next slot boundary; one
//! **acceptor** thread turns incoming connections into **reader**
//! threads that decode frames into the inbox; one **writer** thread per
//! outgoing link drains a bounded queue onto the socket. The main loop
//! never blocks on a socket: enqueues are `try_send` (a full queue to a
//! dead peer drops the frame rather than stalling the stream), so a
//! SIGKILLed neighbour costs its subtree packets — which the NACK path
//! then repairs — but never wedges a survivor.
//!
//! Semantics mirror the DES relaxed mode on purpose (the replay oracle
//! depends on it): a calendar send whose packet has not arrived is
//! deferred and dispatched the moment the packet lands; missing tracked
//! packets overdue past `gap_slack` are chased with NACKs to the source;
//! upstream silence past the suspect timeout raises a `Suspect` frame to
//! the orchestrator ([`clustream_recovery::WallClockDetector`]).

use crate::frame::{read_frame, write_frame, Frame};
use crate::schedule::{ArrivalObs, LoweredSend, NodeConfig, NodeReport};
use crate::transport::{connect_retry, Conn, NetListener, Transport};
use clustream_recovery::WallClockDetector;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Command-line parameters of one node process.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// This node's id.
    pub node: u32,
    /// Socket family for every link.
    pub transport: Transport,
    /// The orchestrator's control address.
    pub control_addr: String,
    /// Directory for Unix sockets (unused under TCP).
    pub socket_dir: PathBuf,
}

/// Wall clock in UNIX nanoseconds — comparable across processes on the
/// same host, which is all a loopback cluster needs.
pub fn sys_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Transport-level counters shared between the main loop and the
/// reader/writer threads.
#[derive(Debug, Default)]
struct Counters {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
    reconnects: AtomicU64,
    send_queue_high_water: AtomicU64,
}

/// What reader threads feed the main loop.
enum Inbox {
    /// A decoded frame from any link (control or data).
    Frame(Frame),
    /// The control link closed: the orchestrator is gone, exit.
    ControlClosed,
}

/// One outgoing data link: a bounded queue drained by a writer thread.
struct Link {
    tx: mpsc::SyncSender<Frame>,
    queued: Arc<AtomicU64>,
    dead: Arc<AtomicBool>,
}

const LINK_QUEUE: usize = 4096;

impl Link {
    /// Open a link: dial with retry, then spawn the writer.
    fn open(
        transport: Transport,
        addr: &str,
        counters: Arc<Counters>,
        deadline: Instant,
    ) -> Result<Link, String> {
        let (mut conn, failures) =
            connect_retry(transport, addr, deadline).map_err(|e| e.to_string())?;
        counters.reconnects.fetch_add(failures, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel::<Frame>(LINK_QUEUE);
        let queued = Arc::new(AtomicU64::new(0));
        let dead = Arc::new(AtomicBool::new(false));
        let link = Link {
            tx,
            queued: Arc::clone(&queued),
            dead: Arc::clone(&dead),
        };
        std::thread::spawn(move || {
            while let Ok(frame) = rx.recv() {
                queued.fetch_sub(1, Ordering::Relaxed);
                if dead.load(Ordering::Relaxed) {
                    continue; // drain-and-discard after a write error
                }
                match write_frame(&mut conn, &frame) {
                    Ok(n) => {
                        counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                        counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(_) => dead.store(true, Ordering::Relaxed),
                }
            }
        });
        Ok(link)
    }

    /// Enqueue without ever blocking the slot loop: a full queue (a peer
    /// that stopped reading, i.e. a killed process) drops the frame.
    fn enqueue(&self, counters: &Counters, frame: Frame) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        // Count before sending: the writer decrements as it dequeues, so
        // incrementing after a send could underflow the counter.
        let q = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        if self.tx.try_send(frame).is_ok() {
            counters
                .send_queue_high_water
                .fetch_max(q, Ordering::Relaxed);
        } else {
            self.queued.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Spawn a reader thread decoding frames from `conn` into the inbox.
/// `on_close` is delivered when the stream ends (cleanly or not).
fn spawn_reader(
    mut conn: Conn,
    tx: mpsc::Sender<Inbox>,
    counters: Arc<Counters>,
    on_close: Option<Inbox>,
) {
    std::thread::spawn(move || {
        while let Ok(Some((frame, bytes))) = read_frame(&mut conn) {
            counters.frames_received.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_received
                .fetch_add(bytes as u64, Ordering::Relaxed);
            if tx.send(Inbox::Frame(frame)).is_err() {
                return; // main loop exited
            }
        }
        if let Some(msg) = on_close {
            let _ = tx.send(msg);
        }
    });
}

/// Protocol state of one running node.
struct Node {
    cfg: NodeConfig,
    transport: Transport,
    counters: Arc<Counters>,
    /// Open outgoing links by peer id.
    links: BTreeMap<u32, Link>,
    /// Dial addresses for lazily opened links (NACK replies).
    addrs: BTreeMap<u32, String>,
    /// Calendar sends grouped by slot.
    by_slot: BTreeMap<u64, Vec<LoweredSend>>,
    /// Earliest expected (slot, sender) per packet.
    expected: BTreeMap<u64, (u64, u32)>,
    /// Packets each upstream sender is scheduled to deliver here.
    from_peer: BTreeMap<u32, Vec<u64>>,
    /// Packets this node holds.
    held: BTreeSet<u64>,
    /// Tracked packets still missing.
    missing: BTreeSet<u64>,
    /// Calendar sends waiting for their packet.
    pending: BTreeMap<u64, Vec<LoweredSend>>,
    /// NACK chase state per missing packet: (attempts, next retry slot).
    nack_state: BTreeMap<u64, (u64, u64)>,
    detector: WallClockDetector,
    report: NodeReport,
    complete: bool,
    slot: u64,
}

impl Node {
    fn new(cfg: NodeConfig, transport: Transport, counters: Arc<Counters>) -> Node {
        let mut by_slot: BTreeMap<u64, Vec<LoweredSend>> = BTreeMap::new();
        for s in &cfg.sends {
            by_slot.entry(s.slot).or_default().push(*s);
        }
        let mut expected: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        let mut from_peer: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for e in &cfg.expects {
            let entry = expected.entry(e.packet).or_insert((e.slot, e.from));
            if e.slot < entry.0 {
                *entry = (e.slot, e.from);
            }
            from_peer.entry(e.from).or_default().push(e.packet);
        }
        let missing: BTreeSet<u64> = if cfg.node == 0 {
            BTreeSet::new() // the source produces; it misses nothing
        } else {
            (0..cfg.track).collect()
        };
        let timeout_ns = cfg.suspect_timeout_slots * cfg.slot_micros * 1_000;
        let detector = WallClockDetector::new(cfg.node, timeout_ns.max(1));
        let report = NodeReport {
            node: cfg.node,
            ..NodeReport::default()
        };
        let mut addrs: BTreeMap<u32, String> =
            cfg.peers.iter().map(|p| (p.node, p.addr.clone())).collect();
        if !cfg.source_addr.is_empty() {
            addrs.insert(0, cfg.source_addr.clone());
        }
        Node {
            cfg,
            transport,
            counters,
            links: BTreeMap::new(),
            addrs,
            by_slot,
            expected,
            from_peer,
            held: BTreeSet::new(),
            missing,
            pending: BTreeMap::new(),
            nack_state: BTreeMap::new(),
            detector,
            report,
            complete: false,
            slot: 0,
        }
    }

    fn holds(&self, packet: u64) -> bool {
        self.cfg.node == 0 || self.held.contains(&packet)
    }

    /// The open link to `peer`, dialing lazily from the address book.
    fn link(&mut self, peer: u32) -> Option<&Link> {
        if !self.links.contains_key(&peer) {
            let addr = self.addrs.get(&peer)?.clone();
            let deadline = Instant::now() + Duration::from_secs(5);
            match Link::open(self.transport, &addr, Arc::clone(&self.counters), deadline) {
                Ok(link) => {
                    self.links.insert(peer, link);
                }
                Err(_) => return None,
            }
        }
        self.links.get(&peer)
    }

    fn send_packet(&mut self, to: u32, packet: u64, retransmit: bool) {
        let frame = Frame::Packet {
            from: self.cfg.node,
            to,
            packet,
            slot: self.slot,
            sent_ns: sys_ns(),
            retransmit,
        };
        let counters = Arc::clone(&self.counters);
        if let Some(link) = self.link(to) {
            link.enqueue(&counters, frame);
        }
    }

    /// Eagerly open every link the calendar needs (before `Ready`, so
    /// `Start` never races a connect).
    fn connect_calendar_links(&mut self) -> Result<(), String> {
        let targets: BTreeSet<u32> = self.cfg.sends.iter().map(|s| s.to).collect();
        let deadline = Instant::now() + Duration::from_secs(20);
        for to in targets {
            let addr = self
                .addrs
                .get(&to)
                .cloned()
                .ok_or_else(|| format!("no address for scheduled peer {to}"))?;
            let link = Link::open(self.transport, &addr, Arc::clone(&self.counters), deadline)?;
            self.links.insert(to, link);
        }
        Ok(())
    }

    /// Execute the calendar + maintenance work of slot `t`.
    fn execute_slot(&mut self, t: u64, control: &mut Conn) {
        self.slot = t;
        if let Some(sends) = self.by_slot.remove(&t) {
            for s in sends {
                if self.holds(s.packet) {
                    self.send_packet(s.to, s.packet, false);
                } else {
                    self.report.deferred_sends += 1;
                    self.pending.entry(s.packet).or_default().push(s);
                }
            }
        }
        if self.cfg.node != 0 && !self.complete {
            self.poll_detector(control);
            self.chase_gaps(t);
        }
    }

    /// Wall-clock silence scan; overdue-and-missing subjects only.
    fn poll_detector(&mut self, control: &mut Conn) {
        let now = sys_ns();
        let slot = self.slot;
        let gap = self.cfg.gap_slack_slots;
        let missing = &self.missing;
        let expected = &self.expected;
        let from_peer = &self.from_peer;
        let owes = |subject: u32| {
            from_peer.get(&subject).is_some_and(|packets| {
                packets.iter().any(|p| {
                    missing.contains(p) && expected.get(p).is_some_and(|(s, _)| s + gap < slot)
                })
            })
        };
        for subject in self.detector.poll(now, owes) {
            self.report.suspects_reported += 1;
            let _ = write_frame(
                control,
                &Frame::Suspect {
                    watcher: self.cfg.node,
                    subject,
                    at_ns: now,
                },
            );
        }
    }

    /// NACK every tracked packet overdue past the gap slack, with a
    /// per-packet retry cadence and attempt cap.
    fn chase_gaps(&mut self, t: u64) {
        let overdue: Vec<u64> = self
            .missing
            .iter()
            .copied()
            .filter(|p| {
                self.expected
                    .get(p)
                    .is_some_and(|(slot, _)| slot + self.cfg.gap_slack_slots < t)
            })
            .collect();
        for packet in overdue {
            let (attempts, next) = self.nack_state.get(&packet).copied().unwrap_or((0, 0));
            if attempts >= self.cfg.nack_max_attempts || t < next {
                continue;
            }
            self.nack_state
                .insert(packet, (attempts + 1, t + self.cfg.nack_retry_slots));
            self.report.nacks_sent += 1;
            let frame = Frame::Nack {
                from: self.cfg.node,
                packet,
            };
            let counters = Arc::clone(&self.counters);
            // NACKs go to the source: it provably holds everything.
            if let Some(link) = self.link(0) {
                link.enqueue(&counters, frame);
            }
        }
    }

    /// A packet landed (first copy or duplicate).
    fn on_packet(&mut self, frame: &Frame, control: &mut Conn) {
        let Frame::Packet {
            from,
            packet,
            slot,
            sent_ns,
            retransmit,
            ..
        } = *frame
        else {
            return;
        };
        let now = sys_ns();
        self.detector.heard(from, now);
        if !self.held.insert(packet) {
            return; // duplicate
        }
        if packet < self.cfg.track {
            self.report.arrivals.push(ArrivalObs {
                packet,
                from,
                slot,
                sent_ns,
                recv_ns: now,
                retransmit,
            });
        }
        self.missing.remove(&packet);
        self.nack_state.remove(&packet);
        // Reactive release: calendar sends waiting on this packet go now.
        if let Some(sends) = self.pending.remove(&packet) {
            for s in sends {
                self.send_packet(s.to, s.packet, false);
            }
        }
        if !self.complete && self.cfg.node != 0 && self.missing.is_empty() {
            self.complete = true;
            self.report.complete = true;
            self.report.complete_ns = sys_ns();
            let _ = write_frame(
                control,
                &Frame::Complete {
                    node: self.cfg.node,
                    at_ns: self.report.complete_ns,
                },
            );
        }
    }

    /// Serve a retransmission request if we hold the packet.
    fn on_nack(&mut self, from: u32, packet: u64) {
        if self.holds(packet) {
            self.report.retransmits_served += 1;
            self.send_packet(from, packet, true);
        }
    }

    /// Fold the shared transport counters into the report.
    fn finalize_report(&mut self) {
        self.report.frames_sent = self.counters.frames_sent.load(Ordering::Relaxed);
        self.report.bytes_sent = self.counters.bytes_sent.load(Ordering::Relaxed);
        self.report.frames_received = self.counters.frames_received.load(Ordering::Relaxed);
        self.report.bytes_received = self.counters.bytes_received.load(Ordering::Relaxed);
        self.report.reconnects = self.counters.reconnects.load(Ordering::Relaxed);
        self.report.send_queue_high_water =
            self.counters.send_queue_high_water.load(Ordering::Relaxed);
        // The source is complete by construction (it produces the stream).
        if self.cfg.node == 0 {
            self.report.complete = true;
        }
    }
}

/// Read one frame directly (pre-main-loop handshake), with a timeout.
fn read_one(conn: &mut Conn, timeout: Duration) -> Result<Frame, String> {
    conn.set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let got = read_frame(conn).map_err(|e| e.to_string())?;
    conn.set_read_timeout(None).map_err(|e| e.to_string())?;
    match got {
        Some((frame, _)) => Ok(frame),
        None => Err("control connection closed during handshake".into()),
    }
}

/// Run one node process to completion. Returns after `Stop`, the slot
/// horizon, or loss of the control link.
pub fn run_node(opts: &NodeOptions) -> Result<(), String> {
    let counters = Arc::new(Counters::default());
    let (inbox_tx, inbox_rx) = mpsc::channel::<Inbox>();

    // Bind the data listener first: its ephemeral address rides in Hello.
    let sock_name = format!("node-{}.sock", opts.node);
    let (listener, listen_addr) = NetListener::bind(opts.transport, &opts.socket_dir, &sock_name)
        .map_err(|e| format!("bind data listener: {e}"))?;
    {
        let tx = inbox_tx.clone();
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok(conn) => spawn_reader(conn, tx.clone(), Arc::clone(&counters), None),
                Err(_) => return,
            }
        });
    }

    // Control handshake: Hello → Config → (connect links) → Ready → Start.
    let deadline = Instant::now() + Duration::from_secs(20);
    let (mut control, _) = connect_retry(opts.transport, &opts.control_addr, deadline)
        .map_err(|e| format!("dial control plane: {e}"))?;
    write_frame(
        &mut control,
        &Frame::Hello {
            node: opts.node,
            listen_addr,
        },
    )
    .map_err(|e| e.to_string())?;
    let cfg: NodeConfig = match read_one(&mut control, Duration::from_secs(30))? {
        Frame::Config { payload } => {
            serde_json::from_str(&payload).map_err(|e| format!("bad NodeConfig: {e}"))?
        }
        other => return Err(format!("expected Config, got {other:?}")),
    };
    if cfg.node != opts.node {
        return Err(format!(
            "config for node {} sent to node {}",
            cfg.node, opts.node
        ));
    }
    let mut node = Node::new(cfg, opts.transport, Arc::clone(&counters));
    node.connect_calendar_links()?;
    write_frame(&mut control, &Frame::Ready { node: opts.node }).map_err(|e| e.to_string())?;
    match read_one(&mut control, Duration::from_secs(60))? {
        Frame::Start => {}
        Frame::Stop => return Ok(()), // orchestrator aborted before start
        other => return Err(format!("expected Start, got {other:?}")),
    }
    // Hand the control read half to a reader thread; keep the write half.
    let control_reader = control.try_clone().map_err(|e| e.to_string())?;
    spawn_reader(
        control_reader,
        inbox_tx.clone(),
        Arc::clone(&counters),
        Some(Inbox::ControlClosed),
    );

    // Arm the silence windows now — slot 0 of the stream begins here.
    let start_ns = sys_ns();
    let watched: Vec<u32> = node.from_peer.keys().copied().collect();
    for subject in watched {
        node.detector.watch(subject, start_ns);
    }

    let t0 = Instant::now();
    let slot_micros = node.cfg.slot_micros.max(1);
    let max_slots = node.cfg.max_slots;
    node.execute_slot(0, &mut control);
    let mut slot: u64 = 0;
    let mut stopped = false;
    'main: loop {
        // Advance the slot clock from the wall clock, not from inbox
        // idleness: a steady inbound stream must never stall the
        // calendar (the boundary check runs before every wait).
        let boundary = |s: u64| t0 + Duration::from_micros(slot_micros.saturating_mul(s + 1));
        while Instant::now() >= boundary(slot) {
            slot += 1;
            if slot >= max_slots {
                break 'main;
            }
            node.execute_slot(slot, &mut control);
        }
        let wait = boundary(slot).saturating_duration_since(Instant::now());
        match inbox_rx.recv_timeout(wait) {
            Ok(Inbox::Frame(frame)) => match frame {
                Frame::Packet { .. } => node.on_packet(&frame, &mut control),
                Frame::Nack { from, packet } => node.on_nack(from, packet),
                Frame::Stop => {
                    stopped = true;
                    break 'main;
                }
                // Start duplicates and control-plane frames addressed to
                // the orchestrator are ignored on a node.
                _ => {}
            },
            Ok(Inbox::ControlClosed) => break 'main,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'main,
        }
    }

    node.finalize_report();
    let payload = serde_json::to_string(&node.report).map_err(|e| e.to_string())?;
    let _ = write_frame(&mut control, &Frame::Report { payload });
    let _ = control.flush();
    if !stopped {
        // Horizon reached without Stop: linger briefly so the unsolicited
        // report is read before the socket drops.
        let linger = Instant::now() + Duration::from_secs(3);
        while Instant::now() < linger {
            match inbox_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Inbox::Frame(Frame::Stop)) | Ok(Inbox::ControlClosed) => break,
                Ok(_) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    Ok(())
}
