//! Forensics on a streaming incident: a relay node crashes mid-broadcast;
//! we use the transmission trace to find who starved, why, and what the
//! delivery paths looked like — the kind of observability a production
//! overlay needs.
//!
//! ```sh
//! cargo run --example trace_forensics
//! ```

use clustream::prelude::*;
use clustream::sim::FaultPlan;
use clustream::{NodeId, PacketId};

fn main() -> Result<(), CoreError> {
    let n = 40;
    let d = 2;

    // Healthy run first: capture the schedule's delivery paths.
    let forest = greedy_forest(n, d)?;
    let mut scheme = MultiTreeScheme::new(forest.clone(), StreamMode::PreRecorded);
    let healthy = Simulator::run(&mut scheme, &SimConfig::until_complete(24, 10_000).traced())?;
    let trace = healthy.trace.as_ref().expect("traced run");

    let victim = NodeId(forest.node_at(0, forest.n_pad())); // deepest of T_0
    println!("healthy delivery of packet 0 to {victim}:");
    let path = trace.path_to(victim, PacketId(0)).expect("delivered");
    println!(
        "  {}",
        path.iter()
            .map(|&id| if id == 0 {
                "S".into()
            } else {
                format!("n{id}")
            })
            .collect::<Vec<_>>()
            .join(" → ")
    );

    // Node 1 is interior in T_0 near the root. Crash it at slot 6.
    let mut scheme = MultiTreeScheme::new(forest.clone(), StreamMode::PreRecorded);
    let mut cfg = SimConfig::with_faults(24, 200, FaultPlan::crash(NodeId(1), 6));
    cfg.record_trace = true;
    let crashed = Simulator::run(&mut scheme, &cfg)?;
    let loss = crashed.loss.as_ref().expect("fault run");

    println!("\nnode 1 crashes at slot 6:");
    println!(
        "  {} sends suppressed, {} receivers starving",
        loss.crash_suppressed,
        loss.affected_nodes()
    );

    // Which packets did the victim lose, and which stream fraction?
    let victim_missing = loss
        .missing
        .iter()
        .find(|(nid, _)| *nid == victim)
        .map(|(_, m)| *m)
        .unwrap_or(0);
    println!(
        "  {victim} missing {victim_missing}/24 tracked packets (≈ 1/d = 1/{d} of the stream:"
    );
    println!("   only T_0 routes through node 1; the other tree still delivers)");

    // Cross-check against the structure: everyone missing packets must be
    // a T_0 descendant of node 1.
    let descendants: Vec<u32> = {
        let mut out = Vec::new();
        let mut stack = vec![forest.position(0, 1)];
        while let Some(p) = stack.pop() {
            for c in forest.children_pos(p) {
                let id = forest.node_at(0, c);
                if id as usize <= n {
                    out.push(id);
                    stack.push(c);
                }
            }
        }
        out
    };
    for (nid, _) in &loss.missing {
        assert!(
            descendants.contains(&nid.0),
            "{nid} starved but is not below node 1 in T_0"
        );
    }
    println!(
        "  all {} starving receivers verified to be T_0 descendants of node 1",
        loss.affected_nodes()
    );
    Ok(())
}
