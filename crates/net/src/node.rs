//! The `clustream-node` runtime: one process executing one node's
//! lowered slot schedule over real sockets.
//!
//! Threading model (the container has no async runtime, so this is
//! plain `std`): one **main loop** owns all protocol state and blocks on
//! an inbox channel with a deadline at the next slot boundary; one
//! **acceptor** thread turns incoming connections into **reader**
//! threads that decode frames into the inbox; one **writer** thread per
//! outgoing link drains a bounded queue onto the socket. The main loop
//! never blocks on a socket: enqueues are `try_send` (a full queue to a
//! dead peer drops the frame rather than stalling the stream), so a
//! SIGKILLed neighbour costs its subtree packets — which the NACK path
//! then repairs — but never wedges a survivor.
//!
//! Semantics mirror the DES relaxed mode on purpose (the replay oracle
//! depends on it): a calendar send whose packet has not arrived is
//! deferred and dispatched the moment the packet lands; missing tracked
//! packets overdue past `gap_slack` are chased with NACKs to the source;
//! upstream silence past the suspect timeout raises a `Suspect` frame to
//! the orchestrator ([`clustream_recovery::WallClockDetector`]).

use crate::chaos::{ChaosPolicy, SendPlan};
use crate::frame::{read_frame, write_frame, Frame};
use crate::schedule::{
    ArrivalObs, CalendarSendObs, LoweredSend, NodeConfig, NodeReport, ScheduleUpdate,
};
use crate::transport::{connect_retry, Conn, NetListener, Transport};
use clustream_recovery::WallClockDetector;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Command-line parameters of one node process.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// This node's id.
    pub node: u32,
    /// Socket family for every link.
    pub transport: Transport,
    /// The orchestrator's control address.
    pub control_addr: String,
    /// Directory for Unix sockets (unused under TCP).
    pub socket_dir: PathBuf,
}

/// Wall clock in UNIX nanoseconds — comparable across processes on the
/// same host, which is all a loopback cluster needs.
pub fn sys_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Transport-level counters shared between the main loop and the
/// reader/writer threads.
#[derive(Debug, Default)]
struct Counters {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
    reconnects: AtomicU64,
    send_queue_high_water: AtomicU64,
}

/// What reader threads feed the main loop.
enum Inbox {
    /// A decoded frame from any link (control or data).
    Frame(Frame),
    /// The control link closed: the orchestrator is gone, exit.
    ControlClosed,
}

/// One outgoing data link: a bounded queue drained by a writer thread.
/// Each queue entry carries the frame plus an injected chaos delay in
/// microseconds — the writer sleeps before writing, so the delay applies
/// to the frame *and* everything FIFO-behind it, which is exactly how a
/// slow wire behaves.
struct Link {
    tx: mpsc::SyncSender<(Frame, u64)>,
    queued: Arc<AtomicU64>,
    dead: Arc<AtomicBool>,
}

const LINK_QUEUE: usize = 4096;
/// How long a single frame write may stall on a non-reading peer before
/// the writer treats the link as broken and tries to reconnect.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);
/// How long the writer retries the re-dial after a send error before
/// declaring the link dead for good.
const REDIAL_WINDOW: Duration = Duration::from_millis(500);

impl Link {
    /// Open a link: dial with retry, then spawn the writer.
    fn open(
        transport: Transport,
        addr: &str,
        counters: Arc<Counters>,
        deadline: Instant,
    ) -> Result<Link, String> {
        let (conn, failures) =
            connect_retry(transport, addr, deadline).map_err(|e| e.to_string())?;
        let _ = conn.set_write_timeout(Some(WRITE_TIMEOUT));
        counters.reconnects.fetch_add(failures, Ordering::Relaxed);
        let (tx, rx) = mpsc::sync_channel::<(Frame, u64)>(LINK_QUEUE);
        let queued = Arc::new(AtomicU64::new(0));
        let dead = Arc::new(AtomicBool::new(false));
        let link = Link {
            tx,
            queued: Arc::clone(&queued),
            dead: Arc::clone(&dead),
        };
        let addr = addr.to_string();
        std::thread::spawn(move || {
            let mut conn = conn;
            while let Ok((frame, delay_us)) = rx.recv() {
                queued.fetch_sub(1, Ordering::Relaxed);
                if dead.load(Ordering::Relaxed) {
                    continue; // drain-and-discard after a write error
                }
                if delay_us > 0 {
                    std::thread::sleep(Duration::from_micros(delay_us));
                }
                let wrote = write_frame(&mut conn, &frame);
                let wrote = match wrote {
                    Ok(n) => Ok(n),
                    Err(_) => {
                        // One bounded reconnect attempt: a transient peer
                        // stall (gray node, TCP reset under load) should
                        // cost one frame window, not the whole link.
                        match connect_retry(transport, &addr, Instant::now() + REDIAL_WINDOW) {
                            Ok((c, f)) => {
                                let _ = c.set_write_timeout(Some(WRITE_TIMEOUT));
                                counters.reconnects.fetch_add(f + 1, Ordering::Relaxed);
                                conn = c;
                                write_frame(&mut conn, &frame)
                            }
                            Err(e) => Err(e),
                        }
                    }
                };
                match wrote {
                    Ok(n) => {
                        counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                        counters.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(_) => dead.store(true, Ordering::Relaxed),
                }
            }
        });
        Ok(link)
    }

    /// Enqueue without ever blocking the slot loop: a full queue (a peer
    /// that stopped reading, i.e. a killed process) drops the frame.
    fn enqueue(&self, counters: &Counters, frame: Frame, delay_us: u64) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        // Count before sending: the writer decrements as it dequeues, so
        // incrementing after a send could underflow the counter.
        let q = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        if self.tx.try_send((frame, delay_us)).is_ok() {
            counters
                .send_queue_high_water
                .fetch_max(q, Ordering::Relaxed);
        } else {
            self.queued.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Spawn a reader thread decoding frames from `conn` into the inbox.
/// `on_close` is delivered when the stream ends (cleanly or not).
fn spawn_reader(
    mut conn: Conn,
    tx: mpsc::Sender<Inbox>,
    counters: Arc<Counters>,
    on_close: Option<Inbox>,
) {
    std::thread::spawn(move || {
        while let Ok(Some((frame, bytes))) = read_frame(&mut conn) {
            counters.frames_received.fetch_add(1, Ordering::Relaxed);
            counters
                .bytes_received
                .fetch_add(bytes as u64, Ordering::Relaxed);
            if tx.send(Inbox::Frame(frame)).is_err() {
                return; // main loop exited
            }
        }
        if let Some(msg) = on_close {
            let _ = tx.send(msg);
        }
    });
}

/// Protocol state of one running node.
struct Node {
    cfg: NodeConfig,
    transport: Transport,
    counters: Arc<Counters>,
    /// Open outgoing links by peer id.
    links: BTreeMap<u32, Link>,
    /// Dial addresses for lazily opened links (NACK replies).
    addrs: BTreeMap<u32, String>,
    /// Calendar sends grouped by slot.
    by_slot: BTreeMap<u64, Vec<LoweredSend>>,
    /// Earliest expected (slot, sender) per packet.
    expected: BTreeMap<u64, (u64, u32)>,
    /// Packets each upstream sender is scheduled to deliver here.
    from_peer: BTreeMap<u32, Vec<u64>>,
    /// Packets this node holds.
    held: BTreeSet<u64>,
    /// Tracked packets still missing.
    missing: BTreeSet<u64>,
    /// Calendar sends waiting for their packet.
    pending: BTreeMap<u64, Vec<LoweredSend>>,
    /// NACK chase state per missing packet: (attempts, next retry slot).
    nack_state: BTreeMap<u64, (u64, u64)>,
    detector: WallClockDetector,
    /// Per-frame chaos decisions for this node's outbound traffic.
    chaos: ChaosPolicy,
    /// Reorder buffer: one held (frame, delay) per link, released behind
    /// the next frame to that link or at the next slot boundary.
    reorder_hold: BTreeMap<u32, (Frame, u64)>,
    /// Retransmissions served in the current slot (budget accounting).
    retransmits_this_slot: u64,
    /// Last slot each (requester, packet) NACK was served — the dedup
    /// window that keeps duplicated/reordered NACKs from amplifying.
    served_nacks: BTreeMap<(u32, u64), u64>,
    /// A schedule update waiting for its barrier slot, with its receive
    /// timestamp (splice-lag accounting).
    pending_update: Option<(ScheduleUpdate, u64)>,
    /// Highest repair epoch applied (stale updates are ignored).
    applied_epoch: u64,
    /// Whether a healed calendar has been spliced in: subsequent
    /// first-copy arrivals fill structural gaps and are excluded from
    /// replay latency samples.
    healed_mode: bool,
    report: NodeReport,
    complete: bool,
    slot: u64,
}

impl Node {
    fn new(cfg: NodeConfig, transport: Transport, counters: Arc<Counters>) -> Node {
        let mut by_slot: BTreeMap<u64, Vec<LoweredSend>> = BTreeMap::new();
        for s in &cfg.sends {
            by_slot.entry(s.slot).or_default().push(*s);
        }
        let mut expected: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        let mut from_peer: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for e in &cfg.expects {
            let entry = expected.entry(e.packet).or_insert((e.slot, e.from));
            if e.slot < entry.0 {
                *entry = (e.slot, e.from);
            }
            from_peer.entry(e.from).or_default().push(e.packet);
        }
        let missing: BTreeSet<u64> = if cfg.node == 0 {
            BTreeSet::new() // the source produces; it misses nothing
        } else {
            (0..cfg.track).collect()
        };
        let timeout_ns = cfg.suspect_timeout_slots * cfg.slot_micros * 1_000;
        let detector = WallClockDetector::new(cfg.node, timeout_ns.max(1));
        let report = NodeReport {
            node: cfg.node,
            ..NodeReport::default()
        };
        let mut addrs: BTreeMap<u32, String> =
            cfg.peers.iter().map(|p| (p.node, p.addr.clone())).collect();
        if !cfg.source_addr.is_empty() {
            addrs.insert(0, cfg.source_addr.clone());
        }
        let chaos = ChaosPolicy::new(cfg.chaos.clone(), cfg.chaos_seed, cfg.node, cfg.slot_micros);
        Node {
            cfg,
            transport,
            counters,
            links: BTreeMap::new(),
            addrs,
            by_slot,
            expected,
            from_peer,
            held: BTreeSet::new(),
            missing,
            pending: BTreeMap::new(),
            nack_state: BTreeMap::new(),
            detector,
            chaos,
            reorder_hold: BTreeMap::new(),
            retransmits_this_slot: 0,
            served_nacks: BTreeMap::new(),
            pending_update: None,
            applied_epoch: 0,
            healed_mode: false,
            report,
            complete: false,
            slot: 0,
        }
    }

    fn holds(&self, packet: u64) -> bool {
        self.cfg.node == 0 || self.held.contains(&packet)
    }

    /// The open link to `peer`, dialing lazily from the address book.
    fn link(&mut self, peer: u32) -> Option<&Link> {
        if !self.links.contains_key(&peer) {
            let addr = self.addrs.get(&peer)?.clone();
            let deadline = Instant::now() + Duration::from_secs(5);
            match Link::open(self.transport, &addr, Arc::clone(&self.counters), deadline) {
                Ok(link) => {
                    self.links.insert(peer, link);
                }
                Err(_) => return None,
            }
        }
        self.links.get(&peer)
    }

    fn send_packet(&mut self, to: u32, packet: u64, retransmit: bool) {
        let plan = if self.chaos.is_active() {
            self.chaos.plan(to, self.slot)
        } else {
            SendPlan::default()
        };
        // The replay ledger mirrors exactly the sends the DES will
        // regenerate: pre-splice, non-retransmit calendar traffic.
        if self.chaos.is_active() && !retransmit && !self.healed_mode {
            self.report.calendar_sends.push(CalendarSendObs {
                to,
                packet,
                dropped: plan.lost(),
            });
        }
        if plan.lost() {
            if plan.partitioned {
                self.report.chaos_partition_drops += 1;
            } else {
                self.report.chaos_drops += 1;
            }
            return;
        }
        if plan.delay_us > 0 {
            self.report.chaos_delays += 1;
        }
        let frame = Frame::Packet {
            from: self.cfg.node,
            to,
            packet,
            slot: self.slot,
            sent_ns: sys_ns(),
            retransmit,
        };
        if plan.duplicate {
            self.report.chaos_dups += 1;
            self.dispatch(to, frame.clone(), plan.delay_us, false);
        }
        self.dispatch(to, frame, plan.delay_us, plan.reorder);
    }

    /// Put one frame on the link, honoring the reorder buffer: a frame
    /// marked for reordering is held back and released behind the *next*
    /// frame to the same link (or at the next slot boundary, whichever
    /// comes first) — a one-deep swap, the way a multi-path wire
    /// reorders adjacent packets.
    fn dispatch(&mut self, to: u32, frame: Frame, delay_us: u64, reorder: bool) {
        if reorder && !self.reorder_hold.contains_key(&to) {
            self.report.chaos_reorders += 1;
            self.reorder_hold.insert(to, (frame, delay_us));
            return;
        }
        let held = self.reorder_hold.remove(&to);
        let counters = Arc::clone(&self.counters);
        if let Some(link) = self.link(to) {
            link.enqueue(&counters, frame, delay_us);
            if let Some((hf, hd)) = held {
                link.enqueue(&counters, hf, hd);
            }
        }
    }

    /// Release every held reorder frame (slot boundary flush).
    fn flush_reorder_holds(&mut self) {
        let held: Vec<(u32, (Frame, u64))> =
            std::mem::take(&mut self.reorder_hold).into_iter().collect();
        for (to, (frame, delay_us)) in held {
            let counters = Arc::clone(&self.counters);
            if let Some(link) = self.link(to) {
                link.enqueue(&counters, frame, delay_us);
            }
        }
    }

    /// Eagerly open every link the calendar needs (before `Ready`, so
    /// `Start` never races a connect).
    fn connect_calendar_links(&mut self) -> Result<(), String> {
        let targets: BTreeSet<u32> = self.cfg.sends.iter().map(|s| s.to).collect();
        let deadline = Instant::now() + Duration::from_secs(20);
        for to in targets {
            let addr = self
                .addrs
                .get(&to)
                .cloned()
                .ok_or_else(|| format!("no address for scheduled peer {to}"))?;
            let link = Link::open(self.transport, &addr, Arc::clone(&self.counters), deadline)?;
            self.links.insert(to, link);
        }
        Ok(())
    }

    /// Execute the calendar + maintenance work of slot `t`. `lagging` is
    /// true while the main loop is burning through a multi-slot catch-up
    /// burst: inbound frames are then sitting unprocessed in the inbox,
    /// so the detector's `last_heard` view is stale — polling it would
    /// suspect healthy senders whenever *this* node falls behind its own
    /// calendar (the false-positive the suspect gate exists to stop).
    fn execute_slot(&mut self, t: u64, control: &mut Conn, lagging: bool) {
        self.slot = t;
        self.retransmits_this_slot = 0;
        self.flush_reorder_holds();
        if let Some((upd, recv_ns)) = self.pending_update.take() {
            if t >= upd.barrier_slot {
                self.apply_update(upd, recv_ns, t);
            } else {
                self.pending_update = Some((upd, recv_ns));
            }
        }
        if let Some(sends) = self.by_slot.remove(&t) {
            for s in sends {
                if self.holds(s.packet) {
                    self.send_packet(s.to, s.packet, false);
                } else {
                    self.report.deferred_sends += 1;
                    self.pending.entry(s.packet).or_default().push(s);
                }
            }
        }
        if self.cfg.node != 0 && !self.complete {
            if !lagging {
                self.poll_detector(control);
            }
            self.chase_gaps(t);
        }
    }

    /// A [`Frame::ScheduleUpdate`] arrived from the control plane: stash
    /// it until its barrier slot. Epochs at or below the last applied
    /// (or an already-pending newer one) are stale and dropped.
    fn on_schedule_update(&mut self, payload: &str) {
        let Ok(upd) = serde_json::from_str::<ScheduleUpdate>(payload) else {
            return;
        };
        if upd.epoch <= self.applied_epoch {
            return;
        }
        if let Some((p, _)) = &self.pending_update {
            if upd.epoch <= p.epoch {
                return;
            }
        }
        self.pending_update = Some((upd, sys_ns()));
    }

    /// Splice a healed calendar in at slot `t` (≥ the barrier). The old
    /// calendar keeps every slot before the splice base — those packets
    /// are in flight or delivered — and the healed calendar, lowered
    /// relative to slot 0, replays from the base. Re-sent duplicates are
    /// ignored by receivers, so correctness only needs the healed
    /// calendar to be complete, which the reference lowering guarantees.
    fn apply_update(&mut self, upd: ScheduleUpdate, recv_ns: u64, t: u64) {
        let base = upd.barrier_slot.max(t);
        self.by_slot.split_off(&base);
        for sends in self.pending.values_mut() {
            sends.retain(|s| s.slot < base);
        }
        self.pending.retain(|_, v| !v.is_empty());
        for p in &upd.peers {
            self.addrs.entry(p.node).or_insert_with(|| p.addr.clone());
        }
        for s in &upd.sends {
            let slot = base + s.slot;
            self.by_slot.entry(slot).or_default().push(LoweredSend {
                slot,
                to: s.to,
                packet: s.packet,
            });
        }
        // Expectations rebuild wholesale: the healed forest re-derives
        // who owes what, and stale pre-repair entries must not keep NACK
        // or suspect pressure on routes that no longer exist.
        self.expected.clear();
        self.from_peer.clear();
        for e in &upd.expects {
            let slot = base + e.slot;
            let entry = self.expected.entry(e.packet).or_insert((slot, e.from));
            if slot < entry.0 {
                *entry = (slot, e.from);
            }
            self.from_peer.entry(e.from).or_default().push(e.packet);
        }
        // Fresh silence windows for the (possibly new) upstream set; old
        // upstreams owing nothing are filtered out by the poll closure.
        let now = sys_ns();
        let watched: Vec<u32> = self.from_peer.keys().copied().collect();
        for subject in watched {
            self.detector.watch(subject, now);
        }
        self.nack_state.clear();
        self.applied_epoch = upd.epoch;
        self.healed_mode = true;
        self.report.schedule_updates_applied += 1;
        self.report.splice_lag_us = sys_ns().saturating_sub(recv_ns) / 1_000;
    }

    /// Wall-clock silence scan; overdue-and-missing subjects only.
    fn poll_detector(&mut self, control: &mut Conn) {
        let now = sys_ns();
        let slot = self.slot;
        let gap = self.cfg.gap_slack_slots;
        let missing = &self.missing;
        let expected = &self.expected;
        let from_peer = &self.from_peer;
        let owes = |subject: u32| {
            from_peer.get(&subject).is_some_and(|packets| {
                packets.iter().any(|p| {
                    missing.contains(p) && expected.get(p).is_some_and(|(s, _)| s + gap < slot)
                })
            })
        };
        for subject in self.detector.poll(now, owes) {
            self.report.suspects_reported += 1;
            let _ = write_frame(
                control,
                &Frame::Suspect {
                    watcher: self.cfg.node,
                    subject,
                    at_ns: now,
                },
            );
        }
    }

    /// NACK every tracked packet overdue past the gap slack, with a
    /// per-packet retry cadence and attempt cap.
    fn chase_gaps(&mut self, t: u64) {
        let overdue: Vec<u64> = self
            .missing
            .iter()
            .copied()
            .filter(|p| {
                self.expected
                    .get(p)
                    .is_some_and(|(slot, _)| slot + self.cfg.gap_slack_slots < t)
            })
            .collect();
        for packet in overdue {
            let (attempts, next) = self.nack_state.get(&packet).copied().unwrap_or((0, 0));
            if attempts >= self.cfg.nack_max_attempts || t < next {
                continue;
            }
            self.nack_state
                .insert(packet, (attempts + 1, t + self.cfg.nack_retry_slots));
            self.report.nacks_sent += 1;
            let frame = Frame::Nack {
                from: self.cfg.node,
                packet,
            };
            let counters = Arc::clone(&self.counters);
            // NACKs go to the source: it provably holds everything.
            if let Some(link) = self.link(0) {
                link.enqueue(&counters, frame, 0);
            }
        }
    }

    /// A packet landed (first copy or duplicate).
    fn on_packet(&mut self, frame: &Frame, control: &mut Conn) {
        let Frame::Packet {
            from,
            packet,
            slot,
            sent_ns,
            retransmit,
            ..
        } = *frame
        else {
            return;
        };
        let now = sys_ns();
        self.detector.heard(from, now);
        if !self.held.insert(packet) {
            return; // duplicate
        }
        if packet < self.cfg.track {
            // After a splice, every first copy fills a structural gap
            // the healed calendar repaired; the first one is the
            // detection→repair→delivery wall-clock endpoint.
            let healed = self.healed_mode && !retransmit;
            if healed && self.report.first_healed_delivery_ns == 0 {
                self.report.first_healed_delivery_ns = now;
            }
            self.report.arrivals.push(ArrivalObs {
                packet,
                from,
                slot,
                sent_ns,
                recv_ns: now,
                retransmit,
                healed,
            });
        }
        self.missing.remove(&packet);
        self.nack_state.remove(&packet);
        // Reactive release: calendar sends waiting on this packet go now.
        if let Some(sends) = self.pending.remove(&packet) {
            for s in sends {
                self.send_packet(s.to, s.packet, false);
            }
        }
        if !self.complete && self.cfg.node != 0 && self.missing.is_empty() {
            self.complete = true;
            self.report.complete = true;
            self.report.complete_ns = sys_ns();
            let _ = write_frame(
                control,
                &Frame::Complete {
                    node: self.cfg.node,
                    at_ns: self.report.complete_ns,
                },
            );
        }
    }

    /// Serve a retransmission request if we hold the packet — after the
    /// storm filters: a (requester, packet) pair served within the last
    /// `nack_retry_slots` is a duplicate (chaos dup/reorder of the NACK
    /// stream, or an impatient retry), and a slot that has already spent
    /// its retransmit budget defers the rest to the requester's next
    /// retry. Both keep a noisy wire from amplifying into a storm.
    fn on_nack(&mut self, from: u32, packet: u64) {
        if !self.holds(packet) {
            return;
        }
        if let Some(&last) = self.served_nacks.get(&(from, packet)) {
            if self.slot < last.saturating_add(self.cfg.nack_retry_slots) {
                self.report.nacks_suppressed += 1;
                return;
            }
        }
        let budget = self.cfg.retransmit_budget_per_slot;
        if budget > 0 && self.retransmits_this_slot >= budget {
            self.report.nacks_suppressed += 1;
            return;
        }
        self.retransmits_this_slot += 1;
        self.served_nacks.insert((from, packet), self.slot);
        self.report.retransmits_served += 1;
        self.send_packet(from, packet, true);
    }

    /// Fold the shared transport counters into the report.
    fn finalize_report(&mut self) {
        self.report.frames_sent = self.counters.frames_sent.load(Ordering::Relaxed);
        self.report.bytes_sent = self.counters.bytes_sent.load(Ordering::Relaxed);
        self.report.frames_received = self.counters.frames_received.load(Ordering::Relaxed);
        self.report.bytes_received = self.counters.bytes_received.load(Ordering::Relaxed);
        self.report.reconnects = self.counters.reconnects.load(Ordering::Relaxed);
        self.report.send_queue_high_water =
            self.counters.send_queue_high_water.load(Ordering::Relaxed);
        // The source is complete by construction (it produces the stream).
        if self.cfg.node == 0 {
            self.report.complete = true;
        }
    }
}

/// Read one frame directly (pre-main-loop handshake), with a timeout.
fn read_one(conn: &mut Conn, timeout: Duration) -> Result<Frame, String> {
    conn.set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let got = read_frame(conn).map_err(|e| e.to_string())?;
    conn.set_read_timeout(None).map_err(|e| e.to_string())?;
    match got {
        Some((frame, _)) => Ok(frame),
        None => Err("control connection closed during handshake".into()),
    }
}

/// Run one node process to completion. Returns after `Stop`, the slot
/// horizon, or loss of the control link.
pub fn run_node(opts: &NodeOptions) -> Result<(), String> {
    let counters = Arc::new(Counters::default());
    let (inbox_tx, inbox_rx) = mpsc::channel::<Inbox>();

    // Bind the data listener first: its ephemeral address rides in Hello.
    let sock_name = format!("node-{}.sock", opts.node);
    let (listener, listen_addr) = NetListener::bind(opts.transport, &opts.socket_dir, &sock_name)
        .map_err(|e| format!("bind data listener: {e}"))?;
    {
        let tx = inbox_tx.clone();
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok(conn) => spawn_reader(conn, tx.clone(), Arc::clone(&counters), None),
                Err(_) => return,
            }
        });
    }

    // Control handshake: Hello → Config → (connect links) → Ready → Start.
    let deadline = Instant::now() + Duration::from_secs(20);
    let (mut control, _) = connect_retry(opts.transport, &opts.control_addr, deadline)
        .map_err(|e| format!("dial control plane: {e}"))?;
    write_frame(
        &mut control,
        &Frame::Hello {
            node: opts.node,
            listen_addr,
        },
    )
    .map_err(|e| e.to_string())?;
    let cfg: NodeConfig = match read_one(&mut control, Duration::from_secs(30))? {
        Frame::Config { payload } => {
            serde_json::from_str(&payload).map_err(|e| format!("bad NodeConfig: {e}"))?
        }
        other => return Err(format!("expected Config, got {other:?}")),
    };
    if cfg.node != opts.node {
        return Err(format!(
            "config for node {} sent to node {}",
            cfg.node, opts.node
        ));
    }
    let mut node = Node::new(cfg, opts.transport, Arc::clone(&counters));
    node.connect_calendar_links()?;
    write_frame(&mut control, &Frame::Ready { node: opts.node }).map_err(|e| e.to_string())?;
    match read_one(&mut control, Duration::from_secs(60))? {
        Frame::Start => {}
        Frame::Stop => return Ok(()), // orchestrator aborted before start
        other => return Err(format!("expected Start, got {other:?}")),
    }
    // Hand the control read half to a reader thread; keep the write half.
    let control_reader = control.try_clone().map_err(|e| e.to_string())?;
    spawn_reader(
        control_reader,
        inbox_tx.clone(),
        Arc::clone(&counters),
        Some(Inbox::ControlClosed),
    );

    // Arm the silence windows now — slot 0 of the stream begins here.
    let start_ns = sys_ns();
    let watched: Vec<u32> = node.from_peer.keys().copied().collect();
    for subject in watched {
        node.detector.watch(subject, start_ns);
    }

    let t0 = Instant::now();
    let slot_micros = node.cfg.slot_micros.max(1);
    let max_slots = node.cfg.max_slots;
    node.execute_slot(0, &mut control, false);
    let mut slot: u64 = 0;
    let mut stopped = false;
    'main: loop {
        // Advance the slot clock from the wall clock, not from inbox
        // idleness: a steady inbound stream must never stall the
        // calendar (the boundary check runs before every wait).
        let boundary = |s: u64| t0 + Duration::from_micros(slot_micros.saturating_mul(s + 1));
        while Instant::now() >= boundary(slot) {
            slot += 1;
            if slot >= max_slots {
                break 'main;
            }
            // Still behind after advancing? Then this is a catch-up
            // burst with unprocessed arrivals queued — suspend suspect
            // polling so our own lag never reads as upstream silence.
            let lagging = Instant::now() >= boundary(slot);
            node.execute_slot(slot, &mut control, lagging);
        }
        let wait = boundary(slot).saturating_duration_since(Instant::now());
        match inbox_rx.recv_timeout(wait) {
            Ok(Inbox::Frame(frame)) => match frame {
                Frame::Packet { .. } => node.on_packet(&frame, &mut control),
                Frame::Nack { from, packet } => node.on_nack(from, packet),
                Frame::ScheduleUpdate { payload } => node.on_schedule_update(&payload),
                Frame::Stop => {
                    stopped = true;
                    break 'main;
                }
                // Start duplicates and control-plane frames addressed to
                // the orchestrator are ignored on a node.
                _ => {}
            },
            Ok(Inbox::ControlClosed) => break 'main,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break 'main,
        }
    }

    node.finalize_report();
    let payload = serde_json::to_string(&node.report).map_err(|e| e.to_string())?;
    let _ = write_frame(&mut control, &Frame::Report { payload });
    let _ = control.flush();
    if !stopped {
        // Horizon reached without Stop: linger briefly so the unsolicited
        // report is read before the socket drops.
        let linger = Instant::now() + Duration::from_secs(3);
        while Instant::now() < linger {
            match inbox_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Inbox::Frame(Frame::Stop)) | Ok(Inbox::ControlClosed) => break,
                Ok(_) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::LoweredRecv;

    fn test_cfg(node: u32) -> NodeConfig {
        NodeConfig {
            node,
            n: 4,
            track: 4,
            max_slots: 100,
            slot_micros: 10,
            suspect_timeout_slots: 1,
            gap_slack_slots: 0,
            nack_retry_slots: 4,
            nack_max_attempts: 10,
            sends: vec![],
            expects: vec![
                LoweredRecv {
                    slot: 0,
                    from: 2,
                    packet: 0,
                },
                LoweredRecv {
                    slot: 0,
                    from: 2,
                    packet: 1,
                },
            ],
            peers: vec![],
            source_addr: String::new(),
            chaos: vec![],
            chaos_seed: 0,
            retransmit_budget_per_slot: 64,
        }
    }

    fn test_node(cfg: NodeConfig) -> (Node, Conn) {
        let counters = Arc::new(Counters::default());
        let node = Node::new(cfg, Transport::Uds, counters);
        let (a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        // Leak the far end so suspect writes don't fail with EPIPE.
        std::mem::forget(b);
        (node, Conn::Uds(a))
    }

    /// The satellite-fix regression: a node burning through a catch-up
    /// burst (its own calendar lag) must not read queued-but-unprocessed
    /// arrivals as upstream silence and raise false suspects. Suspect
    /// polling is gated on `lagging`; the same overdue state fires the
    /// moment the node catches up.
    #[test]
    fn lagging_nodes_do_not_raise_false_suspects() {
        let (mut node, mut control) = test_node(test_cfg(1));
        // Upstream 2 armed at wall-clock 0: silent for far longer than
        // the 10µs timeout, and it owes overdue packets.
        node.detector.watch(2, 0);
        node.execute_slot(5, &mut control, true);
        assert_eq!(
            node.report.suspects_reported, 0,
            "a lagging node must not suspect its senders"
        );
        node.execute_slot(6, &mut control, false);
        assert_eq!(
            node.report.suspects_reported, 1,
            "the same silence fires once the node has caught up"
        );
    }

    /// Duplicate NACKs inside the retry window are deduplicated; the
    /// per-slot retransmit budget defers the overflow. Both count into
    /// `nacks_suppressed` instead of amplifying.
    #[test]
    fn nack_dedup_and_budget_suppress_storms() {
        let mut cfg = test_cfg(0); // the source holds everything
        cfg.retransmit_budget_per_slot = 2;
        let (mut node, mut control) = test_node(cfg);
        node.execute_slot(1, &mut control, false);
        // Same (requester, packet) three times in one slot: served once.
        node.on_nack(3, 0);
        node.on_nack(3, 0);
        node.on_nack(3, 0);
        assert_eq!(node.report.retransmits_served, 1);
        assert_eq!(node.report.nacks_suppressed, 2);
        // Distinct requests past the budget of 2 are deferred.
        node.on_nack(3, 1);
        node.on_nack(3, 2);
        assert_eq!(node.report.retransmits_served, 2);
        assert_eq!(node.report.nacks_suppressed, 3);
        // The dedup window releases after nack_retry_slots.
        node.execute_slot(5, &mut control, false);
        node.on_nack(3, 0);
        assert_eq!(node.report.retransmits_served, 3);
    }

    /// A spliced calendar replaces everything at or past the barrier and
    /// rebuilds the expectation maps from the healed forest.
    #[test]
    fn schedule_update_splices_at_the_barrier() {
        let (mut node, mut control) = test_node(test_cfg(1));
        let upd = ScheduleUpdate {
            epoch: 1,
            barrier_slot: 10,
            sends: vec![crate::schedule::LoweredSend {
                slot: 0,
                to: 3,
                packet: 2,
            }],
            expects: vec![LoweredRecv {
                slot: 1,
                from: 4,
                packet: 0,
            }],
            peers: vec![],
        };
        node.on_schedule_update(&serde_json::to_string(&upd).unwrap());
        node.execute_slot(5, &mut control, false);
        assert_eq!(
            node.report.schedule_updates_applied, 0,
            "the barrier is still ahead"
        );
        node.execute_slot(10, &mut control, false);
        assert_eq!(node.report.schedule_updates_applied, 1);
        assert!(node.healed_mode);
        assert_eq!(node.expected.get(&0), Some(&(11, 4)), "rebased expects");
        assert!(node.from_peer.contains_key(&4));
        assert!(!node.from_peer.contains_key(&2), "old upstream dropped");
        // The rebased send at the barrier slot ran immediately; the
        // packet is not held, so it sits deferred awaiting arrival.
        assert!(
            node.pending.contains_key(&2),
            "healed send rebased and deferred"
        );
        // A stale epoch is ignored outright.
        node.on_schedule_update(&serde_json::to_string(&upd).unwrap());
        assert!(node.pending_update.is_none());
    }
}
