//! Hypercube-based streaming: §3 of Chow, Golubchik, Khuller & Yao
//! (IPPS 2009), generalizing Farley's broadcast scheme to an infinite
//! stream.
//!
//! For `N = 2^k − 1` receivers, the receivers plus the source form the
//! vertices of a `k`-dimensional hypercube. In slot `t` every node pairs
//! with its neighbor along dimension `t mod k`; paired nodes exchange their
//! newest packets, the source injects one brand-new packet to its partner
//! `2^(t mod k)`, and that partner ("the spare node") owes nothing
//! intra-cube. After a `k+1`-slot warm-up the system reaches the steady
//! state of the paper's Figure 5: the number of nodes holding packet `i`
//! doubles every slot, every node consumes one packet per slot, holds at
//! most two packets between slots, and talks to exactly its `k` cube
//! neighbors (Proposition 1).
//!
//! For arbitrary `N` (§3.2), receivers are split into a **chain of
//! hypercubes** `HC_1, HC_2, …` (`k_m = ⌊log₂(rem+1)⌋`): each slot, the
//! spare node of `HC_m` forwards the packet it just consumed to the next
//! cube, making `HC_m` a logical source for `HC_{m+1}` delayed by
//! `k_m + 1` slots. Worst-case delay is `O(log² N)`, buffers stay `O(1)`,
//! nodes talk to `O(log N)` neighbors (Proposition 2), and the average
//! delay is at most `2 log₂ N` (Theorem 4).
//!
//! With a `d`-capable source (§3.2 end), receivers split into `d` balanced
//! groups, each streamed through its own hypercube chain:
//! `O(log²(N/d))` worst-case delay and `O(log⌈N/d⌉)` neighbors.

#![warn(missing_docs)]

pub mod chain;
pub mod cube;
pub mod state;

pub use chain::{CubeSpec, HypercubeStream};
pub use cube::{dimension_at, pairs_at};
pub use state::{packet_spreads, PacketSpread};
