//! Synchronous time-slotted simulator for `clustream` overlays.
//!
//! The paper models a cluster as a logically fully-connected graph in which,
//! per time slot, every node can transmit one packet and receive one packet
//! (super nodes and the source have elevated *send* capacity). This crate
//! executes any [`clustream_core::Scheme`] under that model:
//!
//! * every transmission is validated (sender holds the packet, send
//!   capacities respected, at most one arrival per node per slot);
//! * arrival slots of the first `track_packets` packets are recorded per
//!   node;
//! * from the arrival table, [`playback`] derives each node's minimal safe
//!   playback start `a(i)`, its buffer high-water mark, and hiccup-freedom;
//! * [`metrics`] accumulates neighbor sets and traffic counters.
//!
//! The simulator is fully deterministic: same scheme, same config, same
//! result, bit for bit.
//!
//! Three engines implement these semantics: the readable reference
//! ([`Simulator`]), an allocation-light fast path ([`FastEngine`],
//! module [`fast`]) built on dense bitsets, a ring-buffer arrival queue
//! and reusable arenas, and a scale-oriented mega engine
//! ([`MegaEngine`], module [`mega`]) that adds columnar node state,
//! precompiled steady-state transmission tables and in-run sharding for
//! runs with 10^5–10^6 nodes. All results are bit-identical; the
//! differential harness in [`diff`] enforces that, and [`parallel`]
//! farms experiment grids across worker threads with deterministic
//! input-order results.

#![warn(missing_docs)]

pub mod diff;
pub mod engine;
pub mod fast;
pub mod faults;
pub mod mega;
pub mod metrics;
pub mod parallel;
pub mod playback;
pub mod resilience;
pub mod trace;

pub use diff::{diff_fields, DiffHarness};
pub use engine::{RunResult, SimConfig, Simulator};
pub use fast::{FastEngine, FastSimulator};
pub use faults::{FaultCause, FaultPlan, LossReport, LossyPlayback};
pub use mega::{MegaEngine, MegaSimulator};
pub use parallel::{sweep, sweep_instrumented, sweep_threads, sweep_with_threads, ClaimCounter};
pub use playback::{ArrivalTable, PlaybackAnalysis};
pub use resilience::ResilienceMetrics;
pub use trace::{EventTrace, TraceEvent};
