//! Counterexample shrinking.
//!
//! Greedy deterministic minimization: from a violating genome, try a
//! fixed-order list of simplifications (halve/decrement the population,
//! lower the degree, strip fault-plan components, shrink the sabotage
//! magnitude, trim the tracked window) and keep any candidate that still
//! violates. Repeats to a fixpoint, so the result is 1-minimal: no single
//! simplification step preserves the violation.
//!
//! The algorithm uses no randomness and visits candidates in a fixed
//! order, so the same input genome and predicate always produce the same
//! minimal counterexample — byte-identical once serialized (the serde
//! shim keeps JSON object fields in declaration order).

use crate::genome::{Genome, ModeChoice};
use crate::sabotage::Sabotage;

/// Candidate one-step simplifications of `g`, most aggressive first.
fn candidates(g: &Genome) -> Vec<Genome> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut Genome)| {
        let mut c = g.clone();
        f(&mut c);
        if c != *g {
            out.push(c);
        }
    };
    // Population: halve, then decrement.
    if g.n > 1 {
        push(&|c| c.n /= 2);
        push(&|c| c.n -= 1);
    }
    // Degree toward 1.
    if g.d > 1 {
        push(&|c| c.d -= 1);
    }
    // Fault plan: drop wholesale, then piecewise.
    if g.faults.is_some() {
        push(&|c| c.faults = None);
        push(&|c| {
            if let Some(f) = &mut c.faults {
                f.loss_rate = 0.0;
                f.seed = 0;
            }
        });
        push(&|c| {
            if let Some(f) = &mut c.faults {
                f.crashes.pop();
            }
        });
        push(&|c| {
            if let Some(f) = &mut c.faults {
                f.stop_crashes.pop();
            }
        });
    }
    // Sabotage magnitude toward the smallest still-violating defect.
    match g.sabotage {
        Some(Sabotage::SourceStall(k)) if k > 1 => {
            push(&|c| c.sabotage = Some(Sabotage::SourceStall(k / 2)));
            push(&|c| c.sabotage = Some(Sabotage::SourceStall(k - 1)));
        }
        Some(Sabotage::DelaySkew(e)) if e > 1 => {
            push(&|c| c.sabotage = Some(Sabotage::DelaySkew(e / 2)));
            push(&|c| c.sabotage = Some(Sabotage::DelaySkew(e - 1)));
        }
        _ => {}
    }
    // Stream mode back to the simplest.
    if g.mode != ModeChoice::Pre {
        push(&|c| c.mode = ModeChoice::Pre);
    }
    // Tracked window: halve, then decrement.
    if g.track > 1 {
        push(&|c| c.track /= 2);
        push(&|c| c.track -= 1);
    }
    out
}

/// Shrink `g` to a 1-minimal genome for which `still_violates` holds.
///
/// `still_violates(&g)` must be true on entry (the genome being shrunk
/// is a known counterexample); the return value always satisfies it.
pub fn shrink<F>(g: &Genome, mut still_violates: F) -> Genome
where
    F: FnMut(&Genome) -> bool,
{
    let mut current = g.clone();
    // Each accepted step strictly shrinks (n, d, faults, sabotage, track),
    // so the fixpoint loop terminates; the cap is a safety net.
    for _ in 0..10_000 {
        let mut advanced = false;
        for candidate in candidates(&current) {
            if still_violates(&candidate) {
                current = candidate;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_genome_fast;
    use crate::genome::{ConstructionChoice, Family};

    fn violating_genome() -> Genome {
        let mut g = Genome::clean(Family::Chain, 24, 2, ConstructionChoice::Greedy);
        g.sabotage = Some(Sabotage::SourceStall(50));
        g
    }

    #[test]
    fn shrink_reaches_a_one_minimal_fixpoint() {
        let g = violating_genome();
        let pred = |c: &Genome| check_genome_fast(c).violates(Some("DelayBound"));
        assert!(pred(&g), "starting genome must violate");
        let min = shrink(&g, pred);
        assert!(pred(&min), "shrunk genome still violates");
        // 1-minimal: no single candidate step still violates.
        for c in candidates(&min) {
            assert!(
                !pred(&c),
                "further shrinkable: {} → {}",
                min.to_json(),
                c.to_json()
            );
        }
        // The chain bound is delay ≤ n with exact delay n, so any stall
        // violates: the minimum is the smallest config expressible.
        assert_eq!(min.n, 1);
        assert_eq!(min.sabotage, Some(Sabotage::SourceStall(1)));
    }

    #[test]
    fn shrink_is_deterministic() {
        let g = violating_genome();
        let pred = |c: &Genome| check_genome_fast(c).violates(Some("DelayBound"));
        let a = shrink(&g, pred);
        let b = shrink(&g, pred);
        assert_eq!(a.to_json(), b.to_json());
    }
}
