//! Structural neighbor sets: the paper's `O(d)` communication claim.
//!
//! Footnote 2 of §1: multi-tree schemes "only require each node to
//! communicate with at most 2d nodes in its cluster" — its `d` parents
//! (one per tree; several may coincide, and any of them may be the
//! source) plus its `d` children in the single tree where it is interior.
//! This module derives the sets from the forest structure alone; the
//! simulator's measured neighbor sets must coincide, which the tests
//! verify.

use crate::tree::DisjointTrees;

/// Structural communication profile of one receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborSet {
    /// The receiver (1-based node id).
    pub node: u32,
    /// Distinct upstream peers: node id per tree, `0` = the source.
    /// Deduplicated and sorted.
    pub parents: Vec<u32>,
    /// Downstream peers: real children in the node's interior tree
    /// (empty for all-leaf nodes). Sorted.
    pub children: Vec<u32>,
}

impl NeighborSet {
    /// Total distinct neighbors (parents ∪ children; the sets are
    /// disjoint by interior-disjointness… except a parent in one tree can
    /// be a child in another, so we deduplicate).
    pub fn degree(&self) -> usize {
        let mut all: Vec<u32> = self
            .parents
            .iter()
            .chain(self.children.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// Compute the structural neighbor set of every real receiver.
pub fn neighbor_sets(forest: &DisjointTrees) -> Vec<NeighborSet> {
    let d = forest.d();
    let n_real = forest.n() as u32;
    (1..=n_real)
        .map(|id| {
            let mut parents: Vec<u32> = (0..d)
                .map(|k| {
                    let pos = forest.position(k, id);
                    let pp = forest.parent_pos(pos);
                    if pp == 0 {
                        0
                    } else {
                        forest.node_at(k, pp)
                    }
                })
                .collect();
            parents.sort_unstable();
            parents.dedup();

            let mut children: Vec<u32> = forest
                .interior_tree_of(id)
                .map(|k| {
                    let pos = forest.position(k, id);
                    forest
                        .children_pos(pos)
                        .map(|c| forest.node_at(k, c))
                        .filter(|&c| c <= n_real) // dummies are not peers
                        .collect()
                })
                .unwrap_or_default();
            children.sort_unstable();

            NeighborSet {
                node: id,
                parents,
                children,
            }
        })
        .collect()
}

/// The worst structural degree over all receivers — the paper's `≤ 2d`.
pub fn max_degree(forest: &DisjointTrees) -> usize {
    neighbor_sets(forest)
        .iter()
        .map(|s| s.degree())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_forest;
    use crate::schedule::{MultiTreeScheme, StreamMode};
    use crate::structured::structured_forest;
    use clustream_core::NodeId;
    use clustream_sim::{SimConfig, Simulator};

    /// Figure 2's node 6: parents {S, 1, 11}, children {2, 9, 4}.
    #[test]
    fn node6_neighbors_match_figure2() {
        let f = greedy_forest(15, 3).unwrap();
        let sets = neighbor_sets(&f);
        let n6 = &sets[5];
        assert_eq!(n6.node, 6);
        assert_eq!(n6.parents, vec![0, 1, 11]);
        assert_eq!(n6.children, vec![2, 4, 9]);
        assert_eq!(n6.degree(), 6); // = 2d
    }

    #[test]
    fn degree_bounded_by_2d_everywhere() {
        for (n, d) in [(15usize, 3usize), (64, 2), (100, 4), (333, 5), (7, 2)] {
            for f in [
                greedy_forest(n, d).unwrap(),
                structured_forest(n, d).unwrap(),
            ] {
                assert!(
                    max_degree(&f) <= 2 * d,
                    "N={n} d={d}: degree {}",
                    max_degree(&f)
                );
            }
        }
    }

    #[test]
    fn structural_sets_match_simulation() {
        let f = greedy_forest(20, 3).unwrap();
        let sets = neighbor_sets(&f);
        let mut s = MultiTreeScheme::new(f, StreamMode::PreRecorded);
        let r = Simulator::run(&mut s, &SimConfig::until_complete(36, 10_000)).unwrap();
        for set in &sets {
            let q = r.qos.node(NodeId(set.node)).unwrap();
            assert_eq!(
                q.neighbors,
                set.degree(),
                "node {}: measured {} vs structural {}",
                set.node,
                q.neighbors,
                set.degree()
            );
            assert_eq!(q.in_neighbors, set.parents.len(), "node {}", set.node);
            assert_eq!(q.out_neighbors, set.children.len(), "node {}", set.node);
        }
    }

    #[test]
    fn all_leaf_nodes_have_no_children() {
        let f = greedy_forest(15, 3).unwrap();
        let sets = neighbor_sets(&f);
        for id in [13u32, 14, 15] {
            let s = &sets[id as usize - 1];
            assert!(s.children.is_empty(), "G_d node {id} must be all-leaf");
            assert!(s.degree() <= 3, "only parents");
        }
    }

    #[test]
    fn dummy_children_are_excluded() {
        // N = 13, d = 3 ⇒ 2 dummies; some interior node has < d real kids.
        let f = greedy_forest(13, 3).unwrap();
        let sets = neighbor_sets(&f);
        let short = sets
            .iter()
            .filter(|s| !s.children.is_empty() && s.children.len() < 3);
        assert!(short.count() >= 1, "someone parents a dummy");
        for s in &sets {
            assert!(s.children.iter().all(|&c| c <= 13));
            assert!(s.parents.iter().all(|&p| p <= 13));
        }
    }
}
